//! Attack demo: run double-sided, many-sided, and Half-Double patterns
//! against three defences — none, victim refresh, and AQUA — and report
//! which defences keep the targeted victim row below the Rowhammer
//! threshold.
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use aqua::{AquaConfig, AquaEngine};
use aqua_baselines::{VictimRefresh, VictimRefreshConfig};
use aqua_dram::mitigation::{Mitigation, NoMitigation};
use aqua_dram::{BankId, BaselineConfig, RowAddr};
use aqua_sim::{SimConfig, Simulation};
use aqua_workload::attack::Hammer;
use aqua_workload::{AddressSpace, RequestGenerator};

const T_RH: u64 = 1000;
const VICTIM: u32 = 5000;

fn run_attack<M: Mitigation>(base: BaselineConfig, engine: M, pattern: Hammer) -> (bool, u64) {
    let cfg = SimConfig::new(base).epochs(2).t_rh(T_RH);
    let mut sim = Simulation::new(
        cfg,
        engine,
        [Box::new(pattern) as Box<dyn RequestGenerator>],
    );
    let report = sim.run();
    let victim = RowAddr {
        bank: BankId::new(0),
        row: VICTIM,
    };
    (
        sim.oracle().is_flippable(victim),
        report.mitigation.row_migrations + report.mitigation.victim_refreshes,
    )
}

type PatternList = Vec<(&'static str, Box<dyn Fn() -> Hammer>)>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = BaselineConfig::paper_table1();
    let space = AddressSpace::new(base.geometry, 0.97);

    let patterns: PatternList = vec![
        (
            "double-sided",
            Box::new(move || Hammer::double_sided(&space, 0, VICTIM)),
        ),
        (
            "8-sided",
            Box::new(move || Hammer::many_sided(&space, 0, VICTIM - 7, 8)),
        ),
        (
            "half-double",
            Box::new(move || Hammer::half_double(&space, 0, VICTIM)),
        ),
    ];

    println!(
        "{:<14} {:<22} {:<22} {:<22}",
        "attack", "no defence", "victim refresh", "aqua"
    );
    for (name, mk) in &patterns {
        let (none_flip, _) = run_attack(base, NoMitigation::new(base.geometry), mk());
        let vr = VictimRefresh::new(
            VictimRefreshConfig::for_rowhammer_threshold(T_RH),
            base.geometry,
        );
        let (vr_flip, vr_work) = run_attack(base, vr, mk());
        let aqua = AquaEngine::new(AquaConfig::for_rowhammer_threshold(T_RH, &base))?;
        let (aqua_flip, aqua_work) = run_attack(base, aqua, mk());
        let verdict = |flip: bool, work: u64| {
            if flip {
                format!("BIT FLIP ({work} mitig.)")
            } else {
                format!("safe ({work} mitig.)")
            }
        };
        println!(
            "{:<14} {:<22} {:<22} {:<22}",
            name,
            verdict(none_flip, 0),
            verdict(vr_flip, vr_work),
            verdict(aqua_flip, aqua_work)
        );
    }
    println!("\nVictim refresh stops the classic patterns but loses to Half-Double;");
    println!("AQUA's quarantine breaks the spatial correlation for all of them.");
    Ok(())
}
