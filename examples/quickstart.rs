//! Quickstart: protect a 16 GB DDR4 system with AQUA and run one SPEC
//! workload through the simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aqua::{AquaConfig, AquaEngine, StorageReport};
use aqua_dram::mitigation::NoMitigation;
use aqua_dram::BaselineConfig;
use aqua_sim::{SimConfig, Simulation};
use aqua_workload::{spec, AddressSpace, RequestGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table I system: 4 cores, 16 GB DDR4-2400, 16 banks.
    let base = BaselineConfig::paper_table1();

    // AQUA at a Rowhammer threshold of 1K: quarantine after 500 activations,
    // 23,053-row quarantine area (Eq. 3), SRAM mapping tables.
    let aqua_cfg = AquaConfig::for_rowhammer_threshold(1000, &base);
    println!(
        "AQUA config: threshold {} acts, RQA {} rows ({:.1}% of DRAM)",
        aqua_cfg.mitigation_threshold,
        aqua_cfg.rqa_rows,
        aqua_cfg.dram_overhead() * 100.0
    );
    let storage = StorageReport::for_config(&aqua_cfg);
    println!(
        "SRAM: {} KB mapping tables + {} KB copy buffer",
        storage.mapping_sram_bytes / 1024,
        storage.copy_buffer_bytes / 1024
    );

    // The lbm workload, calibrated to the paper's Table II profile.
    let space = AddressSpace::new(base.geometry, 0.97);
    let lbm = spec::by_name("lbm").expect("lbm is in Table II");
    let gens = |seed| -> Vec<Box<dyn RequestGenerator>> {
        (0..base.cores)
            .map(|c| Box::new(lbm.generator(&space, c, base.cores, seed)) as _)
            .collect()
    };

    // Run one 64 ms epoch with and without AQUA.
    let sim_cfg = SimConfig::new(base).epochs(1).t_rh(1000);
    let baseline = Simulation::new(sim_cfg, NoMitigation::new(base.geometry), gens(7)).run();
    let mut sim = Simulation::new(sim_cfg, AquaEngine::new(aqua_cfg)?, gens(7));
    let protected = sim.run();

    println!(
        "baseline: {} requests; with AQUA: {} requests (normalized {:.3})",
        baseline.requests_done,
        protected.requests_done,
        protected.normalized_perf(&baseline)
    );
    println!(
        "AQUA performed {} row migrations; max activations on any physical row: {} (< T_RH = 1000)",
        protected.mitigation.row_migrations, protected.oracle.max_window_activations
    );
    assert_eq!(protected.oracle.rows_over_trh, 0);
    sim.mitigation()
        .check_consistency()
        .expect("consistent tables after the run");
    Ok(())
}
