//! Explore Eq. 1–3: how the required quarantine-area size responds to the
//! migration threshold, the bank count, and the migration latency.
//!
//! ```text
//! cargo run --release --example rqa_sizing
//! ```

use aqua::required_rqa_rows;
use aqua_analysis::dos::aqua_worst_case_slowdown;
use aqua_dram::{DdrTiming, DramGeometry};

fn main() {
    let timing = DdrTiming::ddr4_2400();
    let geometry = DramGeometry::paper_table1();

    println!("Eq. 3 across thresholds (Table III):");
    println!(
        "{:>10} {:>10} {:>9} {:>10} {:>12}",
        "A", "rows", "MB", "overhead", "DoS slowdown"
    );
    for a in [1000u64, 500, 250, 125, 50, 10, 1] {
        let rows = required_rqa_rows(&timing, &geometry, a);
        println!(
            "{:>10} {:>10} {:>9.0} {:>9.2}% {:>11.2}x",
            a,
            rows,
            (rows * geometry.row_bytes as u64) as f64 / (1 << 20) as f64,
            rows as f64 / geometry.total_rows() as f64 * 100.0,
            aqua_worst_case_slowdown(&timing, &geometry, a)
        );
    }

    println!("\nSensitivity to bank count (A = 500):");
    for banks in [4u32, 8, 16, 32, 64] {
        let g = DramGeometry {
            banks_per_rank: banks,
            ..geometry
        };
        let rows = required_rqa_rows(&timing, &g, 500);
        println!(
            "  {banks:>3} banks -> {rows:>7} rows ({:.2}% of DRAM)",
            rows as f64 / g.total_rows() as f64 * 100.0
        );
    }
    println!("\nMore banks let the attacker trigger more concurrent migrations,");
    println!("but the quarantine area stays a small, bounded fraction of DRAM.");
}
