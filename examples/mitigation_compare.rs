//! Compare all mitigation schemes on one four-way workload mix: normalized
//! performance, migrations, and the security verdict, side by side.
//!
//! ```text
//! cargo run --release --example mitigation_compare [workload]
//! ```
//!
//! `workload` is any Table II name (`lbm`, `mcf`, ...) or `mixNN`
//! (default `mix00`).

use aqua_bench::{Harness, Scheme};

fn main() {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "mix00".into());
    let harness = Harness::new(1000);
    let baseline = harness.run(Scheme::Baseline, &workload);
    println!(
        "workload {workload}: {} requests/epoch unmitigated\n",
        baseline.requests_done / baseline.epochs
    );
    println!(
        "{:<16} {:>10} {:>14} {:>12} {:>10}",
        "scheme", "perf", "migrations/ep", "refreshes", "rows>T_RH"
    );
    for scheme in [
        Scheme::AquaSram,
        Scheme::AquaMapped,
        Scheme::Rrs,
        Scheme::VictimRefresh,
        Scheme::Blockhammer,
    ] {
        let report = harness.run(scheme, &workload);
        println!(
            "{:<16} {:>10.3} {:>14.0} {:>12} {:>10}",
            scheme.name(),
            report.normalized_perf(&baseline),
            report.migrations_per_epoch(),
            report.mitigation.victim_refreshes,
            report.oracle.rows_over_trh,
        );
    }
}
