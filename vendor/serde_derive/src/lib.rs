//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace marks many types `#[derive(Serialize, Deserialize)]` for
//! forward compatibility, but never serializes through serde (report output
//! is hand-rolled JSON in `aqua-telemetry`). These derives accept the same
//! syntax as the real `serde_derive`, including `#[serde(...)]` helper
//! attributes, and expand to nothing.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
