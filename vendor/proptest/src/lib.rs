//! Minimal property-testing shim with the subset of the `proptest` API this
//! workspace uses: the [`proptest!`] macro, integer-range / tuple /
//! `collection::vec` / `collection::hash_set` / [`any`] strategies,
//! [`ProptestConfig::with_cases`], and `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test stream (seeded from the
//! test name and case index), so failures are reproducible across runs.
//! There is no shrinking: a failing case panics with the generated inputs
//! visible in the assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub use rand::Rng;

/// The RNG handed to strategies while generating one test case.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for `(test name, case index)`.
pub fn test_rng(name: &str, case: u64) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + draw
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo + draw
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates `Vec`s of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `HashSet`s with target sizes drawn from a range.
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates `HashSet`s of `element` values with a size in `size`
        /// (best effort: duplicate draws are retried a bounded number of
        /// times, so heavily collided strategies may yield smaller sets).
        pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { element, size }
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = rng.gen_range(self.size.clone());
                let mut set = HashSet::new();
                let mut attempts = 0;
                while set.len() < target && attempts < target * 10 + 100 {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #[test] fn p(x in 0u64..10) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..=255) {
            prop_assert!((3..17).contains(&x));
            let _ = y; // full u8 range: nothing to check beyond type
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn hash_sets_are_deduplicated(s in prop::collection::hash_set(any::<u64>(), 1..50)) {
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn tuples_compose(p in (0u64..10, any::<bool>())) {
            prop_assert!(p.0 < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..8)
            .map(|c| crate::Strategy::generate(&(0u64..1000), &mut crate::test_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| crate::Strategy::generate(&(0u64..1000), &mut crate::test_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
