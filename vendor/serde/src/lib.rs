//! Compile-compatibility shim for `serde`.
//!
//! Re-exports the no-op derive macros so existing
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]` sites compile
//! unchanged. Nothing in this workspace serializes through serde; see
//! `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};
