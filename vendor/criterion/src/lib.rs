//! Minimal replacement for the parts of `criterion` this workspace's
//! benches use: `Criterion`, `benchmark_group` / `bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! This shim runs each benchmark a fixed number of warm-up and measured
//! iterations and prints mean wall-clock time per iteration. It exists so
//! `cargo bench` compiles and produces useful ballpark numbers offline; it
//! does no statistical analysis, outlier rejection, or HTML reporting.
//!
//! Like real criterion, `cargo bench -- --test` switches to **check mode**:
//! every benchmark body runs exactly once with no warm-up and no timing
//! report, so CI can prove the benches still execute without paying for a
//! measurement run.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// True when the harness was invoked as `cargo bench -- --test` (criterion's
/// check mode: run every benchmark once, skip measurement).
fn check_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Prevents the optimizer from eliding a value (best-effort, safe-code only).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives iteration of a single benchmark body.
pub struct Bencher {
    measured: Option<Duration>,
    iters: u64,
    warmup_iters: u64,
}

impl Bencher {
    /// Times `routine`, running warm-up passes then measured passes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.measured = Some(start.elapsed());
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let iters = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(name, iters, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: u64, mut f: F) {
    if check_mode() {
        // `--test`: execute the body once to prove it still runs; no
        // warm-up, no timing claims.
        let mut b = Bencher {
            measured: None,
            iters: 1,
            warmup_iters: 0,
        };
        f(&mut b);
        println!("  {name}: ok (check mode, 1 iter)");
        return;
    }
    let iters = iters.max(1);
    let mut b = Bencher {
        measured: None,
        iters,
        warmup_iters: iters.min(2),
    };
    f(&mut b);
    match b.measured {
        Some(total) => {
            let per_iter = total / b.iters as u32;
            println!("  {name}: {per_iter:?}/iter ({} iters)", b.iters);
        }
        None => println!("  {name}: no measurement (Bencher::iter never called)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.finish();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn check_mode_bencher_runs_the_body_exactly_once() {
        // The configuration run_one uses under `--test`: no warm-up, one
        // measured pass.
        let mut calls = 0;
        let mut b = Bencher {
            measured: None,
            iters: 1,
            warmup_iters: 0,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.measured.is_some());
    }
}
