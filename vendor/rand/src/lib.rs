//! Minimal deterministic replacement for the parts of `rand` 0.8 this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over half-open integer ranges.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different stream
//! than upstream `rand`'s ChaCha-based `StdRng`, but the workspace only
//! relies on determinism-under-seed, never on a specific stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` constructor is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface implemented for all [`RngCore`] types.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Widening multiply: unbiased enough for simulation use and
                // avoids modulo hot spots.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + draw
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
