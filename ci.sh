#!/usr/bin/env bash
# Local CI: formatting, lints, and the test suite in both telemetry modes.
#
# Usage: ./ci.sh
#
# Everything runs offline against the vendored dependency stubs; no network
# access is required.

set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check

# Lint and test with telemetry enabled (the default feature set).
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo test --offline --workspace -q

# The whole workspace must also build and pass with telemetry compiled out.
run cargo clippy --offline --workspace --all-targets --no-default-features -- -D warnings
run cargo test --offline --workspace -q --no-default-features

echo
echo "ci.sh: all checks passed"
