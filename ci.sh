#!/usr/bin/env bash
# Local CI: formatting, lints, and the test suite in both telemetry modes.
#
# Usage: ./ci.sh
#
# Everything runs offline against the vendored dependency stubs; no network
# access is required.

set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check

# Lint and test with telemetry enabled (the default feature set).
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo test --offline --workspace -q

# The whole workspace must also build and pass with telemetry compiled out.
run cargo clippy --offline --workspace --all-targets --no-default-features -- -D warnings
run cargo test --offline --workspace -q --no-default-features

# Wallclock zero-cost smoke: with telemetry compiled out, the phase guard
# must be a ZST (no Instant read, no Drop) — assert the dedicated test ran
# and passed rather than silently matching nothing.
echo
echo "==> wallclock zero-cost smoke (feature off: PhaseGuard is a ZST)"
zero_cost_out=$(cargo test --offline -q -p aqua-telemetry --no-default-features \
    feature_off_phase_guard_is_zero_sized 2>&1)
grep -q "1 passed" <<<"$zero_cost_out"
echo "phase guard is zero-sized with telemetry compiled out"

# Criterion benches in check mode: every bench body must still execute
# (one iteration, no timing) so `cargo bench` stays runnable without
# paying for a measurement run.
run cargo bench --offline -q -p aqua-bench -- --test

# Parallel-runner determinism smoke test: one figure binary on a two-workload
# subset, serial vs two workers, must emit byte-identical CSVs.
smoke() {
    local jobs="$1" out="$2"
    echo
    echo "==> smoke: fig06_migrations with AQUA_BENCH_JOBS=$jobs"
    AQUA_BENCH_WORKLOADS=povray,xz AQUA_BENCH_EPOCHS=1 AQUA_BENCH_JOBS="$jobs" \
        cargo run --offline -q -p aqua-bench --bin fig06_migrations >/dev/null
    cp target/experiments/fig06_migrations.csv "$out"
}
smoke 1 target/experiments/fig06_smoke_serial.csv
smoke 2 target/experiments/fig06_smoke_parallel.csv
run diff target/experiments/fig06_smoke_serial.csv target/experiments/fig06_smoke_parallel.csv

# Sharded multi-channel determinism smoke: the same figure on a 4-channel
# topology with 1 vs 4 shard workers must emit byte-identical CSVs — the
# cross-shard merge must not leak thread scheduling into results.
shard_smoke() {
    local workers="$1" out="$2"
    echo
    echo "==> smoke: fig06_migrations with AQUA_BENCH_CHANNELS=4 AQUA_BENCH_SHARD_WORKERS=$workers"
    AQUA_BENCH_WORKLOADS=povray,xz AQUA_BENCH_EPOCHS=1 AQUA_BENCH_CHANNELS=4 \
        AQUA_BENCH_SHARD_WORKERS="$workers" \
        cargo run --offline -q --release -p aqua-bench --bin fig06_migrations >/dev/null
    cp target/experiments/fig06_migrations.csv "$out"
}
shard_smoke 1 target/experiments/fig06_shard_serial.csv
shard_smoke 4 target/experiments/fig06_shard_parallel.csv
run diff target/experiments/fig06_shard_serial.csv target/experiments/fig06_shard_parallel.csv

# Seeded fault-injection smoke test: two campaigns with the same seed must
# emit byte-identical CSVs (and exit zero, i.e. no unaccounted corruptions).
fault_smoke() {
    local out="$1"
    echo
    echo "==> smoke: fault_campaign --seed 7 -> $out"
    AQUA_BENCH_WORKLOADS=mcf cargo run --offline -q --release -p aqua-bench \
        --bin fault_campaign -- --seed 7 --epochs 1 --rates 0,8 --out "$out" >/dev/null
}
fault_smoke fault_smoke_first
fault_smoke fault_smoke_replay
run diff target/experiments/fault_smoke_first.csv target/experiments/fault_smoke_replay.csv

# Checkpoint/resume smoke: interrupt a fault campaign halfway (the journal's
# AQUA_BENCH_DIE_AFTER test hook exits 3 once 4 of the 8 cells are durable),
# resume it with the same journal, and require the final CSV to be
# byte-identical to the uninterrupted reference (DESIGN.md section 14).
resume_args=(--seed 7 --epochs 1 --rates 0,8)
resume_journal=target/experiments/ci_resume_journal.jsonl
rm -f "$resume_journal"
echo
echo "==> smoke: fault_campaign uninterrupted reference"
AQUA_BENCH_WORKLOADS=mcf cargo run --offline -q --release -p aqua-bench \
    --bin fault_campaign -- "${resume_args[@]}" --out ci_resume_ref >/dev/null
echo
echo "==> smoke: fault_campaign killed after 4 durable cells (expect exit 3)"
if AQUA_BENCH_WORKLOADS=mcf AQUA_BENCH_DIE_AFTER=4 cargo run --offline -q --release \
    -p aqua-bench --bin fault_campaign -- "${resume_args[@]}" --out ci_resume_out \
    --resume "$resume_journal" >/dev/null 2>&1; then
    echo "ERROR: campaign was not interrupted by AQUA_BENCH_DIE_AFTER" >&2
    exit 1
fi
echo "campaign died mid-run as instructed"
echo
echo "==> smoke: resumed campaign must replay and finish byte-identical"
AQUA_BENCH_WORKLOADS=mcf cargo run --offline -q --release -p aqua-bench \
    --bin fault_campaign -- "${resume_args[@]}" --out ci_resume_out \
    --resume "$resume_journal" >/dev/null
run diff target/experiments/ci_resume_ref.csv target/experiments/ci_resume_out.csv

# Quarantine must-fail: a chaos-sabotaged cell (panics on its first attempt,
# then completes — the determinism probe cannot reproduce the failure) is
# quarantined as nondeterministic. That is a warning with exit 0 by default
# and a hard failure under --strict; both behaviours are load-bearing.
echo
echo "==> smoke: quarantined cell warns by default, fails under --strict"
AQUA_BENCH_WORKLOADS=mcf cargo run --offline -q --release -p aqua-bench \
    --bin fault_campaign -- --seed 7 --epochs 1 --rates 0 --out ci_chaos \
    --chaos-cell aqua-sram/mcf >/dev/null
if AQUA_BENCH_WORKLOADS=mcf cargo run --offline -q --release -p aqua-bench \
    --bin fault_campaign -- --seed 7 --epochs 1 --rates 0 --out ci_chaos \
    --chaos-cell aqua-sram/mcf --strict >/dev/null 2>&1; then
    echo "ERROR: --strict did not fail on a quarantined cell" >&2
    exit 1
fi
echo "quarantine is a warning by default and fatal under --strict"

# Live metrics plane smoke: the same seeded campaign served over
# --metrics-addr must be scrapeable mid-run — a well-formed Prometheus
# exposition on /metrics with live sim.requests samples and a parseable
# /healthz — and still emit a CSV byte-identical to the plane-less
# fault_smoke reference above (the plane is an observer, never a
# participant; DESIGN.md section 16).
echo
echo "==> metrics plane smoke: scrape /metrics and /healthz mid-sweep"
cargo build --offline -q --release -p aqua-bench --bin monitor --bin fault_campaign
metrics_addr_file=target/experiments/ci_metrics_addr.txt
metrics_scrape=target/experiments/ci_metrics_scrape.txt
rm -f "$metrics_addr_file"
AQUA_BENCH_WORKLOADS=mcf AQUA_METRICS_PORT_FILE="$metrics_addr_file" \
AQUA_METRICS_LINGER_MS=4000 \
    target/release/fault_campaign \
    --seed 7 --epochs 1 --rates 0,8 --out ci_metrics_smoke \
    --metrics-addr 127.0.0.1:0 >/dev/null 2>&1 &
metrics_pid=$!
for _ in $(seq 1 300); do [ -s "$metrics_addr_file" ] && break; sleep 0.1; done
if [ ! -s "$metrics_addr_file" ]; then
    echo "ERROR: metrics plane never published its address" >&2
    exit 1
fi
metrics_addr=$(cat "$metrics_addr_file")
scraped=0
for _ in $(seq 1 600); do
    if target/release/monitor --addr "$metrics_addr" --once --raw \
        >"$metrics_scrape" 2>/dev/null \
        && grep -q '^aqua_sim_requests_total{' "$metrics_scrape"; then
        scraped=1
        break
    fi
    sleep 0.2
done
if [ "$scraped" != 1 ]; then
    echo "ERROR: no live sim.requests sample scraped from /metrics" >&2
    kill "$metrics_pid" 2>/dev/null || true
    exit 1
fi
grep -q '^# TYPE aqua_up gauge' "$metrics_scrape"
grep -q '^aqua_up 1' "$metrics_scrape"
target/release/monitor --addr "$metrics_addr" --once | grep -q 'aqua monitor'
wait "$metrics_pid"
run diff target/experiments/fault_smoke_first.csv target/experiments/ci_metrics_smoke.csv
echo "metrics plane served mid-run and changed nothing"

# Alert-engine must-fail: under seeded faults the built-in
# integrity_escape rule has to trip and --fail-on-alert has to turn it
# into a non-zero exit; a clean rate-0 sweep must stay quiet. An alert
# rule that cannot fire alerts nothing.
echo
echo "==> fault_campaign --fail-on-alert must FAIL under seeded escapes"
if AQUA_BENCH_WORKLOADS=mcf target/release/fault_campaign \
    --seed 7 --epochs 1 --rates 8 --out ci_alert_fail \
    --fail-on-alert >/dev/null 2>&1; then
    echo "ERROR: --fail-on-alert did not trip on seeded integrity escapes" >&2
    exit 1
fi
echo "alert engine tripped on the seeded escape as required"
echo
echo "==> fault_campaign --fail-on-alert stays quiet at fault rate 0"
AQUA_BENCH_WORKLOADS=mcf target/release/fault_campaign \
    --seed 7 --epochs 1 --rates 0 --out ci_alert_quiet \
    --fail-on-alert >/dev/null
echo "no alert fired on a clean sweep"

# Host-time profiler smoke: with telemetry on the folded-stacks output must
# be non-empty and contain the sim.run root (flamegraph.pl-consumable);
# with telemetry off the binary must exit 0 and report nothing to profile.
echo
echo "==> profile smoke (telemetry on)"
cargo run --offline -q --release -p aqua-bench --bin profile -- \
    --folded target/experiments/profile_smoke.folded \
    --jsonl target/experiments/profile_smoke.jsonl >/dev/null
run grep -q '^sim\.run' target/experiments/profile_smoke.folded
echo
echo "==> profile smoke (sharded: per-shard phases and imbalance summary)"
profile_shard_out=$(cargo run --offline -q --release -p aqua-bench --bin profile -- \
    --channels 2 \
    --folded target/experiments/profile_shard_smoke.folded \
    --jsonl target/experiments/profile_shard_smoke.jsonl)
run grep -q '^sim\.sharded;shard1;sim\.run' target/experiments/profile_shard_smoke.folded
grep -q 'shard imbalance (2 shards)' <<<"$profile_shard_out"
echo
echo "==> profile smoke (telemetry off)"
profile_off_out=$(cargo run --offline -q --release -p aqua-bench \
    --no-default-features --bin profile)
grep -q 'without the `telemetry` feature' <<<"$profile_off_out"

# Performance-regression gate: the deterministic canary matrix must stay
# within tolerance of the committed BENCH_8.json baseline — behavioral
# metrics exactly-reproducible, the throughput canary within its tightened
# 2x floor, the 4-channel scaling canary shard-deterministic (and above the
# 2.5x speedup floor on hosts with enough cores) — in both telemetry
# feature modes (span-phase latencies are only gated when telemetry is on;
# the attribution residual is gated in both). BENCH_6.json and BENCH_7.json
# stay committed as v2/v3-format parser fixtures only. Exit nonzero =
# regression.
echo
echo "==> regression gate (telemetry on)"
cargo run --offline -q --release -p aqua-bench --bin regression_gate
echo
echo "==> regression gate (telemetry off)"
cargo run --offline -q --release -p aqua-bench --no-default-features --bin regression_gate

# The gate itself must detect a synthetic regression: +10 pp of slowdown
# (and residual) has to fail. A gate that cannot fail gates nothing.
echo
echo "==> regression gate must FAIL on injected +10pp slowdown"
if cargo run --offline -q --release -p aqua-bench --bin regression_gate -- \
    --inject-slowdown 10 >/dev/null 2>&1; then
    echo "ERROR: regression gate passed despite injected slowdown" >&2
    exit 1
fi
echo "gate correctly rejected the injected regression"

# The throughput floor must also be a must-fail check: a synthetic 3x
# collapse of the throughput canary (beyond the 2x tolerance factor) has
# to exit nonzero, proving the hot-loop floor actually gates.
echo
echo "==> regression gate must FAIL on injected 3x throughput collapse"
if cargo run --offline -q --release -p aqua-bench --bin regression_gate -- \
    --inject-throttle 3 >/dev/null 2>&1; then
    echo "ERROR: regression gate passed despite throttled throughput canary" >&2
    exit 1
fi
echo "gate correctly rejected the throttled throughput canary"

echo
echo "ci.sh: all checks passed"
