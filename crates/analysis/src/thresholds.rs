//! The Rowhammer-threshold timeline (Figure 2).
//!
//! Section II-C: the threshold fell ~30x from 139K activations (DDR3, Kim
//! et al. 2014) to 4.8K (LPDDR4, Kim et al. 2020). The intermediate DDR4
//! point follows the same characterization studies.

use serde::{Deserialize, Serialize};

/// One measured device generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// Device generation label.
    pub device: &'static str,
    /// Year of characterization.
    pub year: u32,
    /// Observed Rowhammer threshold (activations in 64 ms).
    pub t_rh: u64,
}

/// The Figure 2 series.
pub const TIMELINE: [ThresholdPoint; 3] = [
    ThresholdPoint {
        device: "DDR3",
        year: 2014,
        t_rh: 139_000,
    },
    ThresholdPoint {
        device: "DDR4",
        year: 2018,
        t_rh: 17_500,
    },
    ThresholdPoint {
        device: "LPDDR4",
        year: 2020,
        t_rh: 4_800,
    },
];

/// The overall reduction factor across the timeline (~30x in the paper).
pub fn reduction_factor() -> f64 {
    TIMELINE[0].t_rh as f64 / TIMELINE[TIMELINE.len() - 1].t_rh as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_monotonically_decreasing() {
        for w in TIMELINE.windows(2) {
            assert!(w[0].t_rh > w[1].t_rh);
            assert!(w[0].year < w[1].year);
        }
    }

    #[test]
    fn reduction_is_about_30x() {
        let r = reduction_factor();
        assert!((28.0..=30.0).contains(&r), "reduction = {r}");
    }
}
