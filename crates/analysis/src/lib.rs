//! Closed-form analytical models from the AQUA paper.
//!
//! Everything in this crate is pure arithmetic derived from the paper's
//! equations and published constants — no simulation. The benchmark harness
//! uses these models to regenerate:
//!
//! - Table III (quarantine-area sizing, Eq. 1–3) — [`rqa_sizing`];
//! - Figure 12 and Appendix A (relative migration overhead of RRS vs AQUA)
//!   — [`migration_model`];
//! - Tables VI and VII (storage comparisons across schemes and trackers)
//!   — [`storage`];
//! - the worst-case slowdown bounds of sections VI-C and VII-B —
//!   [`dos`];
//! - the power estimates of section V-H — [`power`];
//! - the Rowhammer-threshold timeline of Figure 2 — [`thresholds`];
//! - the causal slowdown decomposition used by the attribution report —
//!   [`attribution`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod dos;
pub mod migration_model;
pub mod power;
pub mod rqa_sizing;
pub mod security;
pub mod storage;
pub mod thresholds;
