//! Quarantine-area sizing (Eq. 1–3, Table III).

use aqua::required_rqa_rows;
use aqua_dram::{DdrTiming, DramGeometry};
use serde::{Deserialize, Serialize};

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RqaSizingPoint {
    /// Effective migration threshold `A`.
    pub threshold: u64,
    /// Required quarantine rows `R_max` (Eq. 3).
    pub rows: u64,
    /// Quarantine size in MB.
    pub megabytes: f64,
    /// Fraction of module capacity.
    pub dram_overhead: f64,
}

/// Evaluates Eq. 3 at one effective threshold.
pub fn sizing_point(timing: &DdrTiming, geometry: &DramGeometry, threshold: u64) -> RqaSizingPoint {
    let rows = required_rqa_rows(timing, geometry, threshold);
    RqaSizingPoint {
        threshold,
        rows,
        megabytes: (rows * geometry.row_bytes as u64) as f64 / (1024.0 * 1024.0),
        dram_overhead: rows as f64 / geometry.total_rows() as f64,
    }
}

/// The six design points of Table III.
pub fn table3(timing: &DdrTiming, geometry: &DramGeometry) -> Vec<RqaSizingPoint> {
    [1000, 500, 250, 125, 50, 1]
        .into_iter()
        .map(|a| sizing_point(timing, geometry, a))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let t = DdrTiming::ddr4_2400();
        let g = DramGeometry::paper_table1();
        let rows: Vec<u64> = table3(&t, &g).iter().map(|p| p.rows).collect();
        assert_eq!(rows, vec![15_302, 23_053, 30_872, 37_176, 42_367, 46_620]);
    }

    #[test]
    fn megabytes_match_paper() {
        let t = DdrTiming::ddr4_2400();
        let g = DramGeometry::paper_table1();
        let p = sizing_point(&t, &g, 500);
        assert!((p.megabytes - 180.0).abs() < 1.0, "{}", p.megabytes);
        assert!((p.dram_overhead - 0.011).abs() < 0.001);
    }

    #[test]
    fn overhead_is_bounded_even_at_threshold_one() {
        let t = DdrTiming::ddr4_2400();
        let g = DramGeometry::paper_table1();
        // Section IV-E: even at an effective threshold of 1 the quarantine
        // area stays around 2.2% of DRAM.
        let p = sizing_point(&t, &g, 1);
        assert!(p.dram_overhead < 0.023, "{}", p.dram_overhead);
    }

    #[test]
    fn rows_grow_monotonically_as_threshold_drops() {
        let t = DdrTiming::ddr4_2400();
        let g = DramGeometry::paper_table1();
        let pts = table3(&t, &g);
        for w in pts.windows(2) {
            assert!(w[0].rows < w[1].rows);
        }
    }
}
