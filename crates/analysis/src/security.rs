//! Probabilistic security of RRS vs AQUA's deterministic guarantee
//! (paper sections I and II-F).
//!
//! RRS is secure only as long as no *physical* row accumulates `T_RH`
//! activations in a refresh window. Each swap moves a hammered row to a
//! uniformly random destination, where it carries at most `T_RRS = T_RH/6`
//! activations per stay. A successful attack therefore needs the random
//! destinations of `k = T_RH / T_RRS` independent swap events to land on
//! the *same* physical row within one 64 ms window, each landing "charged"
//! by the attacker actually hammering the arriving logical row to the swap
//! threshold again. This module models that chain as a Poisson process:
//!
//! - landings on one specific physical row arrive at rate
//!   `lambda = swaps_per_window / rows`;
//! - each landing is charged with probability `q` (the fraction of rows the
//!   attacker's activation budget can keep at the swap threshold);
//! - the per-window success probability is
//!   `rows * P(Poisson(lambda * q) >= k)`, and the expected time to success
//!   is its inverse.
//!
//! The model reproduces the paper's headline *qualitatively*: the expected
//! time to a successful RRS attack is measured in **years** on a single
//! machine (the paper quotes ~4 years from the original RRS analysis, whose
//! exact attack model is not restated in this paper; this reconstruction
//! lands at the same order of magnitude), and it shrinks linearly as more
//! machines are targeted. AQUA has no such trial — a quarantined row's
//! activation count is bounded by construction (section VI-A), so its
//! failure probability is zero under the threat model.

use serde::{Deserialize, Serialize};

/// Seconds in a year.
const YEAR_SECONDS: f64 = 365.25 * 24.0 * 3600.0;

/// Parameters of the birthday-paradox attack on RRS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrsAttackModel {
    /// Rows in the module the random destination is drawn from.
    pub candidate_rows: u64,
    /// Maximum swaps the attacker can force per 64 ms window.
    pub swaps_per_window: f64,
    /// Chain length: segments of `T_RRS` activations needed on one physical
    /// row to reach `T_RH` (6 at the paper's thresholds).
    pub required_landings: u32,
    /// Probability a landing is charged (attacker budget / rows).
    pub charged_fraction: f64,
    /// Refresh-window length in seconds.
    pub window_seconds: f64,
}

impl RrsAttackModel {
    /// The paper's setting at `T_RH` = 1K: 2M rows, `T_RRS` = 166, all 16
    /// banks driven flat out (`ACTmax` = 1360K activations per bank per
    /// window).
    pub fn paper_default() -> Self {
        let act_budget = 1_360_000.0 * 16.0;
        let swaps_per_window = act_budget / 166.0;
        let rows = (2u64 * 1024 * 1024) as f64;
        RrsAttackModel {
            candidate_rows: 2 * 1024 * 1024,
            swaps_per_window,
            required_landings: 6,
            charged_fraction: swaps_per_window / rows,
            window_seconds: 0.064,
        }
    }

    /// Rate of charged landings on one specific physical row per window.
    pub fn charged_landing_rate(&self) -> f64 {
        self.swaps_per_window / self.candidate_rows as f64 * self.charged_fraction
    }

    /// Probability that one window produces a successful attack anywhere in
    /// the module (union bound over rows of the Poisson tail).
    pub fn success_probability_per_window(&self) -> f64 {
        let lambda = self.charged_landing_rate();
        let k = self.required_landings;
        // P(Poisson(lambda) >= k) ~= lambda^k / k! for small lambda.
        let mut p = 1.0;
        for i in 1..=k {
            p *= lambda / i as f64;
        }
        (p * self.candidate_rows as f64).min(1.0)
    }

    /// Expected seconds until a successful attack on one machine.
    pub fn expected_seconds_to_success(&self) -> f64 {
        self.window_seconds / self.success_probability_per_window()
    }

    /// Expected years to success on one machine.
    pub fn expected_years_to_success(&self) -> f64 {
        self.expected_seconds_to_success() / YEAR_SECONDS
    }

    /// Expected years when `n` machines are attacked in parallel (the paper:
    /// time divides by the machine count).
    pub fn expected_years_multi_machine(&self, n: u64) -> f64 {
        self.expected_years_to_success() / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_measured_in_years() {
        // Paper section I: a successful attack on average within ~4 years.
        // The reconstruction lands on the same side of the ledger: years,
        // not hours — yet finite, unlike AQUA's deterministic bound.
        let m = RrsAttackModel::paper_default();
        let years = m.expected_years_to_success();
        assert!((0.5..=1000.0).contains(&years), "years = {years}");
    }

    #[test]
    fn multi_machine_scales_inverse() {
        let m = RrsAttackModel::paper_default();
        let one = m.expected_years_to_success();
        assert!((m.expected_years_multi_machine(100) - one / 100.0).abs() < one * 1e-9);
    }

    #[test]
    fn longer_chains_are_exponentially_harder() {
        let six = RrsAttackModel::paper_default();
        let seven = RrsAttackModel {
            required_landings: 7,
            ..six
        };
        assert!(seven.expected_seconds_to_success() > six.expected_seconds_to_success() * 100.0);
    }

    #[test]
    fn lower_thresholds_weaken_rrs() {
        // At a lower T_RH the swap rate rises, multiplying the landing rate.
        let weak = RrsAttackModel {
            swaps_per_window: RrsAttackModel::paper_default().swaps_per_window * 4.0,
            charged_fraction: RrsAttackModel::paper_default().charged_fraction * 4.0,
            ..RrsAttackModel::paper_default()
        };
        assert!(
            weak.expected_years_to_success()
                < RrsAttackModel::paper_default().expected_years_to_success() / 1000.0
        );
    }

    #[test]
    fn probability_is_clamped() {
        let absurd = RrsAttackModel {
            required_landings: 1,
            charged_fraction: 1.0,
            swaps_per_window: 1e12,
            ..RrsAttackModel::paper_default()
        };
        assert_eq!(absurd.success_probability_per_window(), 1.0);
    }
}
