//! Power model (section V-H).
//!
//! The paper reports point values from CACTI 7.0 (22 nm) and gem5's DDR4
//! power model. We reproduce the same accounting with two simple linear
//! models calibrated to those published values: SRAM leakage+dynamic power
//! proportional to structure size, and DRAM energy proportional to the data
//! moved by migrations and table traffic.

use serde::{Deserialize, Serialize};

/// SRAM power per KB, calibrated to CACTI's 5.4 mW for a 16 KB structure.
pub const SRAM_MW_PER_KB: f64 = 5.4 / 16.0;

/// Energy per row migration: one 8 KB row read + write, ~0.5 uJ
/// (calibrated so the paper's 1099 migrations / 64 ms => ~8.5 mW).
pub const MIGRATION_ENERGY_UJ: f64 = 0.5;

/// Power report for one AQUA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Bloom-filter SRAM power, mW.
    pub bloom_mw: f64,
    /// FPT-Cache SRAM power, mW.
    pub fpt_cache_mw: f64,
    /// Copy-buffer SRAM power, mW.
    pub copy_buffer_mw: f64,
    /// DRAM power overhead from migrations and table traffic, mW.
    pub dram_mw: f64,
}

impl PowerReport {
    /// Total SRAM power, mW (paper: 13.6 mW).
    pub fn sram_mw(&self) -> f64 {
        self.bloom_mw + self.fpt_cache_mw + self.copy_buffer_mw
    }

    /// Total added power, mW.
    pub fn total_mw(&self) -> f64 {
        self.sram_mw() + self.dram_mw
    }
}

/// Estimates AQUA's power from its structure sizes and migration rate.
///
/// `migrations_per_epoch` is the Figure 6 metric (row migrations per 64 ms).
pub fn aqua_power(
    bloom_kb: f64,
    fpt_cache_kb: f64,
    copy_buffer_kb: f64,
    migrations_per_epoch: f64,
) -> PowerReport {
    let epoch_s = 0.064;
    PowerReport {
        bloom_mw: bloom_kb * SRAM_MW_PER_KB,
        fpt_cache_mw: fpt_cache_kb * SRAM_MW_PER_KB,
        copy_buffer_mw: copy_buffer_kb * SRAM_MW_PER_KB,
        dram_mw: migrations_per_epoch * MIGRATION_ENERGY_UJ / 1000.0 / epoch_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_design_matches_paper() {
        // Paper: 5.4 + 5.4 + 2.8 = 13.6 mW SRAM; ~8.5 mW DRAM at the
        // average 1099 migrations per epoch.
        let p = aqua_power(16.0, 16.0, 8.0, 1099.0);
        assert!((p.bloom_mw - 5.4).abs() < 0.01);
        assert!((p.fpt_cache_mw - 5.4).abs() < 0.01);
        assert!((p.copy_buffer_mw - 2.7).abs() < 0.15); // paper rounds to 2.8
        assert!((p.sram_mw() - 13.6).abs() < 0.2);
        assert!((p.dram_mw - 8.5).abs() < 0.2, "{}", p.dram_mw);
    }

    #[test]
    fn power_scales_with_migration_rate() {
        let idle = aqua_power(16.0, 16.0, 8.0, 0.0);
        let busy = aqua_power(16.0, 16.0, 8.0, 10_000.0);
        assert_eq!(idle.dram_mw, 0.0);
        assert!(busy.dram_mw > 50.0);
        assert_eq!(idle.sram_mw(), busy.sram_mw());
    }
}
