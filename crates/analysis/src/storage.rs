//! Storage comparisons across schemes and trackers (Tables VI and VII).

use aqua::{AquaConfig, StorageReport};
use aqua_baselines::crow::{overhead_for_threshold, CrowVariant};
use aqua_dram::BaselineConfig;
use aqua_rrs::RrsConfig;
use serde::{Deserialize, Serialize};

/// One column of Table VI: a mitigation scheme's storage/slowdown profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeProfile {
    /// Scheme name.
    pub name: String,
    /// SRAM for mapping tables, bytes (`None` = not applicable).
    pub mapping_sram_bytes: Option<u64>,
    /// DRAM storage overhead as a fraction of capacity.
    pub dram_overhead: f64,
    /// Whether the scheme works on commodity DRAM.
    pub commodity_dram: bool,
}

/// Builds the Table VI storage columns at Rowhammer threshold `t_rh`.
pub fn table6_storage(t_rh: u64, base: &BaselineConfig) -> Vec<SchemeProfile> {
    let aqua_cfg = AquaConfig::for_rowhammer_threshold(t_rh, base).with_mapped_tables();
    let aqua_report = StorageReport::for_config(&aqua_cfg);
    let rrs_cfg = RrsConfig::for_rowhammer_threshold(t_rh, base);
    vec![
        SchemeProfile {
            name: "blockhammer".into(),
            mapping_sram_bytes: None,
            dram_overhead: 0.0,
            commodity_dram: true,
        },
        SchemeProfile {
            name: "crow".into(),
            mapping_sram_bytes: Some(26 * 1024 * 1024),
            dram_overhead: overhead_for_threshold(t_rh, CrowVariant::Victim),
            commodity_dram: false,
        },
        SchemeProfile {
            name: "crow-agg".into(),
            mapping_sram_bytes: Some(aqua_report.mapping_sram_bytes),
            dram_overhead: overhead_for_threshold(t_rh, CrowVariant::Aggressor),
            commodity_dram: false,
        },
        SchemeProfile {
            name: "rrs".into(),
            mapping_sram_bytes: Some(rrs_cfg.rit_sram_bits() / 8),
            dram_overhead: 0.0,
            commodity_dram: true,
        },
        SchemeProfile {
            name: "aqua".into(),
            mapping_sram_bytes: Some(aqua_report.total_sram_bytes()),
            dram_overhead: aqua_cfg.dram_overhead(),
            commodity_dram: true,
        },
    ]
}

/// One column of Table VII: total per-rank SRAM including the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerBudget {
    /// Tracker SRAM, bytes.
    pub tracker_bytes: u64,
    /// Mapping table SRAM, bytes.
    pub mapping_bytes: u64,
    /// Buffers (copy buffer / swap buffers), bytes.
    pub buffer_bytes: u64,
}

impl TrackerBudget {
    /// Total SRAM per rank, bytes.
    pub fn total(&self) -> u64 {
        self.tracker_bytes + self.mapping_bytes + self.buffer_bytes
    }
}

/// Published per-rank SRAM figures of Table VII (Misra-Gries and Hydra
/// trackers; bytes).
pub fn table7() -> [(&'static str, TrackerBudget); 4] {
    let kb = 1024;
    [
        (
            "rrs-mg",
            TrackerBudget {
                tracker_bytes: 396 * kb,
                mapping_bytes: 2458 * kb, // 2.4 MB
                buffer_bytes: 16 * kb,
            },
        ),
        (
            "aqua-mg",
            TrackerBudget {
                tracker_bytes: 396 * kb,
                mapping_bytes: 33 * kb, // 32.6 KB
                buffer_bytes: 8 * kb,
            },
        ),
        (
            "rrs-hydra",
            TrackerBudget {
                tracker_bytes: 29 * kb, // 28.3 KB
                mapping_bytes: 2458 * kb,
                buffer_bytes: 16 * kb,
            },
        ),
        (
            "aqua-hydra",
            TrackerBudget {
                tracker_bytes: 31 * kb, // 30.3 KB
                mapping_bytes: 33 * kb,
                buffer_bytes: 8 * kb,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_aqua_is_tens_of_kb_rrs_is_megabytes() {
        let t = table6_storage(1000, &BaselineConfig::paper_table1());
        let get = |n: &str| t.iter().find(|p| p.name == n).unwrap().clone();
        let aqua = get("aqua").mapping_sram_bytes.unwrap();
        let rrs = get("rrs").mapping_sram_bytes.unwrap();
        assert!(aqua < 64 * 1024, "AQUA = {aqua} B");
        assert!(rrs > 1024 * 1024, "RRS = {rrs} B");
        assert!(rrs / aqua > 30, "ratio = {}", rrs / aqua);
    }

    #[test]
    fn table6_dram_overheads() {
        let t = table6_storage(1000, &BaselineConfig::paper_table1());
        let get = |n: &str| t.iter().find(|p| p.name == n).unwrap().clone();
        assert!((get("aqua").dram_overhead - 0.0113).abs() < 0.001);
        assert!(get("crow").dram_overhead > 10.0); // 1060%
        assert_eq!(get("rrs").dram_overhead, 0.0);
        assert_eq!(get("blockhammer").dram_overhead, 0.0);
    }

    #[test]
    fn table6_commodity_flags() {
        let t = table6_storage(1000, &BaselineConfig::paper_table1());
        for p in &t {
            let expect = !p.name.starts_with("crow");
            assert_eq!(p.commodity_dram, expect, "{}", p.name);
        }
    }

    #[test]
    fn table7_totals_match_paper() {
        // Paper: RRS-MG 2870 KB, AQUA-MG 437 KB, RRS-Hydra 2502 KB,
        // AQUA-Hydra 71 KB.
        let totals: Vec<(&str, u64)> = table7()
            .iter()
            .map(|(n, b)| (*n, b.total() / 1024))
            .collect();
        assert_eq!(totals[0], ("rrs-mg", 2870));
        assert_eq!(totals[1], ("aqua-mg", 437));
        assert_eq!(totals[2], ("rrs-hydra", 2503));
        assert_eq!(totals[3], ("aqua-hydra", 72));
    }
}
