//! Causal slowdown attribution from cost-ablation runs.
//!
//! A mitigation's measured slowdown is decomposed into the paper's
//! first-order costs (section IV-G): exclusive channel **blocking during
//! migrations**, mapping-table **lookup latency** on the access critical
//! path, and the **queueing pressure** of extra table traffic on the bus.
//!
//! Summing per-stall time from one instrumented run does not work here:
//! the MLP-limited cores overlap stalls with other outstanding misses, so
//! an X-picosecond stall rarely costs X picoseconds of throughput. The
//! attribution instead uses *what-if re-runs*: the identical seeded
//! simulation is repeated with exactly one cost zeroed (the `CostAblation`
//! knobs in `aqua-sim`), and each component is the work that comes back
//! when its cost is removed:
//!
//! ```text
//! slowdown  = (req_base - req_full) / req_base            x 100
//! component = (req_ablated - req_full) / req_base         x 100
//! residual  = slowdown - (migration + lookup + traffic)
//! ```
//!
//! The residual captures interaction terms (removing two costs together
//! recovers more than the sum of removing each alone) plus second-order
//! behavioral drift (a faster run progresses further through its
//! time-bounded workload and may trigger more migrations). A small
//! residual is the health check: if it exceeds the tolerance, either the
//! ablation knobs are not isolating their costs or the decomposition is
//! missing a component.

/// Requests completed by each run of an attribution matrix cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationCounts {
    /// Unmitigated baseline run (same seeds, `NoMitigation`).
    pub baseline: u64,
    /// Fully-costed mitigated run.
    pub full: u64,
    /// Mitigated run with migration channel-blocking zeroed.
    pub free_migration: u64,
    /// Mitigated run with table-lookup latency zeroed.
    pub free_lookup: u64,
    /// Mitigated run with table bus traffic zeroed.
    pub free_table_traffic: u64,
}

/// Slowdown decomposition for one scheme x workload cell, all in percent
/// of baseline throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attribution {
    /// Measured slowdown of the fully-costed run vs the baseline.
    pub slowdown_pct: f64,
    /// Slowdown attributable to exclusive channel blocking by migrations.
    pub migration_pct: f64,
    /// Slowdown attributable to table-lookup latency.
    pub lookup_pct: f64,
    /// Slowdown attributable to table-traffic queueing.
    pub table_traffic_pct: f64,
    /// Interaction terms and behavioral drift:
    /// `slowdown - (migration + lookup + table_traffic)`.
    pub residual_pct: f64,
}

impl Attribution {
    /// Decomposes the measured slowdown from ablation request counts.
    ///
    /// With `baseline == 0` (an empty or unrunnable cell) everything is
    /// reported as zero rather than NaN.
    pub fn from_counts(c: AblationCounts) -> Attribution {
        if c.baseline == 0 {
            return Attribution {
                slowdown_pct: 0.0,
                migration_pct: 0.0,
                lookup_pct: 0.0,
                table_traffic_pct: 0.0,
                residual_pct: 0.0,
            };
        }
        let base = c.baseline as f64;
        let pct = |ablated: u64| (ablated as f64 - c.full as f64) / base * 100.0;
        let slowdown_pct = (base - c.full as f64) / base * 100.0;
        let migration_pct = pct(c.free_migration);
        let lookup_pct = pct(c.free_lookup);
        let table_traffic_pct = pct(c.free_table_traffic);
        Attribution {
            slowdown_pct,
            migration_pct,
            lookup_pct,
            table_traffic_pct,
            residual_pct: slowdown_pct - (migration_pct + lookup_pct + table_traffic_pct),
        }
    }

    /// Sum of the three named components plus the residual. Equal to
    /// [`slowdown_pct`](Attribution::slowdown_pct) by construction (up to
    /// floating-point rounding); exposed so reports can assert the
    /// identity.
    pub fn component_sum(&self) -> f64 {
        self.migration_pct + self.lookup_pct + self.table_traffic_pct + self.residual_pct
    }

    /// Whether the decomposition is trustworthy: the residual (interaction
    /// + drift) is within `tolerance_pct` percentage points.
    pub fn residual_within(&self, tolerance_pct: f64) -> bool {
        self.residual_pct.abs() <= tolerance_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_and_residual_sum_to_the_measured_slowdown() {
        let a = Attribution::from_counts(AblationCounts {
            baseline: 10_000,
            full: 9_000,
            free_migration: 9_600,
            free_lookup: 9_150,
            free_table_traffic: 9_100,
        });
        assert!((a.slowdown_pct - 10.0).abs() < 1e-9);
        assert!((a.migration_pct - 6.0).abs() < 1e-9);
        assert!((a.lookup_pct - 1.5).abs() < 1e-9);
        assert!((a.table_traffic_pct - 1.0).abs() < 1e-9);
        assert!((a.residual_pct - 1.5).abs() < 1e-9);
        assert!((a.component_sum() - a.slowdown_pct).abs() < 1e-9);
        assert!(a.residual_within(1.5 + 1e-9));
        assert!(!a.residual_within(1.0));
    }

    #[test]
    fn ablated_run_slower_than_full_yields_a_negative_component() {
        // Behavioral drift can make an ablated run complete slightly less
        // work; the component goes negative instead of clamping, so the
        // sum identity still holds.
        let a = Attribution::from_counts(AblationCounts {
            baseline: 1_000,
            full: 950,
            free_migration: 940,
            free_lookup: 950,
            free_table_traffic: 950,
        });
        assert!(a.migration_pct < 0.0);
        assert!((a.component_sum() - a.slowdown_pct).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_reports_all_zeros() {
        let a = Attribution::from_counts(AblationCounts {
            baseline: 0,
            full: 0,
            free_migration: 0,
            free_lookup: 0,
            free_table_traffic: 0,
        });
        assert_eq!(a.slowdown_pct, 0.0);
        assert_eq!(a.residual_pct, 0.0);
        assert!(a.residual_within(0.0));
    }

    #[test]
    fn unmitigated_speed_means_zero_everything() {
        let a = Attribution::from_counts(AblationCounts {
            baseline: 5_000,
            full: 5_000,
            free_migration: 5_000,
            free_lookup: 5_000,
            free_table_traffic: 5_000,
        });
        assert_eq!(a.slowdown_pct, 0.0);
        assert_eq!(a.component_sum(), 0.0);
    }
}
