//! The analytical migration model of Appendix A (Figure 12).
//!
//! Let `f` be the fraction of mitigation-eligible rows (those reaching
//! `T_RH / 6` activations) that go on to reach `T_RH / 2`. In one epoch:
//!
//! - AQUA mitigates only the `f` rows, one row migration each;
//! - RRS mitigates the `f` rows three times (at `T_RH/6`, `2T_RH/6`,
//!   `3T_RH/6`) and the `1 - f` rows once, each mitigation being a swap of
//!   two rows.
//!
//! The relative migration count is `r(f) = 2 (1 + 2f) / f`: at best (every
//! eligible row is hot, `f = 1`) RRS does 6x more migrations than AQUA, and
//! the ratio grows without bound as `f` shrinks. Across the paper's 34
//! workloads the measured average is ~9x (Figure 6), corresponding to
//! `f ~= 0.4`.

use serde::{Deserialize, Serialize};

/// Relative number of row migrations RRS performs per AQUA migration.
///
/// # Panics
///
/// Panics unless `0 < f <= 1`.
pub fn rrs_over_aqua_ratio(f: f64) -> f64 {
    assert!(f > 0.0 && f <= 1.0, "f must be in (0, 1]");
    2.0 * (1.0 + 2.0 * f) / f
}

/// The `f` implied by an observed migration ratio (inverse of
/// [`rrs_over_aqua_ratio`]).
///
/// # Panics
///
/// Panics if `ratio <= 6` (unachievable: 6x is the model's lower bound).
pub fn implied_f(ratio: f64) -> f64 {
    assert!(ratio > 6.0, "the model's minimum ratio is 6");
    2.0 / (ratio - 4.0)
}

/// A sampled curve for Figure 12: `(f, r(f))` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure12 {
    /// Sampled `(f, ratio)` pairs, `f` ascending.
    pub points: Vec<(f64, f64)>,
}

/// Samples `n` points of the Figure 12 curve over `f` in `[0.05, 1.0]`.
pub fn figure12(n: usize) -> Figure12 {
    let n = n.max(2);
    let points = (0..n)
        .map(|i| {
            let f = 0.05 + 0.95 * i as f64 / (n - 1) as f64;
            (f, rrs_over_aqua_ratio(f))
        })
        .collect();
    Figure12 { points }
}

/// Expected migration counts per epoch for both schemes given the number of
/// rows in each band (used to cross-check the simulator against the model).
pub fn expected_migrations(rows_at_trh_6: u64, rows_at_trh_2: u64) -> (f64, f64) {
    let eligible = rows_at_trh_6 as f64;
    let hot = rows_at_trh_2 as f64;
    let aqua = hot; // one migration per hot row
    let rrs = (hot * 3.0 + (eligible - hot)) * 2.0; // swaps move two rows
    (aqua, rrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_case_is_six_x() {
        assert!((rrs_over_aqua_ratio(1.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn paper_average_nine_x_implies_f_04() {
        let f = implied_f(9.0);
        assert!((f - 0.4).abs() < 1e-12, "f = {f}");
        assert!((rrs_over_aqua_ratio(0.4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_grows_as_f_shrinks() {
        assert!(rrs_over_aqua_ratio(0.1) > rrs_over_aqua_ratio(0.5));
        assert!(rrs_over_aqua_ratio(0.05) > 40.0);
    }

    #[test]
    fn figure12_is_monotone_decreasing() {
        let fig = figure12(50);
        assert_eq!(fig.points.len(), 50);
        for w in fig.points.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
        // Curve ends at the 6x floor.
        assert!((fig.points.last().unwrap().1 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn expected_migrations_consistency() {
        // With f = 1 (all eligible rows hot): ratio 6x.
        let (aqua, rrs) = expected_migrations(100, 100);
        assert_eq!(aqua, 100.0);
        assert_eq!(rrs, 600.0);
        // f = 0.4: ratio 9x.
        let (aqua, rrs) = expected_migrations(1000, 400);
        assert!((rrs / aqua - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "minimum ratio")]
    fn implied_f_rejects_sub_six() {
        implied_f(5.0);
    }
}
