//! Worst-case (denial-of-service) slowdown bounds.

use aqua_dram::{DdrTiming, DramGeometry};

/// AQUA's worst-case slowdown under an adversarial migration flood
/// (section VI-C).
///
/// The attacker triggers one quarantine per bank every `A * tRC`
/// (22.5 us at `A` = 500); each quarantine may require an eviction plus an
/// install (2 x 1.37 us). With all `B` banks attacked in parallel the
/// channel is busy `B * 2.74 us` per period: slowdown
/// `(t_AGG + B * 2 * t_mov) / t_AGG ~= 2.95x`.
pub fn aqua_worst_case_slowdown(timing: &DdrTiming, geometry: &DramGeometry, a: u64) -> f64 {
    let t_agg = timing.aggressor_time(a).as_ps() as f64;
    let banks = geometry.total_banks() as f64;
    let per_mitigation = 2.0 * timing.row_migration_latency(geometry).as_ps() as f64;
    (t_agg + banks * per_mitigation) / t_agg
}

/// RRS's worst-case slowdown: the same flood at the lower threshold
/// `T_RH / 6`, with each re-swap moving four rows (section IV-F) — about
/// 12x at `T_RH` = 1K (the paper's Table VI quotes 11x).
pub fn rrs_worst_case_slowdown(timing: &DdrTiming, geometry: &DramGeometry, t_rrs: u64) -> f64 {
    let t_agg = timing.aggressor_time(t_rrs).as_ps() as f64;
    let banks = geometry.total_banks() as f64;
    let per_mitigation = 4.0 * timing.row_migration_latency(geometry).as_ps() as f64;
    (t_agg + banks * per_mitigation) / t_agg
}

/// Blockhammer's worst-case slowdown for a two-row conflict pattern
/// (section VII-B): unthrottled the pattern completes one round per
/// `round_ns`; throttled it is limited to `quota` rounds per 64 ms window.
pub fn blockhammer_worst_case_slowdown(timing: &DdrTiming, quota: u64, round_ns: u64) -> f64 {
    let rounds_unthrottled = timing.t_refw.as_ns() as f64 / round_ns as f64;
    rounds_unthrottled / quota as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DdrTiming, DramGeometry) {
        (DdrTiming::ddr4_2400(), DramGeometry::paper_table1())
    }

    #[test]
    fn aqua_bound_is_2_95x() {
        let (t, g) = setup();
        let s = aqua_worst_case_slowdown(&t, &g, 500);
        assert!((2.9..=3.0).contains(&s), "AQUA worst case = {s}");
    }

    #[test]
    fn rrs_bound_is_about_11x() {
        let (t, g) = setup();
        let s = rrs_worst_case_slowdown(&t, &g, 166);
        assert!((10.0..=14.0).contains(&s), "RRS worst case = {s}");
    }

    #[test]
    fn blockhammer_bound_is_1280x() {
        let (t, _) = setup();
        let s = blockhammer_worst_case_slowdown(&t, 500, 100);
        assert!((1275.0..=1285.0).contains(&s), "BH worst case = {s}");
    }

    #[test]
    fn aqua_bound_stays_bounded_at_tiny_thresholds() {
        // Even at an effective threshold of 50 the slowdown is bounded
        // (unlike Blockhammer's, which scales with the quota).
        let (t, g) = setup();
        let s = aqua_worst_case_slowdown(&t, &g, 50);
        assert!(s < 21.0, "{s}");
    }
}
