//! Adversarial access patterns (threat model of section II-A, attacks of
//! sections VI and VII).

use crate::{AddressSpace, MemoryRequest, RequestGenerator};
use aqua_dram::{Duration, GlobalRowId};

/// Round-robin hammering of a fixed row set at maximum rate.
///
/// Covers single-sided (`rows.len() == 1`), double-sided (two rows around a
/// victim), and many-sided patterns. A zero gap lets bank timing (`tRC`)
/// limit the achieved activation rate, as a real attacker would.
#[derive(Debug, Clone)]
pub struct Hammer {
    label: String,
    rows: Vec<GlobalRowId>,
    next: usize,
    gap: Duration,
}

impl Hammer {
    /// Hammers `rows` round-robin with `gap` compute time between accesses.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn new(label: impl Into<String>, rows: Vec<GlobalRowId>, gap: Duration) -> Self {
        assert!(!rows.is_empty(), "hammer pattern needs at least one row");
        Hammer {
            label: label.into(),
            rows,
            next: 0,
            gap,
        }
    }

    /// Single-sided hammering of one row.
    pub fn single_sided(space: &AddressSpace, bank: u32, row: u32) -> Self {
        Hammer::new("single-sided", vec![space.at(bank, row)], Duration::ZERO)
    }

    /// Double-sided hammering around `victim` (activates `victim +- 1`).
    ///
    /// # Panics
    ///
    /// Panics if `victim` is the first row of the bank.
    pub fn double_sided(space: &AddressSpace, bank: u32, victim: u32) -> Self {
        assert!(victim >= 1, "double-sided needs a row above and below");
        Hammer::new(
            "double-sided",
            vec![space.at(bank, victim - 1), space.at(bank, victim + 1)],
            Duration::ZERO,
        )
    }

    /// Many-sided hammering of `n` rows spaced 2 apart (TRRespass-style).
    pub fn many_sided(space: &AddressSpace, bank: u32, first: u32, n: u32) -> Self {
        let rows = (0..n).map(|i| space.at(bank, first + 2 * i)).collect();
        Hammer::new(format!("{n}-sided"), rows, Duration::ZERO)
    }

    /// The Half-Double pattern around `victim`: hammer the *distance-2* rows
    /// (`victim +- 2`) at maximum rate. Under victim-refresh, every
    /// mitigation refreshes the distance-1 rows (`victim +- 1`); those
    /// refreshes are row activations the tracker never sees, so the
    /// distance-1 rows silently accumulate far more than `T_RH` activations
    /// and flip bits in `victim` (section II-D, Figure 1a).
    ///
    /// # Panics
    ///
    /// Panics if `victim < 2`.
    pub fn half_double(space: &AddressSpace, bank: u32, victim: u32) -> Self {
        assert!(victim >= 2, "half-double needs two rows of headroom");
        Hammer::new(
            "half-double",
            vec![space.at(bank, victim - 2), space.at(bank, victim + 2)],
            Duration::ZERO,
        )
    }

    /// Hammers the two rows at distance `d` from `victim` (`victim +- d`).
    /// `d = 1` is the classic double-sided pattern; `d = 2` is Half-Double;
    /// larger `d` models the escalation the paper warns about: if the
    /// defence refreshes out to distance `d - 1`, its refreshes of the
    /// `victim +- 1` rows still hammer the victim (section I).
    ///
    /// # Panics
    ///
    /// Panics if `victim < d` or `d == 0`.
    pub fn distance_sided(space: &AddressSpace, bank: u32, victim: u32, d: u32) -> Self {
        assert!(d >= 1 && victim >= d, "need d rows of headroom");
        Hammer::new(
            format!("distance-{d}"),
            vec![space.at(bank, victim - d), space.at(bank, victim + d)],
            Duration::ZERO,
        )
    }

    /// The Blockhammer worst-case pattern: two conflicting rows in one bank
    /// (one round per ~100 ns unthrottled; throttled to the per-row quota).
    pub fn row_conflict(space: &AddressSpace, bank: u32, first: u32) -> Self {
        Hammer::new(
            "row-conflict",
            vec![space.at(bank, first), space.at(bank, first + 1)],
            Duration::ZERO,
        )
    }

    /// The rows this pattern hammers.
    pub fn rows(&self) -> &[GlobalRowId] {
        &self.rows
    }
}

impl RequestGenerator for Hammer {
    fn next_request(&mut self) -> MemoryRequest {
        let row = self.rows[self.next];
        self.next = (self.next + 1) % self.rows.len();
        MemoryRequest { row, gap: self.gap }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// The worst-case denial-of-service pattern of section VI-C: in every bank,
/// hammer fresh row pairs exactly to the migration threshold, then move on —
/// maximizing the row-migration rate (one migration per bank per
/// `A * tRC` = 22.5 us at `T_RH` = 1K).
///
/// Each bank alternates between two rows so that every access is a
/// row-buffer conflict (a genuine activation); with an open-page policy,
/// re-accessing a single row would only produce row-buffer hits.
#[derive(Debug, Clone)]
pub struct MigrationFlood {
    space: AddressSpace,
    banks: u32,
    threshold: u64,
    /// Per-bank (current row pair base, activations so far, toggle).
    cursor: Vec<(u32, u64, bool)>,
    next_bank: u32,
    rows_per_bank_budget: u32,
}

impl MigrationFlood {
    /// Creates the flood pattern for `banks` banks, advancing to a new row
    /// pair after each row of the pair accrues `threshold` activations.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(space: &AddressSpace, banks: u32, threshold: u64) -> Self {
        assert!(threshold > 0);
        // Half the usable rows of one bank: pair partner lives in the upper
        // half, the advancing base in the lower half.
        let budget = (space.len() / space.geometry().total_banks() as u64 / 2) as u32;
        MigrationFlood {
            space: *space,
            banks,
            threshold,
            cursor: vec![(0, 0, false); banks as usize],
            next_bank: 0,
            rows_per_bank_budget: budget.max(1),
        }
    }
}

impl RequestGenerator for MigrationFlood {
    fn next_request(&mut self) -> MemoryRequest {
        let bank = self.next_bank;
        self.next_bank = (self.next_bank + 1) % self.banks;
        let (base, acts, toggle) = &mut self.cursor[bank as usize];
        let row = if *toggle {
            // The conflict partner lives in the upper half of the budget.
            *base + self.rows_per_bank_budget
        } else {
            *base
        };
        *toggle = !*toggle;
        *acts += 1;
        // Both rows of the pair reach `threshold` after 2 * threshold
        // accesses; then move to a fresh pair.
        if *acts >= 2 * self.threshold {
            *acts = 0;
            *base = (*base + 1) % self.rows_per_bank_budget;
        }
        MemoryRequest {
            row: self.space.at(bank, row),
            gap: Duration::ZERO,
        }
    }

    fn label(&self) -> String {
        "migration-flood".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::DramGeometry;

    fn space() -> AddressSpace {
        AddressSpace::new(DramGeometry::tiny(), 0.9)
    }

    #[test]
    fn double_sided_straddles_victim() {
        let s = space();
        let h = Hammer::double_sided(&s, 1, 100);
        let g = s.geometry();
        let rows: Vec<u32> = h.rows().iter().map(|&r| g.expand(r).unwrap().row).collect();
        assert_eq!(rows, vec![99, 101]);
    }

    #[test]
    fn half_double_hammers_distance_two() {
        let s = space();
        let h = Hammer::half_double(&s, 0, 50);
        let g = s.geometry();
        let rows: Vec<u32> = h.rows().iter().map(|&r| g.expand(r).unwrap().row).collect();
        assert_eq!(rows, vec![48, 52]);
    }

    #[test]
    fn hammer_alternates_rows() {
        let s = space();
        let mut h = Hammer::double_sided(&s, 0, 10);
        let a = h.next_request().row;
        let b = h.next_request().row;
        let c = h.next_request().row;
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn many_sided_spacing() {
        let s = space();
        let h = Hammer::many_sided(&s, 0, 10, 4);
        let g = s.geometry();
        let rows: Vec<u32> = h.rows().iter().map(|&r| g.expand(r).unwrap().row).collect();
        assert_eq!(rows, vec![10, 12, 14, 16]);
    }

    #[test]
    fn migration_flood_alternates_then_advances() {
        let s = space();
        let mut f = MigrationFlood::new(&s, 1, 3);
        let g = s.geometry();
        let rows: Vec<u32> = (0..8)
            .map(|_| g.expand(f.next_request().row).unwrap().row)
            .collect();
        // Pair (0, 0+budget) alternates for 2 * threshold = 6 accesses,
        // then the pair advances to (1, 1+budget).
        let hi = rows[1];
        assert_ne!(rows[0], hi, "accesses must conflict in the bank");
        assert_eq!(&rows[0..6], &[0, hi, 0, hi, 0, hi]);
        assert_eq!(&rows[6..8], &[1, hi + 1]);
    }

    #[test]
    fn migration_flood_spreads_across_banks() {
        let s = space();
        let mut f = MigrationFlood::new(&s, 4, 100);
        let g = s.geometry();
        let banks: std::collections::HashSet<u32> = (0..8)
            .map(|_| g.expand(f.next_request().row).unwrap().bank.index())
            .collect();
        assert_eq!(banks.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_hammer_rejected() {
        Hammer::new("x", vec![], Duration::ZERO);
    }
}
