//! Trace recording and replay.
//!
//! Any [`RequestGenerator`] stream can be captured into a [`RecordedTrace`]
//! — a flat, deterministic list of `(row, gap)` pairs — and replayed later,
//! looped, or written to / read from a simple line-oriented text format.
//! Recorded traces make experiments exactly repeatable across schemes
//! (the harness already achieves this with seeds; traces additionally allow
//! externally produced access patterns to be fed into the simulator).

use crate::{MemoryRequest, RequestGenerator};
use aqua_dram::{AddressError, Duration, GlobalRowId, TopologyConfig};
use std::io::{self, BufRead, BufReader, Read, Write};

/// A finite, materialized request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Label carried into reports.
    pub label: String,
    /// `(row id, gap in picoseconds)` per request.
    pub requests: Vec<(u64, u64)>,
}

impl RecordedTrace {
    /// Captures the next `n` requests of a generator.
    pub fn record(gen: &mut dyn RequestGenerator, n: usize) -> Self {
        RecordedTrace {
            label: format!("trace:{}", gen.label()),
            requests: (0..n)
                .map(|_| {
                    let r = gen.next_request();
                    (r.row.index(), r.gap.as_ps())
                })
                .collect(),
        }
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Turns the trace into a looping generator (wraps around at the end).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn into_replayer(self) -> TraceReplayer {
        assert!(!self.is_empty(), "cannot replay an empty trace");
        TraceReplayer {
            trace: self,
            next: 0,
        }
    }

    /// Writes the trace in the line format `row,gap_ps` with a header line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "# aqua-trace {}", self.label)?;
        for (row, gap) in &self.requests {
            writeln!(w, "{row},{gap}")?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`RecordedTrace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error on malformed lines or I/O failure.
    pub fn read_from<R: Read>(r: R) -> io::Result<Self> {
        let mut lines = BufReader::new(r).lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty trace"))??;
        let label = header
            .strip_prefix("# aqua-trace ")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing trace header"))?
            .to_string();
        let mut requests = Vec::new();
        for line in lines {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let (row, gap) = line
                .split_once(',')
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed line"))?;
            let parse = |s: &str| {
                s.parse::<u64>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            };
            requests.push((parse(row)?, parse(gap)?));
        }
        Ok(RecordedTrace { label, requests })
    }

    /// Splits a system-row trace into one per-channel trace per shard.
    ///
    /// The rows in `self` are interpreted as *system* row ids (the
    /// channel-major flattening of [`TopologyConfig::encode`]); each output
    /// trace holds the per-channel remainder ([`GlobalRowId`]) of the
    /// requests routed to that channel. Think time is conserved: the gaps
    /// of requests routed *elsewhere* accumulate into the next request a
    /// channel does receive, so every channel observes the original
    /// wallclock schedule of its own accesses. A single-channel topology
    /// returns the trace unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] if any row id exceeds
    /// [`TopologyConfig::total_rows`].
    pub fn fan_out(&self, topology: &TopologyConfig) -> Result<Vec<RecordedTrace>, AddressError> {
        if topology.channels <= 1 {
            return Ok(vec![self.clone()]);
        }
        let mut out: Vec<RecordedTrace> = (0..topology.channels)
            .map(|c| RecordedTrace {
                label: format!("{}#ch{c}", self.label),
                requests: Vec::new(),
            })
            .collect();
        // Gap owed to each channel's next request by requests routed away.
        let mut pending = vec![0u64; topology.channels as usize];
        for &(row, gap) in &self.requests {
            let (channel, local) = topology.split(row)?;
            for (i, p) in pending.iter_mut().enumerate() {
                *p += gap;
                if i == channel as usize {
                    out[i].requests.push((local.index(), *p));
                    *p = 0;
                }
            }
        }
        Ok(out)
    }
}

/// Replays a [`RecordedTrace`] in a loop.
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    trace: RecordedTrace,
    next: usize,
}

impl RequestGenerator for TraceReplayer {
    fn next_request(&mut self) -> MemoryRequest {
        let (row, gap) = self.trace.requests[self.next];
        self.next = (self.next + 1) % self.trace.requests.len();
        MemoryRequest {
            row: GlobalRowId::new(row),
            gap: Duration::from_ps(gap),
        }
    }

    fn label(&self) -> String {
        self.trace.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressSpace, HotColdGenerator};
    use aqua_dram::DramGeometry;

    fn sample_trace() -> RecordedTrace {
        let space = AddressSpace::new(DramGeometry::tiny(), 0.9);
        let mut gen = HotColdGenerator::uniform(&space, 0, 64, 1000, Duration::from_ms(64), 7);
        RecordedTrace::record(&mut gen, 50)
    }

    #[test]
    fn record_captures_the_exact_stream() {
        let space = AddressSpace::new(DramGeometry::tiny(), 0.9);
        let mut a = HotColdGenerator::uniform(&space, 0, 64, 1000, Duration::from_ms(64), 7);
        let mut b = HotColdGenerator::uniform(&space, 0, 64, 1000, Duration::from_ms(64), 7);
        let trace = RecordedTrace::record(&mut a, 20);
        let mut replay = trace.into_replayer();
        for _ in 0..20 {
            assert_eq!(replay.next_request(), b.next_request());
        }
    }

    #[test]
    fn replayer_loops() {
        let trace = sample_trace();
        let first = trace.requests[0];
        let len = trace.len();
        let mut replay = trace.into_replayer();
        for _ in 0..len {
            replay.next_request();
        }
        let wrapped = replay.next_request();
        assert_eq!(wrapped.row.index(), first.0);
    }

    #[test]
    fn text_roundtrip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = RecordedTrace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(RecordedTrace::read_from("no header\n1,2\n".as_bytes()).is_err());
        assert!(RecordedTrace::read_from("# aqua-trace x\nnot-a-pair\n".as_bytes()).is_err());
        assert!(RecordedTrace::read_from("# aqua-trace x\n1,abc\n".as_bytes()).is_err());
    }

    #[test]
    fn fan_out_on_one_channel_is_identity() {
        let trace = sample_trace();
        let topo = TopologyConfig::new(1, &DramGeometry::tiny());
        let shards = trace.fan_out(&topo).unwrap();
        assert_eq!(shards, vec![trace]);
    }

    #[test]
    fn fan_out_routes_rows_and_conserves_think_time() {
        let geom = DramGeometry::tiny();
        let topo = TopologyConfig::new(4, &geom);
        let per_channel = topo.rows_per_channel();
        // Interleave channels 2, 0, 2, 3 with distinct local rows and gaps.
        let trace = RecordedTrace {
            label: "mix".into(),
            requests: vec![
                (2 * per_channel + 5, 100),
                (7, 40),
                (2 * per_channel + 9, 60),
                (3 * per_channel + 1, 11),
            ],
        };
        let shards = trace.fan_out(&topo).unwrap();
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].label, "mix#ch0");
        // Channel 0's only request carries the gap of the channel-2 request
        // that preceded it plus its own.
        assert_eq!(shards[0].requests, vec![(7, 140)]);
        assert_eq!(shards[1].requests, vec![]);
        assert_eq!(shards[2].requests, vec![(5, 100), (9, 100)]);
        assert_eq!(shards[3].requests, vec![(1, 211)]);
        // Total think time before the last routed request of each channel
        // never exceeds the whole schedule.
        let total: u64 = trace.requests.iter().map(|&(_, g)| g).sum();
        for shard in &shards {
            let used: u64 = shard.requests.iter().map(|&(_, g)| g).sum();
            assert!(used <= total);
        }
    }

    #[test]
    fn fan_out_rejects_rows_outside_the_topology() {
        let topo = TopologyConfig::new(2, &DramGeometry::tiny());
        let trace = RecordedTrace {
            label: "bad".into(),
            requests: vec![(topo.total_rows(), 1)],
        };
        assert!(trace.fan_out(&topo).is_err());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_panics() {
        RecordedTrace {
            label: "x".into(),
            requests: vec![],
        }
        .into_replayer();
    }
}
