//! Trace recording and replay.
//!
//! Any [`RequestGenerator`] stream can be captured into a [`RecordedTrace`]
//! — a flat, deterministic list of `(row, gap)` pairs — and replayed later,
//! looped, or written to / read from a simple line-oriented text format.
//! Recorded traces make experiments exactly repeatable across schemes
//! (the harness already achieves this with seeds; traces additionally allow
//! externally produced access patterns to be fed into the simulator).

use crate::{MemoryRequest, RequestGenerator};
use aqua_dram::{Duration, GlobalRowId};
use std::io::{self, BufRead, BufReader, Read, Write};

/// A finite, materialized request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Label carried into reports.
    pub label: String,
    /// `(row id, gap in picoseconds)` per request.
    pub requests: Vec<(u64, u64)>,
}

impl RecordedTrace {
    /// Captures the next `n` requests of a generator.
    pub fn record(gen: &mut dyn RequestGenerator, n: usize) -> Self {
        RecordedTrace {
            label: format!("trace:{}", gen.label()),
            requests: (0..n)
                .map(|_| {
                    let r = gen.next_request();
                    (r.row.index(), r.gap.as_ps())
                })
                .collect(),
        }
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Turns the trace into a looping generator (wraps around at the end).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn into_replayer(self) -> TraceReplayer {
        assert!(!self.is_empty(), "cannot replay an empty trace");
        TraceReplayer {
            trace: self,
            next: 0,
        }
    }

    /// Writes the trace in the line format `row,gap_ps` with a header line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "# aqua-trace {}", self.label)?;
        for (row, gap) in &self.requests {
            writeln!(w, "{row},{gap}")?;
        }
        Ok(())
    }

    /// Reads a trace previously written by [`RecordedTrace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error on malformed lines or I/O failure.
    pub fn read_from<R: Read>(r: R) -> io::Result<Self> {
        let mut lines = BufReader::new(r).lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty trace"))??;
        let label = header
            .strip_prefix("# aqua-trace ")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing trace header"))?
            .to_string();
        let mut requests = Vec::new();
        for line in lines {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            let (row, gap) = line
                .split_once(',')
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed line"))?;
            let parse = |s: &str| {
                s.parse::<u64>()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            };
            requests.push((parse(row)?, parse(gap)?));
        }
        Ok(RecordedTrace { label, requests })
    }
}

/// Replays a [`RecordedTrace`] in a loop.
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    trace: RecordedTrace,
    next: usize,
}

impl RequestGenerator for TraceReplayer {
    fn next_request(&mut self) -> MemoryRequest {
        let (row, gap) = self.trace.requests[self.next];
        self.next = (self.next + 1) % self.trace.requests.len();
        MemoryRequest {
            row: GlobalRowId::new(row),
            gap: Duration::from_ps(gap),
        }
    }

    fn label(&self) -> String {
        self.trace.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressSpace, HotColdGenerator};
    use aqua_dram::DramGeometry;

    fn sample_trace() -> RecordedTrace {
        let space = AddressSpace::new(DramGeometry::tiny(), 0.9);
        let mut gen = HotColdGenerator::uniform(&space, 0, 64, 1000, Duration::from_ms(64), 7);
        RecordedTrace::record(&mut gen, 50)
    }

    #[test]
    fn record_captures_the_exact_stream() {
        let space = AddressSpace::new(DramGeometry::tiny(), 0.9);
        let mut a = HotColdGenerator::uniform(&space, 0, 64, 1000, Duration::from_ms(64), 7);
        let mut b = HotColdGenerator::uniform(&space, 0, 64, 1000, Duration::from_ms(64), 7);
        let trace = RecordedTrace::record(&mut a, 20);
        let mut replay = trace.into_replayer();
        for _ in 0..20 {
            assert_eq!(replay.next_request(), b.next_request());
        }
    }

    #[test]
    fn replayer_loops() {
        let trace = sample_trace();
        let first = trace.requests[0];
        let len = trace.len();
        let mut replay = trace.into_replayer();
        for _ in 0..len {
            replay.next_request();
        }
        let wrapped = replay.next_request();
        assert_eq!(wrapped.row.index(), first.0);
    }

    #[test]
    fn text_roundtrip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = RecordedTrace::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(RecordedTrace::read_from("no header\n1,2\n".as_bytes()).is_err());
        assert!(RecordedTrace::read_from("# aqua-trace x\nnot-a-pair\n".as_bytes()).is_err());
        assert!(RecordedTrace::read_from("# aqua-trace x\n1,abc\n".as_bytes()).is_err());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_panics() {
        RecordedTrace {
            label: "x".into(),
            requests: vec![],
        }
        .into_replayer();
    }
}
