//! Workload and attack-pattern generators.
//!
//! The paper evaluates AQUA on 18 SPEC CPU2017 *rate* workloads and 16
//! four-way mixes running under gem5. Neither SPEC binaries nor gem5 traces
//! are available here, so this crate substitutes *calibrated synthetic
//! generators*: for each workload, Table II of the paper publishes the MPKI
//! and the number of rows receiving 166+/500+/1000+ activations per 64 ms
//! epoch — precisely the statistics that determine how many mitigations a
//! row-migration scheme performs and how its cost is amortized. The
//! generators reproduce those statistics exactly (in expectation), so the
//! *shape* of every result — who wins, by what factor — carries over even
//! though absolute IPC differs from the authors' gem5 testbed. See DESIGN.md
//! for the substitution rationale.
//!
//! The crate also provides the adversarial patterns of the security analysis:
//! single-/double-/many-sided hammering, the Half-Double pattern (far
//! aggressors at distance 2), the worst-case denial-of-service pattern of
//! section VI-C, and a row-conflict pattern that exhibits Blockhammer's
//! 1280x worst case.
//!
//! # Example
//!
//! ```
//! use aqua_dram::BaselineConfig;
//! use aqua_workload::{spec, AddressSpace, RequestGenerator};
//!
//! let base = BaselineConfig::paper_table1();
//! let space = AddressSpace::new(base.geometry, 0.98);
//! let lbm = spec::by_name("lbm").unwrap();
//! let mut gen = lbm.generator(&space, /*core=*/ 0, base.cores, 42);
//! let req = gen.next_request();
//! assert!(space.contains(req.row));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attack;
mod gen;
mod mix;
mod space;
pub mod spec;
mod trace;

pub use gen::HotColdGenerator;
pub use mix::{mix_table, MixWorkload};
pub use space::AddressSpace;
pub use spec::SpecWorkload;
pub use trace::{RecordedTrace, TraceReplayer};

use aqua_dram::{Duration, GlobalRowId};

/// One memory request produced by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRequest {
    /// The OS-visible row accessed.
    pub row: GlobalRowId,
    /// Compute ("think") time separating this request from the previous one
    /// issued by the same core.
    pub gap: Duration,
}

/// An infinite, deterministic stream of memory requests for one core.
pub trait RequestGenerator: Send {
    /// Produces the next request.
    fn next_request(&mut self) -> MemoryRequest;

    /// Human-readable label for reports.
    fn label(&self) -> String;
}

/// Nominal instructions one core retires per millisecond at the baseline
/// IPC of 1.0 and 3 GHz (used to convert MPKI into a request rate).
pub const INSTRUCTIONS_PER_MS_PER_CORE: u64 = 3_000_000;

/// Derives the workload seed for one channel shard of a multi-channel
/// system.
///
/// Channel 0 keeps `seed` unchanged, so a sharded single-channel run
/// replays exactly the same request streams as the unsharded simulator.
/// Higher channels get independent, well-mixed seeds (splitmix64
/// finalizer over a channel-tagged state), so their cores do not hammer
/// the same rows in lockstep. The mapping is pure: equal inputs always
/// produce equal seeds, keeping sharded runs replayable.
pub fn channel_seed(seed: u64, channel: u32) -> u64 {
    if channel == 0 {
        return seed;
    }
    let mut z = seed ^ u64::from(channel).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_rate_conversion() {
        // 20.9 MPKI at 3 GHz, IPC 1 => ~4.0M misses per core per 64 ms.
        let misses_per_epoch = (20.9 * (INSTRUCTIONS_PER_MS_PER_CORE * 64) as f64 / 1000.0) as u64;
        assert!((3_900_000..4_100_000).contains(&misses_per_epoch));
    }

    #[test]
    fn channel_seed_is_identity_on_channel_zero_and_mixed_elsewhere() {
        assert_eq!(channel_seed(42, 0), 42);
        assert_eq!(channel_seed(42, 3), channel_seed(42, 3), "pure");
        let seeds: std::collections::BTreeSet<u64> = (0..16).map(|c| channel_seed(42, c)).collect();
        assert_eq!(seeds.len(), 16, "distinct per channel");
        // Nearby base seeds do not collide after mixing.
        assert_ne!(channel_seed(42, 1), channel_seed(43, 1));
    }
}
