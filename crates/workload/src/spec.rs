//! The 18 SPEC CPU2017 workload profiles of Table II.

use crate::{AddressSpace, HotColdGenerator};
use serde::{Deserialize, Serialize};

/// One row of the paper's Table II: the per-64 ms activation profile of a
/// SPEC CPU2017 rate workload on the 4-core baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecWorkload {
    /// Workload name.
    pub name: &'static str,
    /// System misses per kilo-instruction.
    pub mpki: f64,
    /// Rows with 166+ activations per epoch (includes the next two columns).
    pub act_166: u32,
    /// Rows with 500+ activations per epoch.
    pub act_500: u32,
    /// Rows with 1000+ activations per epoch.
    pub act_1000: u32,
}

/// Table II of the paper, verbatim.
pub const TABLE2: [SpecWorkload; 18] = [
    SpecWorkload {
        name: "lbm",
        mpki: 20.9,
        act_166: 6794,
        act_500: 5437,
        act_1000: 0,
    },
    SpecWorkload {
        name: "blender",
        mpki: 14.8,
        act_166: 6085,
        act_500: 3021,
        act_1000: 572,
    },
    SpecWorkload {
        name: "gcc",
        mpki: 6.32,
        act_166: 4850,
        act_500: 1836,
        act_1000: 111,
    },
    SpecWorkload {
        name: "mcf",
        mpki: 7.02,
        act_166: 4819,
        act_500: 835,
        act_1000: 393,
    },
    SpecWorkload {
        name: "cactuBSSN",
        mpki: 2.57,
        act_166: 2515,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "roms",
        mpki: 4.37,
        act_166: 1150,
        act_500: 191,
        act_1000: 11,
    },
    SpecWorkload {
        name: "xz",
        mpki: 0.41,
        act_166: 655,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "perlbench",
        mpki: 0.74,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "bwaves",
        mpki: 0.21,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "namd",
        mpki: 0.38,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "povray",
        mpki: 0.01,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "wrf",
        mpki: 0.02,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "deepsjeng",
        mpki: 0.25,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "imagick",
        mpki: 0.27,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "leela",
        mpki: 0.03,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "nab",
        mpki: 0.54,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "exchange2",
        mpki: 0.01,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
    SpecWorkload {
        name: "parest",
        mpki: 0.1,
        act_166: 0,
        act_500: 0,
        act_1000: 0,
    },
];

/// Looks up a Table II workload by name.
pub fn by_name(name: &str) -> Option<SpecWorkload> {
    TABLE2.iter().copied().find(|w| w.name == name)
}

impl SpecWorkload {
    /// System-wide memory requests per 64 ms epoch implied by the MPKI at
    /// the nominal IPC of 1.0 on `cores` cores.
    pub fn requests_per_epoch(&self, cores: u32) -> u64 {
        let instr_per_epoch = crate::INSTRUCTIONS_PER_MS_PER_CORE * 64 * cores as u64;
        (self.mpki * instr_per_epoch as f64 / 1000.0) as u64
    }

    /// Builds the calibrated generator for core `core` of `cores` (rate mode:
    /// each core runs one copy with its share of the Table II row counts).
    pub fn generator(
        &self,
        space: &AddressSpace,
        core: u32,
        cores: u32,
        seed: u64,
    ) -> HotColdGenerator {
        HotColdGenerator::calibrated(self, space, core, cores, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_18_workloads() {
        assert_eq!(TABLE2.len(), 18);
        assert!(by_name("lbm").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn activation_columns_are_nested() {
        // Rows with 1000+ activations necessarily have 500+ and 166+.
        for w in TABLE2 {
            assert!(w.act_166 >= w.act_500, "{}", w.name);
            assert!(w.act_500 >= w.act_1000, "{}", w.name);
        }
    }

    #[test]
    fn average_mpki_close_to_paper() {
        // The paper reports an average of 3.5 (over all 34 workloads, with
        // rounding); the arithmetic mean of the 18 printed rows is 3.28.
        let avg: f64 = TABLE2.iter().map(|w| w.mpki).sum::<f64>() / 18.0;
        assert!((avg - 3.5).abs() < 0.3, "avg MPKI = {avg}");
    }

    #[test]
    fn average_hot_rows_close_to_paper() {
        // Paper's stated averages: 1665 / 694 / 57 (rounded, 34 workloads);
        // the printed 18 rows average to 1493 / 629 / 60.
        let a166: f64 = TABLE2.iter().map(|w| w.act_166 as f64).sum::<f64>() / 18.0;
        let a500: f64 = TABLE2.iter().map(|w| w.act_500 as f64).sum::<f64>() / 18.0;
        let a1k: f64 = TABLE2.iter().map(|w| w.act_1000 as f64).sum::<f64>() / 18.0;
        assert!((a166 - 1665.0).abs() < 200.0, "{a166}");
        assert!((a500 - 694.0).abs() < 100.0, "{a500}");
        assert!((a1k - 57.0).abs() < 10.0, "{a1k}");
    }

    #[test]
    fn request_rate_scales_with_cores() {
        let lbm = by_name("lbm").unwrap();
        let four = lbm.requests_per_epoch(4);
        let two = lbm.requests_per_epoch(2);
        assert!(four.abs_diff(2 * two) <= 2, "{four} vs 2x{two}");
        // ~16M system requests per epoch for lbm on 4 cores.
        assert!((15_000_000..17_000_000).contains(&four), "{four}");
    }
}
