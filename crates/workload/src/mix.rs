//! The 16 mixed workloads (4 random SPEC workloads per mix).

use crate::spec::{SpecWorkload, TABLE2};
use crate::{AddressSpace, HotColdGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One four-way mix: each core runs a different SPEC workload.
#[derive(Debug, Clone)]
pub struct MixWorkload {
    /// Mix label, e.g. `mix03`.
    pub name: String,
    /// The four component workloads (one per core).
    pub components: [SpecWorkload; 4],
}

impl MixWorkload {
    /// Builds the generator for core `core`: one copy of the component
    /// workload with a quarter of its Table II profile (its other three
    /// copies do not run, matching the paper's mix construction).
    pub fn generator(&self, space: &AddressSpace, core: u32, seed: u64) -> HotColdGenerator {
        self.components[core as usize].generator(space, core, 4, seed)
    }

    /// Average MPKI of the mix's components.
    pub fn mpki(&self) -> f64 {
        self.components.iter().map(|w| w.mpki).sum::<f64>() / 4.0
    }
}

/// The 16 deterministic mixes used throughout the evaluation (the paper
/// draws 16 sets of four random SPEC2017 workloads; the seed fixes ours).
pub fn mix_table() -> Vec<MixWorkload> {
    let mut rng = StdRng::seed_from_u64(mix_seed());
    (0..16)
        .map(|i| {
            let mut components = [TABLE2[0]; 4];
            for c in &mut components {
                *c = TABLE2[rng.gen_range(0..TABLE2.len())];
            }
            MixWorkload {
                name: format!("mix{i:02}"),
                components,
            }
        })
        .collect()
}

const fn mix_seed() -> u64 {
    0xa11_5eed
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::DramGeometry;

    #[test]
    fn sixteen_mixes_are_deterministic() {
        let a = mix_table();
        let b = mix_table();
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            for (cx, cy) in x.components.iter().zip(&y.components) {
                assert_eq!(cx.name, cy.name);
            }
        }
    }

    #[test]
    fn mix_generators_cover_all_cores() {
        let space = AddressSpace::new(DramGeometry::paper_table1(), 0.98);
        let mix = &mix_table()[0];
        for core in 0..4 {
            let g = mix.generator(&space, core, 5);
            assert!(g.requests_per_epoch() > 0);
        }
    }

    #[test]
    fn mixes_sample_varied_workloads() {
        let mixes = mix_table();
        let distinct: std::collections::HashSet<&str> = mixes
            .iter()
            .flat_map(|m| m.components.iter().map(|c| c.name))
            .collect();
        assert!(distinct.len() >= 10, "only {} distinct", distinct.len());
    }
}
