//! The calibrated hot/cold request generator.

use crate::{AddressSpace, MemoryRequest, RequestGenerator, SpecWorkload};
use aqua_dram::{Duration, GlobalRowId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Target activations per epoch for rows in each Table II band. The bands
/// are what the paper reports; concrete targets are drawn uniformly inside
/// each band.
const BAND_166: (u64, u64) = (166, 500);
const BAND_500: (u64, u64) = (500, 1000);
const BAND_1000: (u64, u64) = (1000, 2000);

/// Cold rows should stay well below the 166-activation band.
const COLD_ACTS_PER_ROW: u64 = 50;

/// A per-core request stream with a calibrated set of *hot* rows (matching a
/// Table II activation profile) on top of a uniform *cold* footprint.
///
/// Hot rows are selected by weighted sampling so that, in expectation over
/// one epoch, each hot row receives exactly its target activation count; the
/// remaining requests spread over a cold footprint sized to keep cold rows
/// below the lowest band. The stream is deterministic for a given seed.
#[derive(Debug)]
pub struct HotColdGenerator {
    label: String,
    rng: StdRng,
    hot_rows: Vec<GlobalRowId>,
    /// Cumulative activation targets, parallel to `hot_rows`.
    hot_cumulative: Vec<u64>,
    hot_total: u64,
    requests_per_epoch: u64,
    cold_start: u64,
    cold_len: u64,
    space: AddressSpace,
    gap: Duration,
}

impl HotColdGenerator {
    /// Builds the generator for core `core` of a `cores`-core run of `spec`.
    ///
    /// Each core receives `1/cores` of the Table II hot-row counts (SPEC
    /// *rate* mode: four copies with disjoint footprints) and `1/cores` of
    /// the request rate.
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores` or the address space is too small for the
    /// workload's footprint.
    pub fn calibrated(
        spec: &SpecWorkload,
        space: &AddressSpace,
        core: u32,
        cores: u32,
        seed: u64,
    ) -> Self {
        assert!(core < cores, "core index out of range");
        let mut rng = StdRng::seed_from_u64(seed ^ (core as u64).wrapping_mul(0x9e37_79b9));
        let share = |n: u32| -> u64 {
            let base = (n / cores) as u64;
            // Distribute the remainder over the low-index cores.
            base + u64::from(n % cores > core)
        };
        let n1 = share(spec.act_166 - spec.act_500);
        let n2 = share(spec.act_500 - spec.act_1000);
        let n3 = share(spec.act_1000);
        let seg_len = space.len() / cores as u64;
        let seg_start = seg_len * core as u64;

        // Hot rows are spread through the segment with a stride co-prime to
        // the bank count and the 16-row FPT-group size: real workloads' hot
        // pages scatter across the physical address space, so two hot rows
        // rarely share an FPT group (which is what makes the paper's
        // singleton-group optimization effective).
        const HOT_STRIDE: u64 = 33;
        let mut hot_rows = Vec::new();
        let mut hot_cumulative = Vec::new();
        let mut total = 0u64;
        let mut dense = seg_start;
        for (count, (lo, hi)) in [(n1, BAND_166), (n2, BAND_500), (n3, BAND_1000)] {
            for _ in 0..count {
                total += rng.gen_range(lo..hi);
                hot_rows.push(space.nth(dense));
                hot_cumulative.push(total);
                dense += HOT_STRIDE;
            }
        }

        let requests = (spec.requests_per_epoch(cores) / cores as u64).max(total.max(1));
        let cold_requests = requests - total;
        let cold_cap = seg_len.saturating_sub(dense - seg_start).saturating_sub(1);
        let cold_len = (cold_requests / COLD_ACTS_PER_ROW)
            .max(1024)
            .min(cold_cap)
            .max(1);
        let epoch = Duration::from_ms(64);
        HotColdGenerator {
            label: format!("{}#{}", spec.name, core),
            rng,
            hot_rows,
            hot_cumulative,
            hot_total: total,
            requests_per_epoch: requests,
            cold_start: dense,
            cold_len,
            space: *space,
            gap: epoch / requests,
        }
    }

    /// A purely uniform stream: `requests_per_epoch` requests spread over a
    /// `footprint`-row region starting at dense index `start` (no hot rows).
    ///
    /// `epoch` is the simulated epoch length the request rate is paced
    /// against (`gap = epoch / requests_per_epoch`), so the stream really
    /// does issue `requests_per_epoch` requests per epoch even on systems
    /// configured with a non-default epoch (e.g. `BaselineConfig::tiny`'s
    /// 1 ms) — previously a hardcoded 64 ms gap underpaced such systems by
    /// the ratio of the two epoch lengths.
    pub fn uniform(
        space: &AddressSpace,
        start: u64,
        footprint: u64,
        requests_per_epoch: u64,
        epoch: Duration,
        seed: u64,
    ) -> Self {
        assert!(footprint >= 1 && start + footprint <= space.len());
        HotColdGenerator {
            label: format!("uniform@{start}"),
            rng: StdRng::seed_from_u64(seed),
            hot_rows: Vec::new(),
            hot_cumulative: Vec::new(),
            hot_total: 0,
            requests_per_epoch: requests_per_epoch.max(1),
            cold_start: start,
            cold_len: footprint,
            space: *space,
            gap: epoch / requests_per_epoch.max(1),
        }
    }

    /// Requests this core issues per epoch at nominal IPC.
    pub fn requests_per_epoch(&self) -> u64 {
        self.requests_per_epoch
    }

    /// Number of hot rows this core drives.
    pub fn hot_rows(&self) -> usize {
        self.hot_rows.len()
    }

    /// Expected hot activations per epoch.
    pub fn hot_activations(&self) -> u64 {
        self.hot_total
    }
}

impl RequestGenerator for HotColdGenerator {
    fn next_request(&mut self) -> MemoryRequest {
        let draw = self.rng.gen_range(0..self.requests_per_epoch);
        let row = if draw < self.hot_total {
            let idx = self.hot_cumulative.partition_point(|&c| c <= draw);
            self.hot_rows[idx]
        } else {
            self.space
                .nth(self.cold_start + self.rng.gen_range(0..self.cold_len))
        };
        MemoryRequest { row, gap: self.gap }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::DramGeometry;
    use std::collections::HashMap;

    fn space() -> AddressSpace {
        AddressSpace::new(DramGeometry::paper_table1(), 0.98)
    }

    fn spec() -> SpecWorkload {
        crate::spec::by_name("mcf").unwrap()
    }

    #[test]
    fn hot_row_counts_split_across_cores() {
        let s = space();
        let w = spec();
        let total_hot: usize = (0..4).map(|c| w.generator(&s, c, 4, 1).hot_rows()).sum();
        assert_eq!(total_hot, w.act_166 as usize);
    }

    #[test]
    fn empirical_band_counts_match_table2() {
        // Simulate one epoch's worth of requests and count rows per band.
        let s = space();
        let w = spec();
        let mut g = w.generator(&s, 0, 4, 7);
        let n = g.requests_per_epoch();
        let mut counts: HashMap<GlobalRowId, u64> = HashMap::new();
        for _ in 0..n {
            *counts.entry(g.next_request().row).or_default() += 1;
        }
        let band = |lo, hi| counts.values().filter(|&&c| c >= lo && c < hi).count() as f64;
        let expect1 = (w.act_166 - w.act_500) as f64 / 4.0;
        let expect2 = (w.act_500 - w.act_1000) as f64 / 4.0;
        let expect3 = w.act_1000 as f64 / 4.0;
        // Sampling noise blurs band boundaries; 15% tolerance.
        assert!((band(166, 500) - expect1).abs() < expect1 * 0.15 + 20.0);
        assert!((band(500, 1000) - expect2).abs() < expect2 * 0.15 + 20.0);
        assert!((band(1000, u64::MAX) - expect3).abs() < expect3 * 0.15 + 20.0);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let s = space();
        let w = spec();
        let mut a = w.generator(&s, 0, 4, 9);
        let mut b = w.generator(&s, 0, 4, 9);
        for _ in 0..1000 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn cores_have_disjoint_footprints() {
        let s = space();
        let w = spec();
        let g0 = w.generator(&s, 0, 4, 1);
        let g1 = w.generator(&s, 1, 4, 1);
        let set0: std::collections::HashSet<_> = g0.hot_rows.iter().collect();
        assert!(g1.hot_rows.iter().all(|r| !set0.contains(r)));
    }

    #[test]
    fn quiet_workloads_have_no_hot_rows() {
        let s = space();
        let w = crate::spec::by_name("povray").unwrap();
        let g = w.generator(&s, 0, 4, 1);
        assert_eq!(g.hot_rows(), 0);
        assert!(g.requests_per_epoch() > 0);
    }

    #[test]
    fn gap_times_requests_fills_epoch() {
        let s = space();
        let g = spec().generator(&s, 0, 4, 1);
        let total = g.gap * g.requests_per_epoch();
        let epoch = Duration::from_ms(64);
        assert!(total <= epoch && total > epoch - epoch / 10);
    }

    #[test]
    fn uniform_generator_covers_footprint() {
        let s = space();
        let mut g = HotColdGenerator::uniform(&s, 100, 50, 10_000, Duration::from_ms(64), 3);
        for _ in 0..500 {
            let r = g.next_request();
            assert!(s.contains(r.row));
        }
    }

    #[test]
    fn uniform_generator_paces_against_the_given_epoch() {
        let s = space();
        let paper = HotColdGenerator::uniform(&s, 0, 64, 1000, Duration::from_ms(64), 3);
        let tiny = HotColdGenerator::uniform(&s, 0, 64, 1000, Duration::from_ms(1), 3);
        assert_eq!(paper.gap, Duration::from_ms(64) / 1000);
        // A 1 ms epoch must pace 64x faster for the same per-epoch rate.
        assert_eq!(tiny.gap, Duration::from_ms(1) / 1000);
    }
}
