//! OS-visible address space helper.

use aqua_dram::{BankId, DramGeometry, GlobalRowId, RowAddr};
use rand::Rng;

/// The OS-visible portion of the module's rows.
///
/// AQUA reserves the top rows of each bank for the quarantine area and (in
/// mapped mode) the in-DRAM tables; workloads must never address them. The
/// address space exposes a dense index `0..len` that stripes across banks
/// starting from row 0 — the low rows, farthest from the reserved region —
/// so generator code never produces a reserved address.
#[derive(Debug, Clone, Copy)]
pub struct AddressSpace {
    geometry: DramGeometry,
    usable_rows_per_bank: u32,
}

impl AddressSpace {
    /// Creates a space using the bottom `usable_fraction` of each bank
    /// (e.g. `0.98` leaves the top 2% for AQUA's reserved regions).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < usable_fraction <= 1`.
    pub fn new(geometry: DramGeometry, usable_fraction: f64) -> Self {
        assert!(
            usable_fraction > 0.0 && usable_fraction <= 1.0,
            "usable fraction must be in (0, 1]"
        );
        AddressSpace {
            geometry,
            usable_rows_per_bank: ((geometry.rows_per_bank as f64 * usable_fraction) as u32).max(1),
        }
    }

    /// Number of addressable rows.
    pub fn len(&self) -> u64 {
        self.geometry.total_banks() as u64 * self.usable_rows_per_bank as u64
    }

    /// Whether the space is empty (never true for valid geometries).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The module geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Maps a dense index to a row id, striping across banks.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn nth(&self, index: u64) -> GlobalRowId {
        assert!(index < self.len(), "address-space index out of range");
        let banks = self.geometry.total_banks() as u64;
        let addr = RowAddr {
            bank: BankId::new((index % banks) as u32),
            row: (index / banks) as u32,
        };
        self.geometry
            .flatten(addr)
            .expect("dense index maps inside geometry")
    }

    /// A row id at `(bank, row)` — for attack patterns that need physical
    /// adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the usable region.
    pub fn at(&self, bank: u32, row: u32) -> GlobalRowId {
        assert!(row < self.usable_rows_per_bank, "row in reserved region");
        self.geometry
            .flatten(RowAddr {
                bank: BankId::new(bank),
                row,
            })
            .expect("address within geometry")
    }

    /// Whether `row` is inside the usable (OS-visible) region.
    pub fn contains(&self, row: GlobalRowId) -> bool {
        match self.geometry.expand(row) {
            Ok(addr) => addr.row < self.usable_rows_per_bank,
            Err(_) => false,
        }
    }

    /// A uniformly random usable row.
    pub fn random<R: Rng>(&self, rng: &mut R) -> GlobalRowId {
        self.nth(rng.gen_range(0..self.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nth_stays_in_usable_region() {
        let s = AddressSpace::new(DramGeometry::tiny(), 0.5);
        assert_eq!(s.len(), 4 * 512);
        for i in [0, 1, 5, s.len() - 1] {
            assert!(s.contains(s.nth(i)));
        }
    }

    #[test]
    fn nth_is_bank_striped() {
        let s = AddressSpace::new(DramGeometry::tiny(), 1.0);
        let g = DramGeometry::tiny();
        let a0 = g.expand(s.nth(0)).unwrap();
        let a1 = g.expand(s.nth(1)).unwrap();
        assert_ne!(a0.bank, a1.bank);
        assert_eq!(a0.row, a1.row);
    }

    #[test]
    fn random_rows_are_usable() {
        let s = AddressSpace::new(DramGeometry::tiny(), 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(s.contains(s.random(&mut rng)));
        }
    }

    #[test]
    fn reserved_rows_are_excluded() {
        let s = AddressSpace::new(DramGeometry::tiny(), 0.5);
        let g = DramGeometry::tiny();
        let reserved = g
            .flatten(RowAddr {
                bank: BankId::new(0),
                row: 1000,
            })
            .unwrap();
        assert!(!s.contains(reserved));
    }

    #[test]
    #[should_panic(expected = "reserved region")]
    fn at_rejects_reserved_rows() {
        let s = AddressSpace::new(DramGeometry::tiny(), 0.5);
        s.at(0, 600);
    }
}
