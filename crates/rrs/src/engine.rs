//! The RRS mitigation engine.

use crate::{RowIndirectionTable, RrsConfig};
use aqua_dram::mitigation::{
    DataMovement, MigrationKind, Mitigation, MitigationAction, MitigationStats, Translation,
};
use aqua_dram::{BankId, Duration, GlobalRowId, RowAddr, Time};
use aqua_faults::{FaultHealth, FaultKind, InjectOutcome};
use aqua_telemetry::{Counter, EventKind, Telemetry};
use aqua_tracker::{AggressorTracker, MisraGriesTracker, TrackerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// SRAM RIT lookup latency (3–4 cycles, same as AQUA's tables).
const SRAM_LOOKUP: Duration = Duration::from_ps(1_300);

aqua_telemetry::stat_struct! {
    /// Cumulative RRS event counts.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct RrsStats {
        /// First-time swaps (2 row migrations each).
        pub swaps: u64,
        /// Re-swaps of already swapped pairs (4 row migrations each,
        /// section IV-F).
        pub reswaps: u64,
        /// Capacity-driven unswaps of stale pairs (2 row migrations each).
        pub unswaps: u64,
        /// Mitigations signalled by the tracker.
        pub mitigations: u64,
        /// Forced unswaps of same-epoch pairs (RIT capacity violations).
        pub violations: u64,
    }
}

/// Registered telemetry counter handles.
#[derive(Debug, Clone, Default)]
struct RrsCounters {
    swaps: Counter,
    reswaps: Counter,
    unswaps: Counter,
    mitigations: Counter,
}

impl RrsStats {
    /// Total single-row migrations (the unit of Figure 6).
    pub fn row_migrations(&self) -> u64 {
        self.swaps * 2 + self.reswaps * 4 + self.unswaps * 2
    }
}

/// The Randomized Row-Swap engine for one rank.
#[derive(Debug)]
pub struct RrsEngine {
    config: RrsConfig,
    tracker: MisraGriesTracker,
    rit: RowIndirectionTable,
    rng: StdRng,
    epoch: u64,
    migration_latency: Duration,
    /// The pair most recently removed by capacity pressure (for the unswap
    /// data-movement record).
    last_unswapped: Option<(GlobalRowId, GlobalRowId)>,
    /// An injected `MigrationInterrupt` waiting to abort the next swap.
    pending_interrupt: bool,
    health: FaultHealth,
    stats: RrsStats,
    telemetry: Telemetry,
    counters: RrsCounters,
}

impl RrsEngine {
    /// Builds an engine from its configuration.
    pub fn new(config: RrsConfig) -> Self {
        let tracker_cfg = TrackerConfig::with_mitigation_threshold(config.swap_threshold)
            .entries_per_bank(config.tracker_entries_per_bank);
        RrsEngine {
            tracker: MisraGriesTracker::new(tracker_cfg, config.geometry.total_banks()),
            rit: RowIndirectionTable::new(config.rit_pairs),
            rng: StdRng::seed_from_u64(config.seed),
            epoch: 0,
            migration_latency: config.timing.row_migration_latency(&config.geometry),
            last_unswapped: None,
            pending_interrupt: false,
            health: FaultHealth::default(),
            config,
            stats: RrsStats::default(),
            telemetry: Telemetry::disabled(),
            counters: RrsCounters::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RrsConfig {
        &self.config
    }

    /// RRS-specific statistics.
    pub fn stats(&self) -> RrsStats {
        self.stats
    }

    /// Live swap pairs in the RIT.
    pub fn live_pairs(&self) -> usize {
        self.rit.pairs()
    }

    /// Verifies the RIT is a consistent involution.
    ///
    /// # Panics
    ///
    /// Panics on any row whose double translation is not the identity.
    pub fn check_consistency(&self, sample_rows: impl IntoIterator<Item = GlobalRowId>) {
        for row in sample_rows {
            let once = self.rit.translate(row);
            let twice = self.rit.translate(once);
            assert_eq!(twice, row, "RIT translation is not an involution at {row}");
        }
    }

    /// Picks a uniformly random row that is not currently swapped and not in
    /// `exclude`.
    fn random_unswapped(&mut self, exclude: &[GlobalRowId]) -> GlobalRowId {
        let total = self.config.geometry.total_rows();
        loop {
            let cand = GlobalRowId::new(self.rng.gen_range(0..total));
            if !self.rit.is_swapped(cand) && !exclude.contains(&cand) {
                return cand;
            }
        }
    }

    /// Frees RIT capacity if needed, unswapping stale pairs first.
    fn make_room(&mut self, now: Time, actions: &mut Vec<MitigationAction>) {
        while self.rit.pairs() + 2 > self.rit.pair_capacity() {
            if let Some(pair) = self.rit.evict_stale_pair(self.epoch) {
                self.last_unswapped = Some(pair);
                self.stats.unswaps += 1;
            } else {
                // No stale pair: a same-epoch pair must go. This weakens the
                // within-window guarantee, so it is counted as a violation
                // (unreachable with paper-sized RITs).
                let Some(pair) = self.rit.remove_pair_oldest() else {
                    break;
                };
                self.last_unswapped = Some(pair);
                self.stats.unswaps += 1;
                self.stats.violations += 1;
            }
            self.counters.unswaps.inc();
            self.telemetry
                .span_start("rrs.unswap", now.as_ps())
                .end(now.as_ps());
            if let Some((a, b)) = self.last_unswapped {
                self.telemetry.record(
                    now.as_ps(),
                    EventKind::Unswap {
                        row_a: a.index(),
                        row_b: b.index(),
                    },
                );
            }
            // Unswapping restores both rows: two migrations.
            for i in 0..2 {
                actions.push(MitigationAction::BlockChannel {
                    duration: self.migration_latency,
                    kind: MigrationKind::Unswap,
                    movement: if i == 0 {
                        self.swap_movement(self.last_unswapped)
                    } else {
                        DataMovement::None
                    },
                });
            }
        }
    }

    /// Builds the data-exchange record for the pair `(a, b)`. A member
    /// outside the geometry (only reachable under injected faults) yields no
    /// movement and is counted as a violation rather than aborting the run.
    fn swap_movement(&mut self, pair: Option<(GlobalRowId, GlobalRowId)>) -> DataMovement {
        let Some((a, b)) = pair else {
            return DataMovement::None;
        };
        match (
            self.config.geometry.expand(a),
            self.config.geometry.expand(b),
        ) {
            (Ok(a), Ok(b)) => DataMovement::Swap { a, b },
            _ => {
                self.stats.violations += 1;
                DataMovement::None
            }
        }
    }
}

impl RowIndirectionTable {
    /// Removes the globally oldest pair regardless of age (capacity pressure
    /// fallback). Returns the pair if one existed.
    pub fn remove_pair_oldest(&mut self) -> Option<(GlobalRowId, GlobalRowId)> {
        // Delegate through the public surface: evicting at u64::MAX treats
        // every pair as stale once the table is at capacity.
        self.evict_stale_pair(u64::MAX)
    }
}

impl Mitigation for RrsEngine {
    fn name(&self) -> &'static str {
        "rrs"
    }

    fn translate(&mut self, row: GlobalRowId, _now: Time) -> Translation {
        let dest = self.rit.translate(row);
        let phys = match self.config.geometry.expand(dest) {
            Ok(p) => p,
            // A corrupt RIT destination (only reachable under injected
            // faults) falls back to the identity mapping and is counted.
            Err(_) => {
                self.stats.violations += 1;
                self.config.geometry.expand(row).unwrap_or(RowAddr {
                    bank: BankId::new(0),
                    row: 0,
                })
            }
        };
        Translation {
            phys,
            lookup_latency: SRAM_LOOKUP,
            dram_table_reads: 0,
            table_row: None,
        }
    }

    fn on_activation_into(
        &mut self,
        phys: RowAddr,
        now: Time,
        actions: &mut Vec<MitigationAction>,
    ) {
        if !self.tracker.on_activation(phys).mitigate() {
            return;
        }
        self.stats.mitigations += 1;
        self.counters.mitigations.inc();
        if self.pending_interrupt {
            // An injected interrupt aborts this migration before any table
            // state is touched: the tables stay consistent and the row stays
            // hot, so the next activation simply retries the swap.
            self.pending_interrupt = false;
            self.health.recovered += 1;
            return;
        }
        let Ok(phys_id) = self.config.geometry.flatten(phys) else {
            self.stats.violations += 1;
            return;
        };
        let logical = self.rit.translate(phys_id);
        if logical != phys_id {
            // Re-swap: the hot physical row hosts swapped data. Restore the
            // pair <X, Y> and form <X, A> and <Y, B> — four row migrations
            // through the copy-buffer (modelled as three logical exchanges;
            // the channel-blocking time is the paper's four transfers).
            if self.rit.remove_pair(phys_id).is_none() {
                // The translation claimed "swapped" but no pair exists: RIT
                // inconsistency (only reachable under injected faults).
                // Count it and skip the re-swap rather than corrupting the
                // table further.
                self.stats.violations += 1;
                return;
            }
            let sp = self.telemetry.span_start("rrs.reswap", now.as_ps());
            self.make_room(now, actions);
            let a = self.random_unswapped(&[logical, phys_id]);
            self.rit.insert_pair(logical, a, self.epoch);
            let b = self.random_unswapped(&[logical, phys_id]);
            self.rit.insert_pair(phys_id, b, self.epoch);
            self.telemetry.record(
                now.as_ps(),
                EventKind::Unswap {
                    row_a: logical.index(),
                    row_b: phys_id.index(),
                },
            );
            self.telemetry.record(
                now.as_ps(),
                EventKind::Swap {
                    row_a: logical.index(),
                    row_b: a.index(),
                },
            );
            self.telemetry.record(
                now.as_ps(),
                EventKind::Swap {
                    row_a: phys_id.index(),
                    row_b: b.index(),
                },
            );
            let movements = [
                self.swap_movement(Some((logical, phys_id))), // restore <X, Y>
                self.swap_movement(Some((logical, a))),       // form <X, A>
                self.swap_movement(Some((phys_id, b))),       // form <Y, B>
                DataMovement::None,
            ];
            for movement in movements {
                actions.push(MitigationAction::BlockChannel {
                    duration: self.migration_latency,
                    kind: MigrationKind::Swap,
                    movement,
                });
            }
            self.stats.reswaps += 1;
            self.counters.reswaps.inc();
            sp.end(now.as_ps());
        } else {
            // First swap of an unswapped row: two row migrations.
            let sp = self.telemetry.span_start("rrs.swap", now.as_ps());
            self.make_room(now, actions);
            let dest = self.random_unswapped(&[phys_id]);
            self.rit.insert_pair(phys_id, dest, self.epoch);
            self.telemetry.record(
                now.as_ps(),
                EventKind::Swap {
                    row_a: phys_id.index(),
                    row_b: dest.index(),
                },
            );
            let movements = [
                self.swap_movement(Some((phys_id, dest))),
                DataMovement::None,
            ];
            for movement in movements {
                actions.push(MitigationAction::BlockChannel {
                    duration: self.migration_latency,
                    kind: MigrationKind::Swap,
                    movement,
                });
            }
            self.stats.swaps += 1;
            self.counters.swaps.inc();
            sp.end(now.as_ps());
        }
    }

    fn end_epoch(&mut self) {
        self.tracker.end_epoch();
        self.epoch += 1;
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.counters = RrsCounters {
            swaps: telemetry.counter("rrs.swaps"),
            reswaps: telemetry.counter("rrs.reswaps"),
            unswaps: telemetry.counter("rrs.unswaps"),
            mitigations: telemetry.counter("rrs.mitigations"),
        };
        self.telemetry = telemetry;
    }

    fn epoch_gauges(&self) -> Vec<(&'static str, f64)> {
        vec![(
            "rit_fill",
            self.rit.pairs() as f64 / self.rit.pair_capacity().max(1) as f64,
        )]
    }

    fn mitigation_stats(&self) -> MitigationStats {
        MitigationStats {
            row_migrations: self.stats.row_migrations(),
            mitigations_triggered: self.stats.mitigations,
            victim_refreshes: 0,
            throttled: 0,
            violations: self.stats.violations,
        }
    }

    fn inject_fault(&mut self, fault: &FaultKind, _now: Time) -> InjectOutcome {
        let outcome = match fault {
            // RRS has one table: dropping a RIT pair is its stale-slot
            // corruption. Both members now translate identity while their
            // data stays exchanged — a permanent corruption (RRS has no
            // redundant table to audit against), so both rows are reported
            // for shadow-memory escape accounting.
            FaultKind::RptDrop { entropy } => match self.rit.fault_drop_pair(*entropy) {
                Some((a, b)) => {
                    let mut rows = vec![a.index(), b.index()];
                    rows.sort_unstable();
                    InjectOutcome::CorruptedTranslation { rows }
                }
                // No live pair to corrupt: the fault lands on vacant state.
                None => InjectOutcome::Applied,
            },
            FaultKind::TrackerReset => {
                if self.tracker.inject_reset() {
                    InjectOutcome::Applied
                } else {
                    InjectOutcome::Unsupported
                }
            }
            FaultKind::TrackerSaturate => {
                if self.tracker.inject_saturate() {
                    InjectOutcome::Applied
                } else {
                    InjectOutcome::Unsupported
                }
            }
            FaultKind::MigrationInterrupt => {
                self.pending_interrupt = true;
                InjectOutcome::Applied
            }
            // No FPT/RPT split, no presence filter, no FPT cache, no
            // circular allocator: the remaining families have no RRS state
            // to land on. DRAM command faults are simulator-level.
            _ => InjectOutcome::Unsupported,
        };
        if !matches!(outcome, InjectOutcome::Unsupported) {
            self.health.injected += 1;
        }
        outcome
    }

    fn fault_health(&self) -> FaultHealth {
        self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BaselineConfig;

    fn small_config() -> RrsConfig {
        let base = BaselineConfig::tiny();
        let mut c = RrsConfig::for_rowhammer_threshold(60, &base); // swap at 10
        c.tracker_entries_per_bank = 64;
        c.rit_pairs = 16;
        c
    }

    fn hammer(engine: &mut RrsEngine, row: GlobalRowId, times: u64) -> Vec<MitigationAction> {
        let mut all = Vec::new();
        for _ in 0..times {
            let t = engine.translate(row, Time::ZERO);
            all.extend(engine.on_activation(t.phys, Time::ZERO));
        }
        all
    }

    #[test]
    fn first_swap_moves_two_rows() {
        let mut e = RrsEngine::new(small_config());
        let row = GlobalRowId::new(3);
        let actions = hammer(&mut e, row, 10);
        assert_eq!(e.stats().swaps, 1);
        assert_eq!(actions.len(), 2);
        assert_ne!(
            e.translate(row, Time::ZERO).phys,
            e.config().geometry.expand(row).unwrap(),
            "swapped row must live elsewhere"
        );
    }

    #[test]
    fn reswap_moves_four_rows() {
        let mut e = RrsEngine::new(small_config());
        let row = GlobalRowId::new(3);
        hammer(&mut e, row, 10); // first swap
        let actions = hammer(&mut e, row, 10); // hot again at new location
        assert_eq!(e.stats().reswaps, 1);
        assert_eq!(actions.len(), 4);
        // Both previous pair members now have fresh partners.
        assert_eq!(e.live_pairs(), 2);
        e.check_consistency((0..64).map(GlobalRowId::new));
    }

    #[test]
    fn swap_is_deterministic_under_seed() {
        let run = |seed| {
            let mut e = RrsEngine::new(small_config().with_seed(seed));
            hammer(&mut e, GlobalRowId::new(3), 10);
            e.translate(GlobalRowId::new(3), Time::ZERO).phys
        };
        assert_eq!(run(7), run(7));
        // Different seeds almost surely pick different destinations.
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn migrations_counted_per_paper() {
        let mut e = RrsEngine::new(small_config());
        hammer(&mut e, GlobalRowId::new(3), 10); // swap: 2
        hammer(&mut e, GlobalRowId::new(3), 10); // reswap: 4
        assert_eq!(e.stats().row_migrations(), 6);
    }

    #[test]
    fn capacity_pressure_unswaps_stale_pairs() {
        let mut c = small_config();
        c.rit_pairs = 4;
        let mut e = RrsEngine::new(c);
        for r in 0..3u64 {
            hammer(&mut e, GlobalRowId::new(r * 5), 10);
        }
        e.end_epoch();
        // Two more swaps exceed the 4-pair capacity: stale pairs unswap.
        for r in 3..5u64 {
            hammer(&mut e, GlobalRowId::new(r * 5), 10);
        }
        assert!(e.stats().unswaps > 0);
        assert!(e.live_pairs() <= 4);
        assert_eq!(e.stats().violations, 0);
        e.check_consistency((0..64).map(GlobalRowId::new));
    }

    #[test]
    fn same_epoch_forced_unswap_is_a_violation() {
        let mut c = small_config();
        c.rit_pairs = 2;
        let mut e = RrsEngine::new(c);
        for r in 0..3u64 {
            hammer(&mut e, GlobalRowId::new(r * 5), 10);
        }
        assert!(e.stats().violations > 0);
    }

    #[test]
    fn epoch_reset_forgets_counts() {
        let mut e = RrsEngine::new(small_config());
        hammer(&mut e, GlobalRowId::new(3), 9);
        e.end_epoch();
        hammer(&mut e, GlobalRowId::new(3), 9);
        assert_eq!(e.stats().swaps, 0);
    }

    #[test]
    fn dropped_pair_is_reported_as_corrupted() {
        let mut e = RrsEngine::new(small_config());
        let row = GlobalRowId::new(3);
        hammer(&mut e, row, 10);
        let swapped_phys = e.translate(row, Time::ZERO).phys;
        let partner = e.config().geometry.flatten(swapped_phys).unwrap();
        match e.inject_fault(&FaultKind::RptDrop { entropy: 5 }, Time::ZERO) {
            InjectOutcome::CorruptedTranslation { rows } => {
                assert!(rows.contains(&row.index()));
                assert!(rows.contains(&partner.index()));
            }
            other => panic!("expected a corrupted translation, got {other:?}"),
        }
        // The row now translates identity while its data lives elsewhere —
        // exactly what the shadow memory must catch as an escape.
        let phys = e.translate(row, Time::ZERO).phys;
        assert_eq!(e.config().geometry.flatten(phys).unwrap(), row);
        assert_eq!(e.fault_health().injected, 1);
        // The involution itself still holds (identity on both members).
        e.check_consistency((0..64).map(GlobalRowId::new));
        // Dropping with no live pairs lands on vacant state.
        let mut fresh = RrsEngine::new(small_config());
        assert!(matches!(
            fresh.inject_fault(&FaultKind::RptDrop { entropy: 0 }, Time::ZERO),
            InjectOutcome::Applied
        ));
    }

    #[test]
    fn migration_interrupt_aborts_exactly_one_swap() {
        let mut e = RrsEngine::new(small_config());
        assert!(matches!(
            e.inject_fault(&FaultKind::MigrationInterrupt, Time::ZERO),
            InjectOutcome::Applied
        ));
        let row = GlobalRowId::new(3);
        hammer(&mut e, row, 10);
        assert_eq!(e.stats().swaps, 0, "the interrupted swap never commits");
        assert_eq!(e.stats().mitigations, 1);
        assert_eq!(e.fault_health().recovered, 1);
        hammer(&mut e, row, 10);
        assert_eq!(e.stats().swaps, 1, "the next mitigation proceeds normally");
        e.check_consistency((0..64).map(GlobalRowId::new));
    }

    #[test]
    fn tracker_faults_apply_through_the_engine() {
        let mut e = RrsEngine::new(small_config());
        let row = GlobalRowId::new(3);
        hammer(&mut e, row, 9); // one activation below the swap threshold
        assert!(matches!(
            e.inject_fault(&FaultKind::TrackerReset, Time::ZERO),
            InjectOutcome::Applied
        ));
        hammer(&mut e, row, 9);
        assert_eq!(e.stats().swaps, 0, "reset forgot the partial count");
        assert!(matches!(
            e.inject_fault(&FaultKind::TrackerSaturate, Time::ZERO),
            InjectOutcome::Applied
        ));
        hammer(&mut e, row, 1);
        assert_eq!(e.stats().swaps, 1, "saturated counter fires on next touch");
    }

    #[test]
    fn aqua_specific_faults_are_unsupported() {
        let mut e = RrsEngine::new(small_config());
        for fault in [
            FaultKind::FptFlip { entropy: 1 },
            FaultKind::RptFlip { entropy: 1 },
            FaultKind::FilterFalseClear { entropy: 1 },
            FaultKind::CachePoison { entropy: 1 },
            FaultKind::RqaWrapBurst { slots: 4 },
            FaultKind::DramCommandFault,
        ] {
            assert!(matches!(
                e.inject_fault(&fault, Time::ZERO),
                InjectOutcome::Unsupported
            ));
        }
        assert_eq!(e.fault_health().injected, 0);
    }

    #[test]
    fn victim_of_swap_still_readable() {
        // The innocent row whose location was chosen as destination must
        // still translate consistently (its data moved to the aggressor's
        // old location).
        let mut e = RrsEngine::new(small_config());
        let row = GlobalRowId::new(3);
        hammer(&mut e, row, 10);
        let aggressor_phys = e.translate(row, Time::ZERO).phys;
        let victim = e.config().geometry.flatten(aggressor_phys).unwrap();
        let victim_phys = e.translate(victim, Time::ZERO).phys;
        assert_eq!(e.config().geometry.flatten(victim_phys).unwrap(), row);
    }
}
