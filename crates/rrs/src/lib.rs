//! Randomized Row-Swap (RRS) — the baseline AQUA is compared against.
//!
//! RRS (Saileshwar et al., ASPLOS 2022) mitigates Rowhammer by swapping an
//! aggressor row with a *randomly chosen* row once it crosses a swap
//! threshold. Security comes from randomization: the attacker cannot tell
//! where the row went, so it cannot keep hammering the same physical row.
//! Two consequences drive its overheads (paper sections II-E/F):
//!
//! - **Threshold lowering.** Because an attacker could re-discover a swapped
//!   row by chance (the birthday paradox), the swap threshold must be
//!   `T_RH / 6` — three times more mitigations than AQUA's `T_RH / 2`.
//! - **Swap cost.** Every mitigation moves *two* rows (two reads + two
//!   writes, ~2.74 us of channel blocking); re-swapping an already swapped
//!   pair `<X, Y>` requires restoring both rows and creating two new pairs
//!   `<X, A>` and `<Y, B>` — four row migrations (section IV-F).
//!
//! The Row Indirection Table (RIT) must stay in SRAM (2.4 MB per rank at
//! `T_RH` = 1K): a memory-mapped RIT would leak swap destinations through
//! access timing, which breaks RRS's security argument — this is exactly the
//! property AQUA's isolation-based design relaxes (footnote 2 of the paper).
//!
//! # Example
//!
//! ```
//! use aqua_dram::mitigation::Mitigation;
//! use aqua_dram::{BaselineConfig, GlobalRowId, Time};
//! use aqua_rrs::{RrsConfig, RrsEngine};
//!
//! let base = BaselineConfig::paper_table1();
//! let mut rrs = RrsEngine::new(RrsConfig::for_rowhammer_threshold(1000, &base));
//! let row = GlobalRowId::new(9);
//! for _ in 0..200 {
//!     let t = rrs.translate(row, Time::ZERO);
//!     rrs.on_activation(t.phys, Time::ZERO);
//! }
//! // The swap threshold is 1000/6 = 166: one swap has happened.
//! assert_eq!(rrs.stats().swaps, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod engine;
mod rit;

pub use config::RrsConfig;
pub use engine::{RrsEngine, RrsStats};
pub use rit::RowIndirectionTable;
