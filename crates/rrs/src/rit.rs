//! Row Indirection Table (RIT): the symmetric swap map.

use aqua::CollisionAvoidanceTable;
use aqua_dram::GlobalRowId;
use std::collections::VecDeque;

/// The RIT stores the swap pairs as a symmetric map: if `X` and `Y` are
/// swapped, both `X -> Y` and `Y -> X` are present. Translation is therefore
/// an involution: applying it twice returns the original row.
///
/// Built on the same over-provisioned CAT as AQUA's SRAM FPT (RRS introduced
/// the structure). Pair creation order is tracked so stale pairs can be
/// unswapped when the table fills.
#[derive(Debug)]
pub struct RowIndirectionTable {
    map: CollisionAvoidanceTable<u64>,
    /// Pairs in creation order, with the epoch they were created in.
    order: VecDeque<(GlobalRowId, GlobalRowId, u64)>,
    pair_capacity: usize,
}

impl RowIndirectionTable {
    /// Creates a RIT able to hold `pairs` swap pairs. The backing CAT is
    /// over-provisioned ~1.5x (as in the paper) so set conflicts cannot
    /// reject an insert while the table is within its pair capacity.
    pub fn new(pairs: usize) -> Self {
        RowIndirectionTable {
            map: CollisionAvoidanceTable::new((pairs * 3).max(64)),
            order: VecDeque::new(),
            pair_capacity: pairs.max(1),
        }
    }

    /// Current number of live pairs.
    pub fn pairs(&self) -> usize {
        self.order.len()
    }

    /// Configured pair capacity.
    pub fn pair_capacity(&self) -> usize {
        self.pair_capacity
    }

    /// Translates `row` through the swap map (identity if unswapped).
    pub fn translate(&self, row: GlobalRowId) -> GlobalRowId {
        self.map
            .get(row.index())
            .map(|&dest| GlobalRowId::new(dest))
            .unwrap_or(row)
    }

    /// Whether `row` participates in a swap pair.
    pub fn is_swapped(&self, row: GlobalRowId) -> bool {
        self.map.contains(row.index())
    }

    /// Records the swap pair `(a, b)` created in `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if either row is already swapped (the engine must unswap
    /// first) or if `a == b`.
    pub fn insert_pair(&mut self, a: GlobalRowId, b: GlobalRowId, epoch: u64) {
        assert_ne!(a, b, "cannot swap a row with itself");
        assert!(
            !self.is_swapped(a) && !self.is_swapped(b),
            "rows must be unswapped before forming a new pair"
        );
        self.map
            .insert(a.index(), b.index())
            .expect("RIT sized for worst-case swap rate");
        self.map
            .insert(b.index(), a.index())
            .expect("RIT sized for worst-case swap rate");
        self.order.push_back((a, b, epoch));
    }

    /// Removes the pair containing `row`, returning `(a, b)` if present.
    pub fn remove_pair(&mut self, row: GlobalRowId) -> Option<(GlobalRowId, GlobalRowId)> {
        let dest = GlobalRowId::new(*self.map.get(row.index())?);
        self.map.remove(row.index());
        self.map.remove(dest.index());
        self.order
            .retain(|&(a, b, _)| !(a == row || b == row || a == dest || b == dest));
        Some((row, dest))
    }

    /// Injected fault: silently forgets the `entropy % pairs`-th swap pair
    /// (deterministic — indexed into the creation-order queue, never a hash
    /// map). The mapping disappears while the rows' data stays exchanged,
    /// so both rows now translate to the wrong physical location. Returns
    /// the dropped pair, or `None` if the table is empty.
    pub fn fault_drop_pair(&mut self, entropy: u64) -> Option<(GlobalRowId, GlobalRowId)> {
        if self.order.is_empty() {
            return None;
        }
        let idx = (entropy % self.order.len() as u64) as usize;
        let (a, b, _) = self.order.remove(idx)?;
        self.map.remove(a.index());
        self.map.remove(b.index());
        Some((a, b))
    }

    /// Removes and returns the oldest pair created strictly before `epoch`,
    /// if the table is over its capacity watermark.
    pub fn evict_stale_pair(&mut self, epoch: u64) -> Option<(GlobalRowId, GlobalRowId)> {
        if self.order.len() < self.pair_capacity {
            return None;
        }
        match self.order.front().copied() {
            Some((a, _, created)) if created < epoch => self.remove_pair(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: u64) -> GlobalRowId {
        GlobalRowId::new(i)
    }

    #[test]
    fn translate_is_an_involution() {
        let mut rit = RowIndirectionTable::new(16);
        rit.insert_pair(row(1), row(2), 0);
        assert_eq!(rit.translate(row(1)), row(2));
        assert_eq!(rit.translate(row(2)), row(1));
        assert_eq!(rit.translate(rit.translate(row(1))), row(1));
        assert_eq!(rit.translate(row(3)), row(3));
    }

    #[test]
    fn remove_pair_restores_identity() {
        let mut rit = RowIndirectionTable::new(16);
        rit.insert_pair(row(1), row(2), 0);
        assert_eq!(rit.remove_pair(row(2)), Some((row(2), row(1))));
        assert_eq!(rit.translate(row(1)), row(1));
        assert_eq!(rit.pairs(), 0);
        assert_eq!(rit.remove_pair(row(1)), None);
    }

    #[test]
    #[should_panic(expected = "unswapped")]
    fn double_swap_is_rejected() {
        let mut rit = RowIndirectionTable::new(16);
        rit.insert_pair(row(1), row(2), 0);
        rit.insert_pair(row(1), row(3), 0);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_swap_is_rejected() {
        let mut rit = RowIndirectionTable::new(16);
        rit.insert_pair(row(1), row(1), 0);
    }

    #[test]
    fn fault_drop_breaks_the_involution_silently() {
        let mut rit = RowIndirectionTable::new(16);
        rit.insert_pair(row(1), row(2), 0);
        rit.insert_pair(row(3), row(4), 0);
        assert_eq!(rit.fault_drop_pair(1), Some((row(3), row(4))));
        // The dropped rows translate identity although their data swapped.
        assert_eq!(rit.translate(row(3)), row(3));
        assert_eq!(rit.pairs(), 1);
        assert_eq!(rit.translate(row(1)), row(2), "other pairs unaffected");
        let mut empty = RowIndirectionTable::new(4);
        assert_eq!(empty.fault_drop_pair(0), None);
    }

    #[test]
    fn stale_eviction_respects_capacity_and_age() {
        let mut rit = RowIndirectionTable::new(2);
        rit.insert_pair(row(1), row(2), 0);
        rit.insert_pair(row(3), row(4), 0);
        // At capacity but same epoch: nothing evictable.
        assert_eq!(rit.evict_stale_pair(0), None);
        // Next epoch: the oldest pair goes.
        assert_eq!(rit.evict_stale_pair(1), Some((row(1), row(2))));
        assert_eq!(rit.pairs(), 1);
        // Below capacity now: no more evictions.
        assert_eq!(rit.evict_stale_pair(1), None);
    }
}
