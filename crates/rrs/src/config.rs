//! RRS configuration.

use aqua_dram::{BaselineConfig, DdrTiming, DramGeometry};
use serde::{Deserialize, Serialize};

/// Configuration of one RRS instance (one rank).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrsConfig {
    /// DRAM geometry.
    pub geometry: DramGeometry,
    /// DDR4 timing.
    pub timing: DdrTiming,
    /// The Rowhammer threshold being defended against.
    pub t_rh: u64,
    /// Swap threshold `T_RRS = T_RH / 6` (birthday-paradox margin).
    pub swap_threshold: u64,
    /// Maximum live swap pairs the RIT can hold.
    pub rit_pairs: usize,
    /// Misra-Gries tracker entries per bank.
    pub tracker_entries_per_bank: usize,
    /// Deterministic seed for destination selection.
    pub seed: u64,
}

impl RrsConfig {
    /// The RRS design point for Rowhammer threshold `t_rh`: swap at
    /// `t_rh / 6`, RIT sized for the worst-case swap rate in one refresh
    /// window (~2.4 MB of SRAM at `t_rh` = 1K).
    ///
    /// # Panics
    ///
    /// Panics if `t_rh < 6`.
    pub fn for_rowhammer_threshold(t_rh: u64, base: &BaselineConfig) -> Self {
        assert!(t_rh >= 6, "RRS needs T_RH >= 6");
        let swap_threshold = t_rh / 6;
        // Worst-case swaps per refresh window: every bank can trigger one
        // swap per T_RRS activations out of its ACTmax budget. (RRS keeps
        // all of a window's pairs live, hence the multi-MB RIT at low T_RH.)
        let banks = base.geometry.total_banks() as u64;
        const ACT_MAX: u64 = 1_360_000;
        let max_swaps = banks * ACT_MAX / swap_threshold;
        RrsConfig {
            geometry: base.geometry,
            timing: base.timing,
            t_rh,
            swap_threshold,
            rit_pairs: max_swaps as usize,
            tracker_entries_per_bank: (ACT_MAX / swap_threshold).max(1) as usize,
            seed: 0x5eed_5eed,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the RIT pair capacity (storage/ablation studies).
    pub fn with_rit_pairs(mut self, pairs: usize) -> Self {
        self.rit_pairs = pairs;
        self
    }

    /// SRAM bits of the RIT: two entries per pair, ~1.4x CAT
    /// over-provisioning, 48 bits per entry (tag + pointer + valid) —
    /// ~2.2 MB per rank at `T_RH` = 1K, matching the paper's ~2.4 MB.
    pub fn rit_sram_bits(&self) -> u64 {
        self.rit_pairs as u64 * 2 * 14 / 10 * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_one_sixth() {
        let c = RrsConfig::for_rowhammer_threshold(1000, &BaselineConfig::paper_table1());
        assert_eq!(c.swap_threshold, 166);
    }

    #[test]
    fn rit_is_megabytes_at_1k() {
        // Paper section II-F: ~2.4 MB per rank at T_RH = 1K.
        let c = RrsConfig::for_rowhammer_threshold(1000, &BaselineConfig::paper_table1());
        let mb = c.rit_sram_bits() as f64 / 8.0 / 1024.0 / 1024.0;
        assert!((1.5..=3.0).contains(&mb), "RIT = {mb:.2} MB");
    }

    #[test]
    fn rit_shrinks_with_higher_threshold() {
        let base = BaselineConfig::paper_table1();
        let c1 = RrsConfig::for_rowhammer_threshold(1000, &base);
        let c4 = RrsConfig::for_rowhammer_threshold(4000, &base);
        assert!(c4.rit_pairs < c1.rit_pairs / 3);
    }

    #[test]
    #[should_panic(expected = "T_RH >= 6")]
    fn tiny_threshold_rejected() {
        RrsConfig::for_rowhammer_threshold(5, &BaselineConfig::paper_table1());
    }
}
