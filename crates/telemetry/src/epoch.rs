//! Per-epoch time-series recording.

/// One sample of simulator state, taken at an epoch boundary.
///
/// Fixed fields cover what every mitigation scheme reports; scheme-specific
/// values (RQA occupancy, FPT-cache hit rate, RIT fill, ...) ride in
/// `gauges` as name/value pairs supplied by the mitigation itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Simulator time at the epoch boundary, picoseconds.
    pub end_ps: u64,
    /// Requests completed during this epoch.
    pub requests_done: u64,
    /// Row migrations performed during this epoch.
    pub migrations: u64,
    /// Mitigation triggers (tracker hits) during this epoch.
    pub mitigations_triggered: u64,
    /// Victim-row refreshes issued during this epoch.
    pub victim_refreshes: u64,
    /// Requests throttled during this epoch.
    pub throttled: u64,
    /// Fraction of the epoch the channel spent moving demand data.
    pub data_busy_frac: f64,
    /// Fraction of the epoch the channel spent on migrations.
    pub migration_busy_frac: f64,
    /// Fraction of the epoch the channel spent on table accesses.
    pub table_busy_frac: f64,
    /// Scheme-specific gauges (e.g. `rqa_occupancy`, `fpt_cache_hit_rate`).
    pub gauges: Vec<(String, f64)>,
}

impl EpochRecord {
    /// Looks up a scheme-specific gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// An append-only series of [`EpochRecord`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochSeries {
    records: Vec<EpochRecord>,
}

impl EpochSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch sample.
    pub fn push(&mut self, record: EpochRecord) {
        self.records.push(record);
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no epochs were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recorded epochs, oldest first.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Sums a fixed counter field across all epochs via `f`.
    pub fn total<F: Fn(&EpochRecord) -> u64>(&self, f: F) -> u64 {
        self.records.iter().map(f).sum()
    }

    /// Appends all of `other`'s records after this series' own, preserving
    /// `other`'s internal order (used when per-job series from a parallel
    /// run are stitched together in deterministic job order).
    pub fn merge_from(&mut self, other: &EpochSeries) {
        self.records.extend(other.records.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_resolve_by_name() {
        let rec = EpochRecord {
            epoch: 1,
            gauges: vec![("rqa_occupancy".into(), 0.25)],
            ..Default::default()
        };
        assert_eq!(rec.gauge("rqa_occupancy"), Some(0.25));
        assert_eq!(rec.gauge("missing"), None);
    }

    #[test]
    fn merge_appends_in_order() {
        let rec = |epoch| EpochRecord {
            epoch,
            ..Default::default()
        };
        let mut a = EpochSeries::new();
        a.push(rec(0));
        let mut b = EpochSeries::new();
        b.push(rec(1));
        b.push(rec(2));
        a.merge_from(&b);
        let epochs: Vec<u64> = a.records().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2]);
    }

    #[test]
    fn totals_sum_across_epochs() {
        let mut s = EpochSeries::new();
        for migrations in [2u64, 3, 5] {
            s.push(EpochRecord {
                migrations,
                ..Default::default()
            });
        }
        assert_eq!(s.total(|r| r.migrations), 10);
        assert_eq!(s.len(), 3);
    }
}
