//! Bounded ring buffer that drops the oldest entries on overflow.

use std::collections::VecDeque;

/// A bounded FIFO that keeps the most recent `capacity` entries.
///
/// Pushing onto a full buffer evicts the oldest entry and bumps the
/// `dropped` counter; a capacity of zero drops everything immediately. The
/// buffer never allocates beyond its capacity.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    offered: u64,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a buffer that retains at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            buf: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            offered: 0,
            dropped: 0,
        }
    }

    /// Appends `value`, evicting the oldest entry if the buffer is full.
    pub fn push(&mut self, value: T) {
        self.offered += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entries ever pushed (retained + dropped).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Entries evicted or rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Replays `other`'s retained entries into this buffer (oldest first)
    /// and carries over its already-dropped count, so `offered()` and
    /// `dropped()` keep accounting for every entry either buffer ever saw.
    pub fn merge_from(&mut self, other: &RingBuffer<T>)
    where
        T: Clone,
    {
        self.merge_from_with(other, T::clone);
    }

    /// Like [`RingBuffer::merge_from`] but passes every replayed entry
    /// through `map` first (used to remap span ids when per-job traces are
    /// folded into a parent hub). Accounting is identical: `map` runs only
    /// on entries `other` still retains; entries `other` already dropped are
    /// carried over as dropped counts.
    pub fn merge_from_with<F>(&mut self, other: &RingBuffer<T>, mut map: F)
    where
        F: FnMut(&T) -> T,
    {
        for entry in other.iter() {
            self.push(map(entry));
        }
        let pre_dropped = other.offered - other.buf.len() as u64;
        self.offered += pre_dropped;
        self.dropped += pre_dropped;
    }

    /// Consumes the buffer, yielding retained entries oldest first.
    pub fn into_vec(self) -> Vec<T> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_everything_under_capacity() {
        let mut rb = RingBuffer::new(4);
        rb.push(1);
        rb.push(2);
        assert_eq!(rb.len(), 2);
        assert_eq!(rb.dropped(), 0);
        assert_eq!(rb.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut rb = RingBuffer::new(3);
        for v in 0..5 {
            rb.push(v);
        }
        assert_eq!(rb.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(rb.dropped(), 2);
        assert_eq!(rb.offered(), 5);
    }

    #[test]
    fn merge_preserves_offered_and_dropped_accounting() {
        let mut a = RingBuffer::new(4);
        a.push(1);
        let mut b = RingBuffer::new(2);
        for v in 10..15 {
            b.push(v); // 5 offered, 3 dropped, retains [13, 14]
        }
        a.merge_from(&b);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![1, 13, 14]);
        assert_eq!(a.offered(), 6);
        assert_eq!(a.dropped(), 3);
    }

    #[test]
    fn merge_overflows_like_individual_pushes() {
        let mut a = RingBuffer::new(2);
        a.push(1);
        a.push(2);
        let mut b = RingBuffer::new(4);
        b.push(3);
        a.merge_from(&b);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.offered(), 3);
        assert_eq!(a.dropped(), 1);
    }

    #[test]
    fn mapped_merge_transforms_only_retained_entries() {
        let mut a = RingBuffer::new(8);
        a.push(100);
        let mut b = RingBuffer::new(2);
        for v in 1..=4 {
            b.push(v); // retains [3, 4], dropped 2
        }
        a.merge_from_with(&b, |v| v + 1000);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![100, 1003, 1004]);
        assert_eq!(a.offered(), 5);
        assert_eq!(a.dropped(), 2);
    }

    #[test]
    fn zero_capacity_drops_all() {
        let mut rb = RingBuffer::new(0);
        rb.push(7);
        rb.push(8);
        assert!(rb.is_empty());
        assert_eq!(rb.dropped(), 2);
        assert_eq!(rb.offered(), 2);
    }
}
