//! Causal spans: named begin/end intervals in simulated time.
//!
//! A span covers a half-open interval `[start_ps, end_ps]` of *simulated*
//! picoseconds (never wall-clock, so traces are bit-identical across runs)
//! and may link to a parent span, forming a causal tree: the simulator opens
//! a root span around each mitigation consultation, the mitigation engines
//! open children around their decisions (quarantine, swap, repair), and the
//! simulator's channel model opens children around the intervals where
//! demand traffic actually pays (bank blocking, queue wait). Completed spans
//! land in a bounded ring inside the telemetry hub ([`crate::Telemetry`])
//! and can be exported to Chrome `about:tracing` alongside instant events.

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Hub-unique id (remapped on [`crate::Telemetry::merge_from`]).
    pub id: u64,
    /// Id of the enclosing span open at start time, if any.
    pub parent: Option<u64>,
    /// Static phase name, dot-namespaced (`"sim.mitigation"`,
    /// `"aqua.quarantine"`, `"migration.install"`, ...).
    pub name: &'static str,
    /// Start of the interval, simulated picoseconds.
    pub start_ps: u64,
    /// End of the interval, simulated picoseconds (`>= start_ps`).
    pub end_ps: u64,
}

impl Span {
    /// Length of the interval in picoseconds (0 for instant spans).
    pub fn duration_ps(&self) -> u64 {
        self.end_ps.saturating_sub(self.start_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_saturates() {
        let s = Span {
            id: 1,
            parent: None,
            name: "x",
            start_ps: 10,
            end_ps: 25,
        };
        assert_eq!(s.duration_ps(), 15);
        let backwards = Span { end_ps: 5, ..s };
        assert_eq!(backwards.duration_ps(), 0);
    }
}
