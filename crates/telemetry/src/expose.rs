//! Live metrics plane: a hand-rolled Prometheus-text scrape endpoint.
//!
//! [`MetricsPlane`] is a thread-safe board that live producers publish
//! into — per-source [`Snapshot`]s from simulation epoch hooks, cell
//! health from the bench supervisor, alert notices from both — and one
//! listener thread serves out of, over plain `std::net::TcpListener`
//! (no dependencies, in the same hand-rolled spirit as the bench gate's
//! JSON parser):
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4)
//! * `GET /healthz` — a JSON health view (sources, cells, alerts)
//!
//! Determinism rules (DESIGN.md section 16): the plane is strictly an
//! *observer*. Producers only ever copy already-recorded data into it;
//! the listener thread reads the board and writes sockets — it never
//! touches a telemetry hub, a journal (or its cell keys), or any
//! simulator state. Every byte of CSV/journal/span output is therefore
//! identical with the plane on or off. All plane fields are host-time
//! and excluded from any determinism comparison.
//!
//! Opt-in: nothing binds unless `AQUA_METRICS_ADDR` is set (or a binary
//! passes `--metrics-addr`). Port 0 binds an ephemeral port; the chosen
//! address is printed to stderr and, when `AQUA_METRICS_PORT_FILE` is
//! set, written to that file so scripts (ci.sh) can discover it.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json;
use crate::snapshot::Snapshot;

/// Live host-side rollup of supervised experiment cells.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellHealth {
    /// Cells the current matrix (or campaign) planned.
    pub total: u64,
    /// Cells whose first attempt has started.
    pub started: u64,
    /// Cells currently running.
    pub in_flight: u64,
    /// Cells concluded with a trustworthy result.
    pub completed: u64,
    /// Cells concluded with a typed failure.
    pub failed: u64,
    /// Extra attempts spent beyond each cell's first.
    pub retried: u64,
    /// Cells replayed from a checkpoint journal.
    pub resumed: u64,
    /// Cells quarantined as nondeterministic.
    pub quarantined: u64,
    /// Soft-deadline straggler escalations.
    pub stragglers: u64,
}

/// One alert surfaced on the plane (mirrors
/// [`crate::alerts::AlertFiring`], plus the source that tripped it).
#[derive(Debug, Clone, PartialEq)]
pub struct AlertNotice {
    /// Rule name.
    pub rule: String,
    /// Observed value at the firing.
    pub value: f64,
    /// Rule threshold.
    pub threshold: f64,
    /// Which publisher fired it (`scheme/workload;chN`, or `bench`).
    pub source: String,
    /// Whether it came from a host-time (`rate`) rule.
    pub host_time: bool,
}

/// Retained alert notices (newest kept; the total survives in
/// `alerts_fired_total`).
const ALERT_RETENTION: usize = 64;

#[derive(Debug, Default)]
struct Board {
    sources: BTreeMap<String, Snapshot>,
    cells: CellHealth,
    alerts: Vec<AlertNotice>,
}

/// The shared metrics board plus its listener (see the module docs).
#[derive(Debug)]
pub struct MetricsPlane {
    board: Mutex<Board>,
    addr: SocketAddr,
    shutdown: AtomicBool,
    scrapes: AtomicU64,
    alerts_fired: AtomicU64,
    started: Instant,
}

impl MetricsPlane {
    /// Binds `addr` (`host:port`; port 0 = ephemeral) and spawns the
    /// listener thread. Prints the bound address to stderr and writes it
    /// to `AQUA_METRICS_PORT_FILE` when that variable is set.
    pub fn bind(addr: &str) -> std::io::Result<Arc<MetricsPlane>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let plane = Arc::new(MetricsPlane {
            board: Mutex::new(Board::default()),
            addr,
            shutdown: AtomicBool::new(false),
            scrapes: AtomicU64::new(0),
            alerts_fired: AtomicU64::new(0),
            started: Instant::now(),
        });
        eprintln!("[metrics] serving /metrics and /healthz on http://{addr}");
        if let Ok(path) = std::env::var("AQUA_METRICS_PORT_FILE") {
            if !path.trim().is_empty() {
                if let Err(e) = std::fs::write(&path, addr.to_string()) {
                    eprintln!("warning: [metrics] cannot write port file {path}: {e}");
                }
            }
        }
        let server = Arc::clone(&plane);
        std::thread::Builder::new()
            .name("aqua-metrics".into())
            .spawn(move || serve_loop(&server, &listener))?;
        Ok(plane)
    }

    /// A plane bound to `AQUA_METRICS_ADDR`, or `None` when the variable
    /// is unset or empty. A bind failure warns and returns `None` (a
    /// broken observer must never fail the run it observes).
    pub fn from_env() -> Option<Arc<MetricsPlane>> {
        let addr = std::env::var("AQUA_METRICS_ADDR").ok()?;
        let addr = addr.trim();
        if addr.is_empty() {
            return None;
        }
        match Self::bind(addr) {
            Ok(plane) => Some(plane),
            Err(e) => {
                eprintln!("warning: [metrics] cannot bind {addr}: {e}; metrics plane disabled");
                None
            }
        }
    }

    /// The bound listen address (with the real port when 0 was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Publishes a source's latest snapshot (last write wins per label).
    pub fn publish(&self, source: &str, snapshot: Snapshot) {
        let mut board = self.lock();
        board.sources.insert(source.to_string(), snapshot);
    }

    /// Applies a mutation to the live cell-health rollup.
    pub fn update_cells(&self, f: impl FnOnce(&mut CellHealth)) {
        f(&mut self.lock().cells);
    }

    /// Current cell-health rollup (a copy).
    pub fn cells(&self) -> CellHealth {
        self.lock().cells.clone()
    }

    /// Records an alert notice (bounded retention, total counted forever).
    pub fn note_alert(&self, notice: AlertNotice) {
        self.alerts_fired.fetch_add(1, Ordering::Relaxed);
        let mut board = self.lock();
        if board.alerts.len() >= ALERT_RETENTION {
            board.alerts.remove(0);
        }
        board.alerts.push(notice);
    }

    /// Total alert notices ever recorded on this plane.
    pub fn alerts_fired(&self) -> u64 {
        self.alerts_fired.load(Ordering::Relaxed)
    }

    /// Sums a counter's current value across every published source.
    pub fn aggregate_counter(&self, name: &str) -> u64 {
        self.lock()
            .sources
            .values()
            .filter_map(|s| s.counter(name))
            .sum()
    }

    /// Successful `/metrics` scrapes served so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Asks the listener thread to exit (best-effort: pokes the socket so
    /// a blocked `accept` wakes up).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    /// Holds the process alive for `AQUA_METRICS_LINGER_MS` milliseconds
    /// (0 / unset = return immediately) so late scrapers — ci.sh racing a
    /// short campaign — still find the endpoint up after the run's work is
    /// done.
    pub fn linger_from_env(&self) {
        let ms: u64 = std::env::var("AQUA_METRICS_LINGER_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if ms > 0 {
            eprintln!("[metrics] lingering {ms} ms for late scrapers");
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Board> {
        // An observer poisoned by a panicking scraper must not take the
        // run down with it.
        self.board.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Renders the Prometheus text exposition body (`/metrics`).
    pub fn render_metrics(&self) -> String {
        let board = self.lock();
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

        // Plane self-metrics.
        push_type(&mut out, &mut typed, "aqua_up", "gauge");
        out.push_str("aqua_up 1\n");
        push_type(&mut out, &mut typed, "aqua_uptime_seconds", "gauge");
        out.push_str(&format!(
            "aqua_uptime_seconds {}\n",
            json::num(self.started.elapsed().as_secs_f64())
        ));
        push_type(&mut out, &mut typed, "aqua_scrapes_total", "counter");
        out.push_str(&format!(
            "aqua_scrapes_total {}\n",
            self.scrapes.load(Ordering::Relaxed)
        ));
        push_type(&mut out, &mut typed, "aqua_alerts_fired_total", "counter");
        out.push_str(&format!(
            "aqua_alerts_fired_total {}\n",
            self.alerts_fired.load(Ordering::Relaxed)
        ));

        // Supervisor cell health.
        let c = &board.cells;
        for (name, kind, v) in [
            ("aqua_cells_planned", "gauge", c.total),
            ("aqua_cells_started_total", "counter", c.started),
            ("aqua_cells_in_flight", "gauge", c.in_flight),
            ("aqua_cells_completed_total", "counter", c.completed),
            ("aqua_cells_failed_total", "counter", c.failed),
            ("aqua_cells_retried_total", "counter", c.retried),
            ("aqua_cells_resumed_total", "counter", c.resumed),
            ("aqua_cells_quarantined_total", "counter", c.quarantined),
            ("aqua_straggler_reports_total", "counter", c.stragglers),
        ] {
            push_type(&mut out, &mut typed, name, kind);
            out.push_str(&format!("{name} {v}\n"));
        }

        // Per-source registry series.
        for (source, snap) in &board.sources {
            let label = format!("{{source=\"{}\"}}", escape_label(source));
            push_type(&mut out, &mut typed, "aqua_snapshot_seq", "counter");
            out.push_str(&format!("aqua_snapshot_seq{label} {}\n", snap.seq));
            for (name, v) in &snap.summary.counters {
                let metric = format!("aqua_{}_total", sanitize(name));
                push_type(&mut out, &mut typed, &metric, "counter");
                out.push_str(&format!("{metric}{label} {v}\n"));
            }
            for (name, v) in &snap.summary.gauges {
                let metric = format!("aqua_{}", sanitize(name));
                push_type(&mut out, &mut typed, &metric, "gauge");
                out.push_str(&format!("{metric}{label} {}\n", json::num(*v)));
            }
            // Registered histograms render from full bucket data (exact
            // sums); folded span.* stats render from their summaries.
            for (name, data) in &snap.histogram_data {
                let metric = format!("aqua_{}", sanitize(name));
                push_type(&mut out, &mut typed, &metric, "summary");
                for (q, v) in [
                    (0.5, data.percentile(0.5)),
                    (0.95, data.percentile(0.95)),
                    (0.99, data.percentile(0.99)),
                ] {
                    out.push_str(&format!(
                        "{metric}{{source=\"{}\",quantile=\"{q}\"}} {}\n",
                        escape_label(source),
                        json::num(v)
                    ));
                }
                out.push_str(&format!(
                    "{metric}_sum{label} {}\n{metric}_count{label} {}\n",
                    data.sum(),
                    data.count()
                ));
            }
        }

        // Per-channel shard rollups: requests by channel, plus a max/min
        // imbalance ratio per multi-channel cell.
        let mut by_cell: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
        for (source, snap) in &board.sources {
            if let Some((cell, channel)) = split_channel(source) {
                let requests = snap.counter("sim.requests").unwrap_or(0);
                by_cell.entry(cell).or_default().push((channel, requests));
            }
        }
        for (cell, channels) in &by_cell {
            push_type(&mut out, &mut typed, "aqua_channel_requests", "gauge");
            for (channel, requests) in channels {
                out.push_str(&format!(
                    "aqua_channel_requests{{cell=\"{}\",channel=\"{}\"}} {requests}\n",
                    escape_label(cell),
                    escape_label(channel)
                ));
            }
            if channels.len() > 1 {
                let max = channels.iter().map(|&(_, r)| r).max().unwrap_or(0);
                let min = channels.iter().map(|&(_, r)| r).min().unwrap_or(0);
                let ratio = if min > 0 {
                    max as f64 / min as f64
                } else {
                    0.0
                };
                push_type(
                    &mut out,
                    &mut typed,
                    "aqua_channel_imbalance_ratio",
                    "gauge",
                );
                out.push_str(&format!(
                    "aqua_channel_imbalance_ratio{{cell=\"{}\"}} {}\n",
                    escape_label(cell),
                    json::num(ratio)
                ));
            }
        }
        out
    }

    /// Renders the `/healthz` JSON body.
    pub fn render_healthz(&self) -> String {
        let board = self.lock();
        let mut out = String::from("{\"status\":\"ok\"");
        out.push_str(&format!(
            ",\"uptime_ms\":{}",
            self.started.elapsed().as_millis()
        ));
        out.push_str(&format!(
            ",\"scrapes\":{}",
            self.scrapes.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            ",\"alerts_fired\":{}",
            self.alerts_fired.load(Ordering::Relaxed)
        ));
        let c = &board.cells;
        out.push_str(&format!(
            ",\"cells\":{{\"planned\":{},\"started\":{},\"in_flight\":{},\"completed\":{},\
             \"failed\":{},\"retried\":{},\"resumed\":{},\"quarantined\":{},\"stragglers\":{}}}",
            c.total,
            c.started,
            c.in_flight,
            c.completed,
            c.failed,
            c.retried,
            c.resumed,
            c.quarantined,
            c.stragglers
        ));
        out.push_str(",\"alerts\":[");
        for (i, a) in board.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json::push_str(&mut out, &a.rule);
            out.push_str(&format!(
                ",\"value\":{},\"threshold\":{},\"host_time\":{},\"source\":",
                json::num(a.value),
                json::num(a.threshold),
                a.host_time
            ));
            json::push_str(&mut out, &a.source);
            out.push('}');
        }
        out.push_str("],\"sources\":{");
        for (i, (source, snap)) in board.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, source);
            out.push_str(&format!(
                ":{{\"seq\":{},\"requests\":{},\"activations\":{},\"integrity_escapes\":{},\
                 \"degraded_epochs\":{},\"epochs_recorded\":{},\"requests_per_sec\":{}}}",
                snap.seq,
                snap.counter("sim.requests").unwrap_or(0),
                snap.counter("sim.activations").unwrap_or(0),
                snap.counter("sim.integrity_escapes").unwrap_or(0),
                snap.counter("sim.degraded_epochs").unwrap_or(0),
                snap.summary.epochs_recorded,
                json::num(snap.rate_per_sec("sim.requests"))
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Splits `scheme/workload;ch3` into `("scheme/workload", "3")`.
fn split_channel(source: &str) -> Option<(&str, &str)> {
    let idx = source.rfind(";ch")?;
    let channel = &source[idx + 3..];
    if channel.is_empty() || !channel.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((&source[..idx], channel))
}

/// Emits a `# TYPE` header once per metric name.
fn push_type(
    out: &mut String,
    typed: &mut std::collections::BTreeSet<String>,
    name: &str,
    kind: &str,
) {
    if typed.insert(name.to_string()) {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
    }
}

/// Maps a registry name onto the Prometheus name charset
/// (`[a-zA-Z0-9_:]`): `sim.requests` → `sim_requests`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn serve_loop(plane: &MetricsPlane, listener: &TcpListener) {
    for stream in listener.incoming() {
        if plane.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(mut stream) = stream {
            let _ = handle(plane, &mut stream);
        }
    }
}

/// Serves one HTTP exchange. Minimal by design: read the request line,
/// route on the path, answer, close.
fn handle(plane: &MetricsPlane, stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(1000)))?;
    let mut buf = [0u8; 2048];
    let mut len = 0;
    // Read until the request line is complete (or the buffer fills).
    while !buf[..len].windows(2).any(|w| w == b"\r\n") && len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => {
            plane.scrapes.fetch_add(1, Ordering::Relaxed);
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                plane.render_metrics(),
            )
        }
        "/healthz" => ("200 OK", "application/json", plane.render_healthz()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics or /healthz\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotTracker;
    use crate::{Telemetry, TelemetryConfig};

    fn plane() -> Arc<MetricsPlane> {
        MetricsPlane::bind("127.0.0.1:0").expect("bind ephemeral port")
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_healthz_over_http() {
        let p = plane();
        let hub = Telemetry::new(TelemetryConfig::default());
        if hub.is_enabled() {
            hub.counter("sim.requests").add(42);
            let snap = SnapshotTracker::new().capture(&hub).unwrap();
            p.publish("aqua-sram/mcf;ch0", snap);
        }
        p.update_cells(|c| {
            c.total = 4;
            c.in_flight = 2;
        });
        let (head, body) = get(p.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("aqua_up 1"), "{body}");
        assert!(body.contains("aqua_cells_in_flight 2"), "{body}");
        if hub.is_enabled() {
            assert!(
                body.contains("aqua_sim_requests_total{source=\"aqua-sram/mcf;ch0\"} 42"),
                "{body}"
            );
            assert!(
                body.contains("# TYPE aqua_sim_requests_total counter"),
                "{body}"
            );
        }
        let (head, body) = get(p.local_addr(), "/healthz");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with("{\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"in_flight\":2"), "{body}");
        let (head, _) = get(p.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_eq!(p.scrapes(), 1, "only /metrics counts as a scrape");
        p.shutdown();
    }

    #[test]
    fn channel_rollups_compute_imbalance() {
        let p = plane();
        let hub = Telemetry::new(TelemetryConfig::default());
        if hub.is_enabled() {
            let c = hub.counter("sim.requests");
            c.add(100);
            let mut t = SnapshotTracker::new();
            p.publish("aqua-sram/mcf;ch0", t.capture(&hub).unwrap());
            c.add(300); // total 400 on ch1
            p.publish(
                "aqua-sram/mcf;ch1",
                SnapshotTracker::new().capture(&hub).unwrap(),
            );
            let body = p.render_metrics();
            assert!(
                body.contains("aqua_channel_requests{cell=\"aqua-sram/mcf\",channel=\"0\"} 100"),
                "{body}"
            );
            assert!(
                body.contains("aqua_channel_imbalance_ratio{cell=\"aqua-sram/mcf\"} 4"),
                "{body}"
            );
        }
        p.shutdown();
    }

    #[test]
    fn alerts_are_bounded_and_counted() {
        let p = plane();
        for i in 0..(ALERT_RETENTION + 10) {
            p.note_alert(AlertNotice {
                rule: format!("r{i}"),
                value: 1.0,
                threshold: 0.0,
                source: "bench".into(),
                host_time: false,
            });
        }
        assert_eq!(p.alerts_fired(), (ALERT_RETENTION + 10) as u64);
        assert_eq!(p.lock().alerts.len(), ALERT_RETENTION);
        let healthz = p.render_healthz();
        assert!(healthz.contains("\"alerts_fired\":74"), "{healthz}");
        p.shutdown();
    }

    #[test]
    fn label_values_and_names_are_escaped() {
        assert_eq!(sanitize("mem.access_ps"), "mem_access_ps");
        assert_eq!(sanitize("span.sim.run"), "span_sim_run");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(
            split_channel("aqua-sram/mcf;ch12"),
            Some(("aqua-sram/mcf", "12"))
        );
        assert_eq!(split_channel("bench"), None);
        assert_eq!(split_channel("x;chx"), None);
    }
}
