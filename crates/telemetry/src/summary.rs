//! Condensed end-of-run telemetry, embeddable in `RunReport`.

use crate::hist::HistogramSummary;
use crate::json;
use crate::wallclock::WallclockSummary;

/// Snapshot of all registered metrics at the end of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Registered counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Registered gauges (last written value), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Registered histograms, condensed, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Events offered to the ring trace (kept + dropped).
    pub events_recorded: u64,
    /// Events the ring trace had to drop.
    pub events_dropped: u64,
    /// Epoch samples captured in the time series.
    pub epochs_recorded: u64,
    /// Completed spans offered to the span ring (kept + dropped). Per-name
    /// duration stats appear in `histograms` under `span.<name>`.
    pub spans_recorded: u64,
    /// Completed spans the span ring had to drop.
    pub spans_dropped: u64,
    /// Host-time phase profile and throughput, present when any wallclock
    /// phase was recorded. Its equality ignores nanosecond values (host
    /// noise), so summary comparisons stay deterministic.
    pub wallclock: Option<WallclockSummary>,
}

impl TelemetrySummary {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the summary as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push(':');
            out.push_str(&json::num(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                h.count,
                json::num(h.mean),
                json::num(h.p50),
                json::num(h.p95),
                json::num(h.p99),
                h.max
            ));
        }
        out.push_str(&format!(
            "}},\"events_recorded\":{},\"events_dropped\":{},\"epochs_recorded\":{},\
             \"spans_recorded\":{},\"spans_dropped\":{},\"wallclock\":",
            self.events_recorded,
            self.events_dropped,
            self.epochs_recorded,
            self.spans_recorded,
            self.spans_dropped
        ));
        match &self.wallclock {
            Some(w) => out.push_str(&w.to_json()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_json_shape() {
        let s = TelemetrySummary {
            counters: vec![("aqua.installs".into(), 3)],
            gauges: vec![("rqa_occupancy".into(), 0.5)],
            histograms: vec![(
                "mem.access_ps".into(),
                HistogramSummary {
                    count: 2,
                    mean: 10.0,
                    p50: 10.0,
                    p95: 12.0,
                    p99: 12.0,
                    max: 12,
                },
            )],
            events_recorded: 5,
            events_dropped: 1,
            epochs_recorded: 2,
            spans_recorded: 4,
            spans_dropped: 0,
            wallclock: None,
        };
        assert_eq!(s.counter("aqua.installs"), Some(3));
        assert_eq!(s.histogram("mem.access_ps").unwrap().max, 12);
        let j = s.to_json();
        assert!(j.contains("\"aqua.installs\":3"), "{j}");
        assert!(j.contains("\"events_dropped\":1"), "{j}");
        assert!(j.contains("\"spans_recorded\":4"), "{j}");
        assert!(j.contains("\"wallclock\":null"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn json_embeds_wallclock_when_present() {
        let mut profile = crate::wallclock::WallProfile::new();
        profile.record("sim.run", 500, 0);
        let s = TelemetrySummary {
            wallclock: Some(crate::wallclock::WallclockSummary::from_profile(
                &profile, 100,
            )),
            ..Default::default()
        };
        let j = s.to_json();
        assert!(
            j.contains("\"wallclock\":{\"host_wallclock_ns\":500"),
            "{j}"
        );
        assert!(j.contains("\"accesses_simulated\":100"), "{j}");
        assert!(j.ends_with("}}"), "{j}");
    }
}
