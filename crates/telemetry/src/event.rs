//! Typed simulator events for the bounded ring trace.

use crate::json;

/// One trace entry: a typed event stamped with simulator time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulator timestamp in picoseconds.
    pub ts_ps: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The typed events the simulator layers emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A row activation reached the DRAM model (high volume; traced only
    /// when activation tracing is switched on).
    Activate {
        /// Flat bank index.
        bank: u64,
        /// Row within the bank.
        row: u64,
    },
    /// AQUA moved an aggressor row into a quarantine slot.
    QuarantineIn {
        /// Original (functional) row address.
        row: u64,
        /// Destination RQA slot.
        slot: u64,
    },
    /// AQUA drained or evicted a row out of the quarantine area.
    QuarantineOut {
        /// Original (functional) row address.
        row: u64,
        /// Vacated RQA slot.
        slot: u64,
    },
    /// RRS swapped two rows.
    Swap {
        /// Aggressor row.
        row_a: u64,
        /// Randomly selected partner row.
        row_b: u64,
    },
    /// RRS undid a previous swap.
    Unswap {
        /// Aggressor row.
        row_a: u64,
        /// Partner row being restored.
        row_b: u64,
    },
    /// The FPT cache missed and fell back to a DRAM table walk.
    FptCacheMiss {
        /// Looked-up row.
        row: u64,
        /// Whether the singleton optimization resolved the miss without a
        /// DRAM access.
        singleton: bool,
    },
    /// A mitigation epoch ended.
    EpochRollover {
        /// Zero-based index of the epoch that just finished.
        epoch: u64,
    },
    /// Blockhammer-style throttling stalled a request.
    ThrottleStall {
        /// Row whose activation was delayed.
        row: u64,
        /// Imposed delay in picoseconds.
        delay_ps: u64,
    },
    /// A row's activation count first exceeded the Rowhammer threshold.
    ThresholdCrossed {
        /// The aggressor row.
        row: u64,
        /// Activation count at the crossing.
        count: u64,
    },
    /// A scheduled fault was injected into the running system.
    FaultInjected {
        /// Stable fault-family name (`FaultKind::name`).
        fault: &'static str,
    },
    /// The bench supervisor re-ran a failed experiment cell from its seed.
    RetryAttempt {
        /// Matrix job index of the retried cell.
        job: u64,
        /// 1-based attempt number of the re-run (2 = first retry).
        attempt: u64,
    },
    /// A completed cell was replayed from the checkpoint journal instead of
    /// being re-simulated.
    CellResumed {
        /// Matrix job index of the resumed cell.
        job: u64,
    },
    /// A simulation ran past its soft deadline (straggler escalation, fired
    /// once per run before the hard watchdog would abort it).
    StragglerReport {
        /// Epoch the run had reached when the soft deadline passed.
        epoch: u64,
        /// Host wallclock elapsed at escalation, milliseconds.
        elapsed_ms: u64,
    },
    /// A deterministic alert rule crossed its threshold at an epoch
    /// boundary (edge-triggered: recorded on the false→true transition
    /// only). Host-time `rate(...)` rules never reach the ring.
    AlertFired {
        /// Interned rule name (stable across the process).
        rule: &'static str,
        /// Zero-based epoch whose boundary evaluation fired the rule.
        epoch: u64,
    },
}

impl EventKind {
    /// Stable name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Activate { .. } => "Activate",
            EventKind::QuarantineIn { .. } => "QuarantineIn",
            EventKind::QuarantineOut { .. } => "QuarantineOut",
            EventKind::Swap { .. } => "Swap",
            EventKind::Unswap { .. } => "Unswap",
            EventKind::FptCacheMiss { .. } => "FptCacheMiss",
            EventKind::EpochRollover { .. } => "EpochRollover",
            EventKind::ThrottleStall { .. } => "ThrottleStall",
            EventKind::ThresholdCrossed { .. } => "ThresholdCrossed",
            EventKind::FaultInjected { .. } => "FaultInjected",
            EventKind::RetryAttempt { .. } => "RetryAttempt",
            EventKind::CellResumed { .. } => "CellResumed",
            EventKind::StragglerReport { .. } => "StragglerReport",
            EventKind::AlertFired { .. } => "AlertFired",
        }
    }

    /// The event payload as a JSON object string (used by both exporters).
    pub fn args_json(&self) -> String {
        let mut out = String::from("{");
        let put = |out: &mut String, key: &str, val: String| {
            if out.len() > 1 {
                out.push(',');
            }
            json::push_str(out, key);
            out.push(':');
            out.push_str(&val);
        };
        match *self {
            EventKind::Activate { bank, row } => {
                put(&mut out, "bank", bank.to_string());
                put(&mut out, "row", row.to_string());
            }
            EventKind::QuarantineIn { row, slot } | EventKind::QuarantineOut { row, slot } => {
                put(&mut out, "row", row.to_string());
                put(&mut out, "slot", slot.to_string());
            }
            EventKind::Swap { row_a, row_b } | EventKind::Unswap { row_a, row_b } => {
                put(&mut out, "row_a", row_a.to_string());
                put(&mut out, "row_b", row_b.to_string());
            }
            EventKind::FptCacheMiss { row, singleton } => {
                put(&mut out, "row", row.to_string());
                put(&mut out, "singleton", singleton.to_string());
            }
            EventKind::EpochRollover { epoch } => {
                put(&mut out, "epoch", epoch.to_string());
            }
            EventKind::ThrottleStall { row, delay_ps } => {
                put(&mut out, "row", row.to_string());
                put(&mut out, "delay_ps", delay_ps.to_string());
            }
            EventKind::ThresholdCrossed { row, count } => {
                put(&mut out, "row", row.to_string());
                put(&mut out, "count", count.to_string());
            }
            EventKind::FaultInjected { fault } => {
                let mut quoted = String::new();
                json::push_str(&mut quoted, fault);
                put(&mut out, "fault", quoted);
            }
            EventKind::RetryAttempt { job, attempt } => {
                put(&mut out, "job", job.to_string());
                put(&mut out, "attempt", attempt.to_string());
            }
            EventKind::CellResumed { job } => {
                put(&mut out, "job", job.to_string());
            }
            EventKind::StragglerReport { epoch, elapsed_ms } => {
                put(&mut out, "epoch", epoch.to_string());
                put(&mut out, "elapsed_ms", elapsed_ms.to_string());
            }
            EventKind::AlertFired { rule, epoch } => {
                let mut quoted = String::new();
                json::push_str(&mut quoted, rule);
                put(&mut out, "rule", quoted);
                put(&mut out, "epoch", epoch.to_string());
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_are_valid_json_objects() {
        let kinds = [
            EventKind::Activate { bank: 3, row: 9 },
            EventKind::QuarantineIn { row: 1, slot: 2 },
            EventKind::Swap { row_a: 5, row_b: 6 },
            EventKind::FptCacheMiss {
                row: 7,
                singleton: true,
            },
            EventKind::EpochRollover { epoch: 4 },
            EventKind::ThrottleStall {
                row: 8,
                delay_ps: 100,
            },
            EventKind::ThresholdCrossed {
                row: 2,
                count: 5000,
            },
            EventKind::FaultInjected { fault: "rpt_flip" },
            EventKind::RetryAttempt { job: 3, attempt: 2 },
            EventKind::CellResumed { job: 5 },
            EventKind::StragglerReport {
                epoch: 1,
                elapsed_ms: 950,
            },
            EventKind::AlertFired {
                rule: "integrity_escape",
                epoch: 7,
            },
        ];
        for k in kinds {
            let s = k.args_json();
            assert!(s.starts_with('{') && s.ends_with('}'), "{s}");
            assert!(!k.name().is_empty());
        }
        assert_eq!(
            EventKind::QuarantineIn { row: 1, slot: 2 }.args_json(),
            r#"{"row":1,"slot":2}"#
        );
    }
}
