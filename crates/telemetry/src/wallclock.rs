//! Host-time phase profiling: accumulated wallclock statistics.
//!
//! Everything else in this crate measures *simulated* picoseconds; this
//! module measures *host* nanoseconds, so the hot-loop speed campaign can
//! see where real time goes and gate on accesses per wallclock second. The
//! pure accumulation structures here ([`PhaseStats`], [`WallProfile`],
//! [`WallclockSummary`]) are compiled unconditionally so they stay
//! property-testable in both feature modes; the actual `Instant`-reading
//! machinery (the phase stack and [`crate::hub::PhaseGuard`]) lives in the
//! hub and is feature-gated.
//!
//! Host time is nondeterministic, so [`WallclockSummary`]'s `PartialEq`
//! deliberately compares only the deterministic shape of a profile — phase
//! paths, per-phase counts, and the accesses-simulated count — never
//! nanosecond totals. That keeps `RunReport` equality (the backbone of the
//! serial-vs-parallel determinism tests) meaningful on instrumented runs.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::json;

/// Accumulated host-time statistics for one phase (or one unique stack
/// path). All durations are host nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Completed occurrences.
    pub count: u64,
    /// Inclusive wallclock across all occurrences (children included).
    pub total_ns: u64,
    /// Wallclock spent inside child phases, summed across occurrences.
    pub child_ns: u64,
    /// Shortest single occurrence (0 when `count` is 0).
    pub min_ns: u64,
    /// Longest single occurrence.
    pub max_ns: u64,
}

impl PhaseStats {
    /// Inclusive time minus child time: wallclock attributable to this
    /// phase itself.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Folds in one completed occurrence.
    pub fn record(&mut self, total_ns: u64, child_ns: u64) {
        self.min_ns = if self.count == 0 {
            total_ns
        } else {
            self.min_ns.min(total_ns)
        };
        self.max_ns = self.max_ns.max(total_ns);
        self.count += 1;
        self.total_ns += total_ns;
        self.child_ns += child_ns;
    }

    /// Folds another accumulator into this one (counts and totals add,
    /// min/max combine). Commutative and associative, so merged counts are
    /// independent of merge order.
    pub fn merge(&mut self, other: &PhaseStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.child_ns += other.child_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Accumulated host-time profile keyed by stack path.
///
/// A path is the `;`-joined chain of phase names from the outermost open
/// phase to the one being recorded (`"sim.run;sim.epoch_end"`), i.e. exactly
/// the folded-stacks key flamegraph tooling consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WallProfile {
    paths: BTreeMap<String, PhaseStats>,
}

impl WallProfile {
    /// An empty profile.
    pub fn new() -> Self {
        WallProfile::default()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Folds in one completed phase occurrence at `path`.
    pub fn record(&mut self, path: &str, total_ns: u64, child_ns: u64) {
        self.paths
            .entry(path.to_string())
            .or_default()
            .record(total_ns, child_ns);
    }

    /// Folds another profile into this one, path-wise. Counts merge
    /// deterministically: any partition of the same recordings across forks
    /// merges back to the same counts.
    pub fn merge(&mut self, other: &WallProfile) {
        for (path, stats) in &other.paths {
            self.paths.entry(path.clone()).or_default().merge(stats);
        }
    }

    /// Folds `other` in *nested* under `prefix`: every path `p` of `other`
    /// lands at `prefix;p`, and one synthetic occurrence is recorded at
    /// `prefix` itself whose inclusive time is `other`'s root total, fully
    /// attributed to child time. Returns that root total in nanoseconds.
    ///
    /// The sharded simulator uses this to park each shard's wall profile
    /// under a `sim.sharded;shard<i>` subtree: the shard rows stay visible
    /// in folded stacks, but none of them is a root path, so the merged
    /// hub's `host_wallclock_ns` keeps measuring real elapsed time (the
    /// coordinator's own open phase) instead of summing per-shard CPU time.
    pub fn merge_nested(&mut self, prefix: &str, other: &WallProfile) -> u64 {
        if prefix.is_empty() {
            let root_total = other
                .paths
                .iter()
                .filter(|(p, _)| !p.contains(';'))
                .map(|(_, s)| s.total_ns)
                .sum();
            self.merge(other);
            return root_total;
        }
        let mut root_total = 0u64;
        for (path, stats) in &other.paths {
            if !path.contains(';') {
                root_total += stats.total_ns;
            }
            self.paths
                .entry(format!("{prefix};{path}"))
                .or_default()
                .merge(stats);
        }
        if !other.paths.is_empty() {
            self.paths
                .entry(prefix.to_string())
                .or_default()
                .record(root_total, root_total);
        }
        root_total
    }

    /// Iterates `(path, stats)` in sorted path order.
    pub fn paths(&self) -> impl Iterator<Item = (&str, &PhaseStats)> {
        self.paths.iter().map(|(p, s)| (p.as_str(), s))
    }

    /// Looks up one path's stats.
    pub fn path(&self, path: &str) -> Option<&PhaseStats> {
        self.paths.get(path)
    }
}

/// Leaf phase name of a `;`-joined stack path.
fn leaf(path: &str) -> &str {
    path.rsplit(';').next().unwrap_or(path)
}

/// Condensed host-time profile plus throughput, embeddable in
/// [`crate::TelemetrySummary`].
#[derive(Debug, Clone, Default)]
pub struct WallclockSummary {
    /// Per-stack-path stats, sorted by path (the folded-stacks view).
    pub paths: Vec<(String, PhaseStats)>,
    /// Per-phase stats aggregated over every path ending in that phase,
    /// sorted by name.
    pub phases: Vec<(String, PhaseStats)>,
    /// Sum of root-path (no `;`) inclusive totals. For a single run this is
    /// profiled elapsed time; after a parallel merge it is aggregate
    /// profiled time across jobs (CPU-seconds, not elapsed).
    pub host_wallclock_ns: u64,
    /// Value of the `sim.requests` counter when the summary was taken.
    pub accesses_simulated: u64,
    /// `accesses_simulated` per host wallclock second (0 when no wallclock
    /// was profiled).
    pub accesses_per_sec: f64,
}

/// Host nanoseconds are noise across runs and machines, so equality covers
/// only the deterministic shape: paths, per-path counts, phase names,
/// per-phase counts, and the accesses-simulated count.
impl PartialEq for WallclockSummary {
    fn eq(&self, other: &Self) -> bool {
        self.accesses_simulated == other.accesses_simulated
            && self.paths.len() == other.paths.len()
            && self.phases.len() == other.phases.len()
            && self
                .paths
                .iter()
                .zip(&other.paths)
                .all(|((ap, a), (bp, b))| ap == bp && a.count == b.count)
            && self
                .phases
                .iter()
                .zip(&other.phases)
                .all(|((an, a), (bn, b))| an == bn && a.count == b.count)
    }
}

impl WallclockSummary {
    /// Condenses a profile, attaching the accesses-simulated count for
    /// throughput derivation.
    pub fn from_profile(profile: &WallProfile, accesses_simulated: u64) -> Self {
        let paths: Vec<(String, PhaseStats)> =
            profile.paths().map(|(p, s)| (p.to_string(), *s)).collect();
        let mut by_name: BTreeMap<&str, PhaseStats> = BTreeMap::new();
        let mut host_wallclock_ns = 0u64;
        for (path, stats) in &paths {
            by_name.entry(leaf(path)).or_default().merge(stats);
            if !path.contains(';') {
                host_wallclock_ns += stats.total_ns;
            }
        }
        let phases = by_name
            .into_iter()
            .map(|(n, s)| (n.to_string(), s))
            .collect();
        let accesses_per_sec = if host_wallclock_ns > 0 {
            accesses_simulated as f64 / (host_wallclock_ns as f64 / 1e9)
        } else {
            0.0
        };
        WallclockSummary {
            paths,
            phases,
            host_wallclock_ns,
            accesses_simulated,
            accesses_per_sec,
        }
    }

    /// Looks up one aggregated phase by (leaf) name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Looks up one stack path.
    pub fn path(&self, path: &str) -> Option<&PhaseStats> {
        self.paths.iter().find(|(p, _)| p == path).map(|(_, s)| s)
    }

    /// Writes flamegraph-compatible folded stacks: one `path self_ns` line
    /// per stack path with nonzero self time, semicolon-separated frames —
    /// the exact input `flamegraph.pl` / inferno's `flamegraph` expect.
    pub fn write_folded<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (path, stats) in &self.paths {
            let self_ns = stats.self_ns();
            if self_ns > 0 {
                writeln!(w, "{path} {self_ns}")?;
            }
        }
        Ok(())
    }

    /// Writes the profile as JSONL: one
    /// `{path, name, count, total_ns, self_ns, min_ns, max_ns}` object per
    /// stack path, then one `{host_wallclock_ns, accesses_simulated,
    /// accesses_per_sec}` trailer line.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (path, s) in &self.paths {
            let mut line = String::from("{");
            json::push_str(&mut line, "path");
            line.push(':');
            json::push_str(&mut line, path);
            line.push(',');
            json::push_str(&mut line, "name");
            line.push(':');
            json::push_str(&mut line, leaf(path));
            line.push_str(&format!(
                ",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                s.count,
                s.total_ns,
                s.self_ns(),
                s.min_ns,
                s.max_ns
            ));
            writeln!(w, "{line}")?;
        }
        writeln!(
            w,
            "{{\"host_wallclock_ns\":{},\"accesses_simulated\":{},\"accesses_per_sec\":{}}}",
            self.host_wallclock_ns,
            self.accesses_simulated,
            json::num(self.accesses_per_sec)
        )
    }

    /// Renders the summary as one JSON object (embedded by
    /// [`crate::TelemetrySummary::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"host_wallclock_ns\":{},\"accesses_simulated\":{},\"accesses_per_sec\":{},\
             \"phases\":{{",
            self.host_wallclock_ns,
            self.accesses_simulated,
            json::num(self.accesses_per_sec)
        );
        for (i, (name, s)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{},\"self_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                s.count,
                s.total_ns,
                s.self_ns(),
                s.min_ns,
                s.max_ns
            ));
        }
        out.push_str("},\"paths\":{");
        for (i, (path, s)) in self.paths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, path);
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{}}}",
                s.count, s.total_ns
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_record_tracks_min_max_and_self() {
        let mut s = PhaseStats::default();
        s.record(100, 40);
        s.record(10, 0);
        s.record(50, 20);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 160);
        assert_eq!(s.child_ns, 60);
        assert_eq!(s.self_ns(), 100);
        assert_eq!((s.min_ns, s.max_ns), (10, 100));
    }

    #[test]
    fn stats_merge_is_commutative() {
        let mut a = PhaseStats::default();
        a.record(100, 10);
        let mut b = PhaseStats::default();
        b.record(5, 0);
        b.record(200, 50);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 3);
        assert_eq!(ab.total_ns, 305);
        assert_eq!((ab.min_ns, ab.max_ns), (5, 200));
        // Merging an empty accumulator changes nothing.
        let before = ab;
        ab.merge(&PhaseStats::default());
        assert_eq!(ab, before);
    }

    #[test]
    fn self_time_saturates_on_clock_skew() {
        // A child measured longer than its parent (scheduler preemption
        // between the two `Instant` reads) must not underflow.
        let s = PhaseStats {
            count: 1,
            total_ns: 10,
            child_ns: 25,
            min_ns: 10,
            max_ns: 10,
        };
        assert_eq!(s.self_ns(), 0);
    }

    fn sample_profile() -> WallProfile {
        let mut p = WallProfile::new();
        p.record("sim.run", 1_000, 700);
        p.record("sim.run;sim.epoch", 400, 100);
        p.record("sim.run;sim.epoch", 300, 0);
        p.record("sim.run;sim.epoch_end", 0, 0);
        p
    }

    #[test]
    fn summary_aggregates_by_leaf_name_and_derives_throughput() {
        let s = WallclockSummary::from_profile(&sample_profile(), 2_000);
        assert_eq!(s.host_wallclock_ns, 1_000);
        assert_eq!(s.accesses_simulated, 2_000);
        // 2000 accesses over 1000 ns = 2e9 accesses/sec.
        assert!(
            (s.accesses_per_sec - 2e9).abs() < 1.0,
            "{}",
            s.accesses_per_sec
        );
        let epoch = s.phase("sim.epoch").unwrap();
        assert_eq!(epoch.count, 2);
        assert_eq!(epoch.total_ns, 700);
        assert_eq!(epoch.self_ns(), 600);
        assert_eq!(s.path("sim.run").unwrap().self_ns(), 300);
    }

    #[test]
    fn profile_merge_counts_are_partition_independent() {
        let mut whole = sample_profile();
        whole.merge(&sample_profile());
        // The same recordings split differently across two forks.
        let mut a = WallProfile::new();
        a.record("sim.run", 1_000, 700);
        a.record("sim.run;sim.epoch", 400, 100);
        let mut b = WallProfile::new();
        b.record("sim.run;sim.epoch", 300, 0);
        b.record("sim.run;sim.epoch", 400, 100);
        b.record("sim.run;sim.epoch", 300, 0);
        b.record("sim.run", 1_000, 700);
        b.record("sim.run;sim.epoch_end", 0, 0);
        b.record("sim.run;sim.epoch_end", 0, 0);
        let mut parts = WallProfile::new();
        parts.merge(&a);
        parts.merge(&b);
        let ws = WallclockSummary::from_profile(&whole, 0);
        let ps = WallclockSummary::from_profile(&parts, 0);
        assert_eq!(ws, ps); // counts + paths compare; ns don't
        assert_eq!(
            whole.path("sim.run;sim.epoch").unwrap().count,
            parts.path("sim.run;sim.epoch").unwrap().count
        );
    }

    #[test]
    fn merge_nested_parks_shard_rows_off_the_root() {
        let mut root = WallProfile::new();
        root.record("sim.sharded", 2_000, 0);
        let total0 = root.merge_nested("sim.sharded;shard0", &sample_profile());
        let total1 = root.merge_nested("sim.sharded;shard1", &sample_profile());
        assert_eq!(total0, 1_000);
        assert_eq!(total1, 1_000);
        // Shard rows are nested, with a synthetic all-child row per shard.
        let shard0 = root.path("sim.sharded;shard0").unwrap();
        assert_eq!((shard0.count, shard0.total_ns), (1, 1_000));
        assert_eq!(shard0.self_ns(), 0);
        assert_eq!(
            root.path("sim.sharded;shard0;sim.run;sim.epoch")
                .unwrap()
                .count,
            2
        );
        // Only the coordinator's own phase is a root, so host wallclock is
        // its elapsed time — not the sum of shard CPU time.
        let s = WallclockSummary::from_profile(&root, 0);
        assert_eq!(s.host_wallclock_ns, 2_000);
        // An empty prefix degrades to the flat merge.
        let mut flat = WallProfile::new();
        assert_eq!(flat.merge_nested("", &sample_profile()), 1_000);
        assert_eq!(flat.path("sim.run").unwrap().count, 1);
    }

    #[test]
    fn summary_equality_ignores_nanoseconds() {
        let mut fast = WallProfile::new();
        fast.record("sim.run", 10, 0);
        let mut slow = WallProfile::new();
        slow.record("sim.run", 99_999, 0);
        assert_eq!(
            WallclockSummary::from_profile(&fast, 7),
            WallclockSummary::from_profile(&slow, 7)
        );
        let mut twice = WallProfile::new();
        twice.record("sim.run", 10, 0);
        twice.record("sim.run", 10, 0);
        assert_ne!(
            WallclockSummary::from_profile(&fast, 7),
            WallclockSummary::from_profile(&twice, 7)
        );
        assert_ne!(
            WallclockSummary::from_profile(&fast, 7),
            WallclockSummary::from_profile(&fast, 8)
        );
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let s = WallclockSummary::from_profile(&sample_profile(), 0);
        let mut out = Vec::new();
        s.write_folded(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<_> = text.lines().collect();
        // Zero-self paths (sim.run;sim.epoch_end) are omitted.
        assert_eq!(lines, vec!["sim.run 300", "sim.run;sim.epoch 600"]);
        for line in lines {
            let (stack, value) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            value.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn jsonl_has_one_path_per_line_plus_trailer() {
        let s = WallclockSummary::from_profile(&sample_profile(), 2_000);
        let mut out = Vec::new();
        s.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[1].contains("\"path\":\"sim.run;sim.epoch\""),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains("\"name\":\"sim.epoch\""), "{}", lines[1]);
        assert!(lines[1].contains("\"count\":2"), "{}", lines[1]);
        assert!(
            lines[3].contains("\"accesses_simulated\":2000"),
            "{}",
            lines[3]
        );
    }

    #[test]
    fn to_json_embeds_phases_and_paths() {
        let j = WallclockSummary::from_profile(&sample_profile(), 2_000).to_json();
        assert!(j.contains("\"host_wallclock_ns\":1000"), "{j}");
        assert!(j.contains("\"sim.epoch\":{\"count\":2"), "{j}");
        assert!(j.contains("\"sim.run;sim.epoch\":{\"count\":2"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
