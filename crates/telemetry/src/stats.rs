//! The [`stat_struct!`] macro: one field list generates a plain-`u64`
//! statistics struct plus the boilerplate every simulator layer used to
//! hand-roll — `AddAssign`, aggregation over collections, epoch deltas, and
//! name/value field iteration (used by the per-epoch recorder).

/// Declares a statistics struct of `u64` fields with shared behavior.
///
/// The caller keeps full control of derives and doc comments; the macro
/// additionally implements:
///
/// * `AddAssign` — field-wise sum,
/// * `aggregate(iter)` — fold a collection of borrows into a total,
/// * `diff(&self, &earlier)` — saturating field-wise delta (for per-epoch
///   counters derived from cumulative totals),
/// * `fields(&self)` / `FIELD_NAMES` — name/value iteration for exporters.
///
/// ```
/// aqua_telemetry::stat_struct! {
///     /// Example stats.
///     #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
///     pub struct DemoStats {
///         /// Things seen.
///         pub seen: u64,
///         /// Things dropped.
///         pub dropped: u64,
///     }
/// }
/// let mut a = DemoStats { seen: 2, dropped: 1 };
/// a += DemoStats { seen: 3, dropped: 0 };
/// assert_eq!(a.seen, 5);
/// assert_eq!(a.diff(&DemoStats { seen: 1, dropped: 1 }).seen, 4);
/// assert_eq!(DemoStats::FIELD_NAMES, ["seen", "dropped"]);
/// ```
#[macro_export]
macro_rules! stat_struct {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $( $(#[$fmeta:meta])* pub $field:ident : u64 ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        pub struct $name {
            $( $(#[$fmeta])* pub $field: u64, )+
        }

        impl ::core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                $( self.$field += rhs.$field; )+
            }
        }

        impl $name {
            /// Field names, in declaration order.
            pub const FIELD_NAMES: &'static [&'static str] = &[$(stringify!($field)),+];

            /// Sums a collection of per-unit stats into a total.
            pub fn aggregate<'a, I: IntoIterator<Item = &'a $name>>(iter: I) -> $name {
                let mut total = <$name as ::core::default::Default>::default();
                for s in iter {
                    total += *s;
                }
                total
            }

            /// Field-wise saturating delta `self - earlier` (per-epoch
            /// counters from cumulative snapshots).
            pub fn diff(&self, earlier: &$name) -> $name {
                $name {
                    $( $field: self.$field.saturating_sub(earlier.$field), )+
                }
            }

            /// Iterates `(name, value)` pairs in declaration order.
            pub fn fields(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
                [$( (stringify!($field), self.$field) ),+].into_iter()
            }
        }
    };
}

#[cfg(test)]
mod tests {
    crate::stat_struct! {
        /// Test fixture.
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct FixtureStats {
            /// a.
            pub alpha: u64,
            /// b.
            pub beta: u64,
        }
    }

    #[test]
    fn add_assign_and_aggregate() {
        let a = FixtureStats { alpha: 1, beta: 2 };
        let b = FixtureStats {
            alpha: 10,
            beta: 20,
        };
        let total = FixtureStats::aggregate([&a, &b]);
        assert_eq!(
            total,
            FixtureStats {
                alpha: 11,
                beta: 22
            }
        );
    }

    #[test]
    fn diff_saturates() {
        let late = FixtureStats { alpha: 5, beta: 1 };
        let early = FixtureStats { alpha: 2, beta: 3 };
        assert_eq!(late.diff(&early), FixtureStats { alpha: 3, beta: 0 });
    }

    #[test]
    fn field_iteration_matches_names() {
        let s = FixtureStats { alpha: 7, beta: 9 };
        let pairs: Vec<_> = s.fields().collect();
        assert_eq!(pairs, vec![("alpha", 7), ("beta", 9)]);
        assert_eq!(FixtureStats::FIELD_NAMES, &["alpha", "beta"]);
    }
}
