//! Log-bucketed latency histograms.
//!
//! Bucket `0` holds the value `0`; bucket `i >= 1` holds the half-open
//! power-of-two band `[2^(i-1), 2^i - 1]`. 65 buckets cover the full `u64`
//! range, so recording never saturates. Percentiles interpolate linearly
//! inside the resolved bucket, which bounds the relative error by the
//! bucket width (a factor of two).

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKET_COUNT: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples (latencies in ps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }
}

/// Compact summary of a histogram, embeddable in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Median (linear interpolation within the bucket).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest recorded sample (exact, not bucketed).
    pub max: u64,
}

impl HistogramData {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket holding `value`.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` value range of bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            i => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of all recorded samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts, index 0 first.
    pub fn buckets(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// The `q`-quantile (`q` in `[0, 1]`), or 0 if empty.
    ///
    /// Resolves the bucket containing the rank `ceil(q * count)` sample and
    /// interpolates linearly inside it; the result is clamped to the exact
    /// observed `[min, max]` so tails never exceed real samples.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = (rank - seen) as f64 / n as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return v.clamp(self.min as f64, self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }

    /// Median shorthand for [`HistogramData::percentile`]`(0.50)`.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile shorthand for [`HistogramData::percentile`]`(0.95)`.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile shorthand for [`HistogramData::percentile`]`(0.99)`.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramData) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Condenses the histogram into count/mean/p50/p95/p99/max.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_matches_bounds() {
        assert_eq!(HistogramData::bucket_index(0), 0);
        assert_eq!(HistogramData::bucket_index(1), 1);
        assert_eq!(HistogramData::bucket_index(2), 2);
        assert_eq!(HistogramData::bucket_index(3), 2);
        assert_eq!(HistogramData::bucket_index(4), 3);
        assert_eq!(HistogramData::bucket_index(u64::MAX), 64);
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = HistogramData::bucket_bounds(i);
            assert_eq!(HistogramData::bucket_index(lo), i);
            assert_eq!(HistogramData::bucket_index(hi), i);
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = HistogramData::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0.0);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let mut h = HistogramData::new();
        h.record(1300);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 1300);
        // One sample: every percentile is clamped to the observed range.
        assert_eq!(s.p50, 1300.0);
        assert_eq!(s.p99, 1300.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = HistogramData::new();
        for v in [10u64, 20, 40, 80, 500, 1000, 5000, 100_000] {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max() as f64);
    }

    #[test]
    fn percentile_helpers_on_empty_histogram_are_zero() {
        let h = HistogramData::new();
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p95(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.percentile(1.0), 0.0);
    }

    #[test]
    fn percentile_helpers_on_single_sample_return_it() {
        let mut h = HistogramData::new();
        h.record(777);
        assert_eq!(h.p50(), 777.0);
        assert_eq!(h.p95(), 777.0);
        assert_eq!(h.p99(), 777.0);
    }

    #[test]
    fn percentiles_in_the_saturating_top_bucket_stay_clamped() {
        // Bucket 64 spans [2^63, u64::MAX]; interpolation must not escape
        // the exact observed range even in this widest bucket.
        let mut h = HistogramData::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1u64 << 63);
        assert_eq!(HistogramData::bucket_index(u64::MAX), 64);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(
                ((1u64 << 63) as f64..=u64::MAX as f64).contains(&p),
                "q={q} escaped: {p}"
            );
        }
        assert!(h.p99() >= h.p50());
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = HistogramData::new();
        let mut b = HistogramData::new();
        let mut both = HistogramData::new();
        for v in [1u64, 7, 7, 120] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 999, 65_536] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
