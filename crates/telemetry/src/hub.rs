//! The shared telemetry hub and its metric handles.
//!
//! [`Telemetry`] is the cheap-to-clone handle every simulator layer holds.
//! With the `enabled` cargo feature the handles feed shared atomics, the
//! bounded ring trace, histograms, and the epoch series. With the feature
//! off, [`Telemetry`] is a zero-sized type: [`Counter`] / [`Gauge`] degrade
//! to plain local cells (a bare `u64` increment on the hot path) and every
//! trace/histogram/epoch call compiles to nothing.

use crate::epoch::{EpochRecord, EpochSeries};
use crate::event::EventKind;
use crate::span::Span;
use crate::summary::TelemetrySummary;

#[cfg(feature = "enabled")]
use crate::wallclock::{WallProfile, WallclockSummary};

#[cfg(feature = "enabled")]
use crate::event::Event;
#[cfg(feature = "enabled")]
use crate::hist::HistogramData;
#[cfg(feature = "enabled")]
use crate::ring::RingBuffer;
#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};

/// Construction-time options for a telemetry hub.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Maximum events retained by the ring trace (oldest dropped first).
    pub trace_capacity: usize,
    /// Whether high-volume `Activate` events enter the trace at all.
    pub trace_activates: bool,
    /// Maximum completed spans retained (oldest dropped first).
    pub span_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 65_536,
            trace_activates: false,
            span_capacity: 65_536,
        }
    }
}

// ---------------------------------------------------------------------------
// Feature ON: shared hub.
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
struct Inner {
    cfg: TelemetryConfig,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Mutex<HistogramData>>>>,
    trace: Mutex<RingBuffer<Event>>,
    epochs: Mutex<EpochSeries>,
    spans: Mutex<SpanTrack>,
    wall: Mutex<WallTrack>,
    /// Token of the armed speculative span (0 = none). One slot per hub:
    /// arming is three relaxed atomic ops, so the quiet path of a
    /// speculative root costs no lock at all (see
    /// [`Telemetry::span_speculate`]).
    spec_token: AtomicU64,
    /// Open-span id of the armed speculative span once a child span
    /// materialized it (0 = still unmaterialized).
    spec_id: AtomicU64,
    /// Token source for speculative spans.
    spec_next: AtomicU64,
}

#[cfg(feature = "enabled")]
impl Inner {
    /// Materializes the armed speculative span, if any, under the spans
    /// lock the caller already holds: assigns it the next span id *before*
    /// the caller takes one (preserving the parent-before-child id order an
    /// eager `span_start` would have produced) and pushes it as the
    /// innermost open span, so the caller's span nests under it.
    fn materialize_speculative(&self, sp: &mut SpanTrack) {
        if self.spec_token.load(Ordering::Relaxed) == 0 || self.spec_id.load(Ordering::Relaxed) != 0
        {
            return;
        }
        let id = sp.next_id;
        sp.next_id += 1;
        let parent = sp.stack.last().map(|o| o.id);
        if let Some(top) = sp.stack.last_mut() {
            top.used = true;
        }
        sp.stack.push(OpenSpan {
            id,
            parent,
            used: false,
        });
        self.spec_id.store(id, Ordering::Relaxed);
    }
}

/// A wallclock phase currently open on the hub's phase stack.
#[cfg(feature = "enabled")]
struct OpenPhase {
    token: u64,
    name: &'static str,
    start: std::time::Instant,
    /// Host time already attributed to child phases closed under this one.
    child_ns: u64,
}

/// All mutable wallclock-profiling state, behind one lock so open/close
/// stay atomic. Unlike [`SpanTrack`] this measures *host* nanoseconds via
/// `Instant`, not simulated picoseconds.
#[cfg(feature = "enabled")]
struct WallTrack {
    profile: WallProfile,
    stack: Vec<OpenPhase>,
    next_token: u64,
}

#[cfg(feature = "enabled")]
impl WallTrack {
    fn new() -> Self {
        WallTrack {
            profile: WallProfile::new(),
            stack: Vec::new(),
            next_token: 1,
        }
    }

    /// Closes the open phase identified by `token`: measures its elapsed
    /// host time, attributes it to the parent's child time, and records it
    /// under its `;`-joined stack path. Phases normally close LIFO;
    /// searching from the top tolerates out-of-order drops.
    fn close(&mut self, token: u64) {
        let Some(idx) = self.stack.iter().rposition(|o| o.token == token) else {
            return;
        };
        let elapsed = self.stack[idx].start.elapsed().as_nanos() as u64;
        let mut path = String::new();
        for (k, open) in self.stack[..=idx].iter().enumerate() {
            if k > 0 {
                path.push(';');
            }
            path.push_str(open.name);
        }
        let child_ns = self.stack[idx].child_ns;
        if idx > 0 {
            self.stack[idx - 1].child_ns += elapsed;
        }
        self.stack.remove(idx);
        self.profile.record(&path, elapsed, child_ns);
    }
}

/// A span currently open on the hub's causal stack.
#[cfg(feature = "enabled")]
struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    /// Whether any child span started while this one was innermost — the
    /// signal [`ActiveSpan::end_if_used`] keys on, letting the simulator
    /// open a speculative root around every mitigation consultation and
    /// commit it only when the engine actually did something.
    used: bool,
}

/// All mutable span state, behind one lock so begin/end stay atomic.
#[cfg(feature = "enabled")]
struct SpanTrack {
    ring: RingBuffer<Span>,
    stack: Vec<OpenSpan>,
    next_id: u64,
    /// Per-name duration histograms over committed spans.
    stats: BTreeMap<&'static str, HistogramData>,
}

#[cfg(feature = "enabled")]
impl SpanTrack {
    fn new(capacity: usize) -> Self {
        SpanTrack {
            ring: RingBuffer::new(capacity),
            stack: Vec::new(),
            next_id: 1,
            stats: BTreeMap::new(),
        }
    }

    /// Removes the innermost open entry with `id` (spans normally close
    /// LIFO; searching from the top tolerates out-of-order ends).
    fn remove_open(&mut self, id: u64) -> Option<OpenSpan> {
        let idx = self.stack.iter().rposition(|o| o.id == id)?;
        Some(self.stack.remove(idx))
    }
}

/// Cheap-to-clone handle to the telemetry hub (or to nothing, when
/// constructed via [`Telemetry::disabled`] or with the feature off).
#[cfg(feature = "enabled")]
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

#[cfg(feature = "enabled")]
impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

#[cfg(feature = "enabled")]
impl Telemetry {
    /// Creates an active hub.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                cfg,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                trace: Mutex::new(RingBuffer::new(cfg.trace_capacity)),
                epochs: Mutex::new(EpochSeries::new()),
                spans: Mutex::new(SpanTrack::new(cfg.span_capacity)),
                wall: Mutex::new(WallTrack::new()),
                spec_token: AtomicU64::new(0),
                spec_id: AtomicU64::new(0),
                spec_next: AtomicU64::new(1),
            })),
        }
    }

    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A fresh, empty hub with this hub's configuration (disabled handles
    /// fork into disabled handles). The parallel experiment runner gives
    /// each job a fork of the caller's hub so that concurrently running
    /// simulations never interleave writes, then [`Telemetry::merge_from`]s
    /// the forks back in deterministic job order.
    pub fn fork(&self) -> Telemetry {
        match &self.inner {
            Some(i) => Telemetry::new(i.cfg),
            None => Telemetry::disabled(),
        }
    }

    /// Absorbs everything `other` recorded into this hub.
    ///
    /// Counters add, gauges take `other`'s value, histograms merge
    /// bucket-wise, the epoch series appends `other`'s records after this
    /// hub's own, and `other`'s retained trace events are replayed into this
    /// hub's ring (events `other` already dropped stay counted as dropped).
    /// Merging per-job hubs in job-index order therefore yields the same
    /// aggregate regardless of how the jobs were scheduled across threads.
    ///
    /// A no-op when either handle is disabled or both refer to the same hub.
    pub fn merge_from(&self, other: &Telemetry) {
        self.merge_impl(other, None);
    }

    /// Like [`Telemetry::merge_from`], but parks `other`'s completed
    /// wallclock phases *under* `wall_prefix` instead of merging them at the
    /// root.
    ///
    /// Each of `other`'s paths lands at `{wall_prefix};{path}`, a synthetic
    /// all-child occurrence is recorded at `wall_prefix` itself, and the
    /// absorbed root total is credited as child time to the phase currently
    /// innermost on this hub's stack. The sharded simulation runner merges
    /// shard hubs with prefix `sim.sharded;shard{i}` while its own
    /// `sim.sharded` phase is open, so per-shard host time nests under the
    /// coordinator instead of inflating the root wallclock — on a parallel
    /// host the coordinator's real elapsed time is then *less* than the sum
    /// of its children, which is exactly the speedup signal.
    pub fn merge_from_prefixed(&self, other: &Telemetry, wall_prefix: &str) {
        self.merge_impl(other, Some(wall_prefix));
    }

    fn merge_impl(&self, other: &Telemetry, wall_prefix: Option<&str>) {
        let (Some(a), Some(b)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(a, b) {
            return;
        }
        for (&name, c) in b.counters.lock().unwrap().iter() {
            self.counter(name).add(c.load(Ordering::Relaxed));
        }
        for (&name, g) in b.gauges.lock().unwrap().iter() {
            self.gauge(name)
                .set(f64::from_bits(g.load(Ordering::Relaxed)));
        }
        for (&name, h) in b.histograms.lock().unwrap().iter() {
            let data = h.lock().unwrap().clone();
            if let Some(mine) = self.histogram(name).0 {
                mine.lock().unwrap().merge(&data);
            }
        }
        a.epochs
            .lock()
            .unwrap()
            .merge_from(&b.epochs.lock().unwrap());
        a.trace.lock().unwrap().merge_from(&b.trace.lock().unwrap());
        let mut mine = a.spans.lock().unwrap();
        let theirs = b.spans.lock().unwrap();
        // Offset the other hub's span ids past every id this hub has ever
        // issued, so ids (and parent links) stay unique after the merge and
        // the result depends only on merge order, never on scheduling.
        let base = mine.next_id;
        mine.ring.merge_from_with(&theirs.ring, |s| Span {
            id: base + s.id,
            parent: s.parent.map(|p| base + p),
            ..*s
        });
        mine.next_id = base + theirs.next_id;
        for (&name, data) in theirs.stats.iter() {
            mine.stats.entry(name).or_default().merge(data);
        }
        drop(mine);
        drop(theirs);
        // Completed wallclock phases merge path-wise (counts add
        // deterministically); phases still open on either stack are not
        // transferred.
        let theirs_wall = b.wall.lock().unwrap();
        let mut w = a.wall.lock().unwrap();
        match wall_prefix {
            None | Some("") => w.profile.merge(&theirs_wall.profile),
            Some(prefix) => {
                let root_total = w.profile.merge_nested(prefix, &theirs_wall.profile);
                if let Some(top) = w.stack.last_mut() {
                    top.child_ns += root_total;
                }
            }
        }
    }

    /// Whether this handle feeds a live hub.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-fetches) a named counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.counters
                    .lock()
                    .unwrap()
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Registers (or re-fetches) a named gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.gauges
                    .lock()
                    .unwrap()
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
            )
        }))
    }

    /// Registers (or re-fetches) a named histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.histograms
                    .lock()
                    .unwrap()
                    .entry(name)
                    .or_insert_with(|| Arc::new(Mutex::new(HistogramData::new()))),
            )
        }))
    }

    /// Pushes a typed event into the ring trace.
    ///
    /// `Activate` events are filtered out unless
    /// [`TelemetryConfig::trace_activates`] was set.
    pub fn record(&self, ts_ps: u64, kind: EventKind) {
        if let Some(i) = &self.inner {
            if matches!(kind, EventKind::Activate { .. }) && !i.cfg.trace_activates {
                return;
            }
            i.trace.lock().unwrap().push(Event { ts_ps, kind });
        }
    }

    /// Opens a span named `name` starting at simulated time `start_ps`.
    ///
    /// The span's parent is whatever span is innermost on this hub's causal
    /// stack at call time; the returned guard closes it via
    /// [`ActiveSpan::end`] (commit), [`ActiveSpan::cancel`] (discard), or
    /// [`ActiveSpan::end_if_used`] (commit only if a child attached).
    /// Dropping the guard without ending it cancels the span, so early
    /// returns never wedge the stack.
    pub fn span_start(&self, name: &'static str, start_ps: u64) -> ActiveSpan {
        let Some(i) = &self.inner else {
            return ActiveSpan {
                inner: None,
                id: 0,
                name,
                start_ps,
            };
        };
        let mut sp = i.spans.lock().unwrap();
        i.materialize_speculative(&mut sp);
        let id = sp.next_id;
        sp.next_id += 1;
        let parent = sp.stack.last().map(|o| o.id);
        if let Some(top) = sp.stack.last_mut() {
            top.used = true;
        }
        sp.stack.push(OpenSpan {
            id,
            parent,
            used: false,
        });
        ActiveSpan {
            inner: Some(Arc::clone(i)),
            id,
            name,
            start_ps,
        }
    }

    /// Opens a *speculative* span: three relaxed atomic stores, no lock.
    ///
    /// The span stays virtual until a child span attaches (via
    /// [`Telemetry::span_start`] or [`Telemetry::span_record`]), at which
    /// point it materializes on the causal stack — with its id assigned
    /// before the child's, exactly as if it had been opened eagerly. If no
    /// child ever attaches, [`SpeculativeSpan::end_if_used`] discards it
    /// without ever touching the spans lock, which is why the simulator
    /// wraps every mitigation consultation in one of these: the common
    /// quiet path (engine returns no actions) pays no synchronization.
    ///
    /// Only one speculative span can be armed per hub at a time; opening a
    /// second before closing the first discards the first (closing a
    /// superseded guard is a no-op). This mirrors the hub's single causal
    /// stack: speculative spans are for serial hot loops, not concurrency.
    pub fn span_speculate(&self, name: &'static str, start_ps: u64) -> SpeculativeSpan {
        let Some(i) = &self.inner else {
            return SpeculativeSpan {
                inner: None,
                token: 0,
                name,
                start_ps,
            };
        };
        let token = i.spec_next.fetch_add(1, Ordering::Relaxed);
        let stale = i.spec_id.swap(0, Ordering::Relaxed);
        if stale != 0 {
            // The previously armed speculative span materialized but was
            // never closed. Drop it from the causal stack now so it cannot
            // corrupt the parentage of everything opened after it.
            i.spans.lock().unwrap().remove_open(stale);
        }
        i.spec_token.store(token, Ordering::Relaxed);
        SpeculativeSpan {
            inner: Some(Arc::clone(i)),
            token,
            name,
            start_ps,
        }
    }

    /// Records an already-finished leaf span in a single lock acquisition.
    ///
    /// Equivalent to `span_start(name, start_ps).end(end_ps)` for spans
    /// that never take children: the recorded span's parent is the innermost
    /// open span and the enclosing span is marked used. Hot paths that
    /// bracket an interval already known to be over (queue waits, bank
    /// blocks, per-action migration windows) use this to halve their lock
    /// traffic versus the open/close guard pair.
    pub fn span_record(&self, name: &'static str, start_ps: u64, end_ps: u64) {
        let Some(i) = &self.inner else {
            return;
        };
        let mut sp = i.spans.lock().unwrap();
        i.materialize_speculative(&mut sp);
        let id = sp.next_id;
        sp.next_id += 1;
        let parent = sp.stack.last().map(|o| o.id);
        if let Some(top) = sp.stack.last_mut() {
            top.used = true;
        }
        let span = Span {
            id,
            parent,
            name,
            start_ps,
            end_ps: end_ps.max(start_ps),
        };
        sp.stats.entry(name).or_default().record(span.duration_ps());
        sp.ring.push(span);
    }

    /// Opens a host-wallclock phase named `name` and returns the guard that
    /// closes it (on drop or via [`PhaseGuard::finish`]).
    ///
    /// Phases nest on a per-hub stack: time measured for a phase is
    /// attributed to the enclosing phase's child time, and the completed
    /// occurrence is recorded under its `;`-joined stack path. Phases are
    /// meant for *coarse* units of work (an epoch, a refresh drain, a bench
    /// job batch) — each open/close takes a lock and reads `Instant`, so
    /// never put one on a per-access path. On a disabled handle this reads
    /// no clock and takes no lock.
    pub fn phase(&self, name: &'static str) -> PhaseGuard {
        let Some(i) = &self.inner else {
            return PhaseGuard {
                inner: None,
                token: 0,
            };
        };
        let mut w = i.wall.lock().unwrap();
        let token = w.next_token;
        w.next_token += 1;
        w.stack.push(OpenPhase {
            token,
            name,
            start: std::time::Instant::now(),
            child_ns: 0,
        });
        PhaseGuard {
            inner: Some(Arc::clone(i)),
            token,
        }
    }

    /// Clones the retained completed spans, oldest first (empty when
    /// disabled).
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .as_ref()
            .map(|i| i.spans.lock().unwrap().ring.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Appends one epoch sample to the time series.
    pub fn push_epoch(&self, record: EpochRecord) {
        if let Some(i) = &self.inner {
            i.epochs.lock().unwrap().push(record);
        }
    }

    /// Clones the recorded epoch series (empty when disabled).
    pub fn epochs(&self) -> EpochSeries {
        self.inner
            .as_ref()
            .map(|i| i.epochs.lock().unwrap().clone())
            .unwrap_or_default()
    }

    /// Clones the retained trace events, oldest first (empty when disabled).
    pub fn trace_events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|i| i.trace.lock().unwrap().iter().copied().collect())
            .unwrap_or_default()
    }

    /// Condenses everything recorded so far (None when disabled).
    pub fn summary(&self) -> Option<TelemetrySummary> {
        let i = self.inner.as_ref()?;
        let counters: Vec<(String, u64)> = i
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = i
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.to_string(), f64::from_bits(g.load(Ordering::Relaxed))))
            .collect();
        // Span duration stats fold in as `span.<name>` histograms so every
        // consumer (reports, JSONL, the regression gate) reads one table.
        let mut hists: BTreeMap<String, crate::hist::HistogramSummary> = i
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.to_string(), h.lock().unwrap().summary()))
            .collect();
        let sp = i.spans.lock().unwrap();
        for (name, data) in sp.stats.iter() {
            hists.insert(format!("span.{name}"), data.summary());
        }
        let wall = i.wall.lock().unwrap();
        let wallclock = if wall.profile.is_empty() {
            None
        } else {
            let accesses = counters
                .iter()
                .find(|entry: &&(String, u64)| entry.0 == "sim.requests")
                .map(|entry| entry.1)
                .unwrap_or(0);
            Some(WallclockSummary::from_profile(&wall.profile, accesses))
        };
        let trace = i.trace.lock().unwrap();
        Some(TelemetrySummary {
            counters,
            gauges,
            histograms: hists.into_iter().collect(),
            events_recorded: trace.offered(),
            events_dropped: trace.dropped(),
            epochs_recorded: i.epochs.lock().unwrap().len() as u64,
            spans_recorded: sp.ring.offered(),
            spans_dropped: sp.ring.dropped(),
            wallclock,
        })
    }

    /// Full bucket data of every registered histogram, sorted by name
    /// (empty when disabled). Each entry is copied through the shared
    /// [`Histogram::snapshot`] helper, one registry lock per histogram.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramData)> {
        let Some(i) = self.inner.as_ref() else {
            return Vec::new();
        };
        i.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.to_string(), Histogram(Some(Arc::clone(h))).snapshot()))
            .collect()
    }
}

/// Monotone counter handle (shared atomic when live).
#[cfg(feature = "enabled")]
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

#[cfg(feature = "enabled")]
impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for detached handles).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Last-value gauge handle (shared atomic `f64` bits when live).
#[cfg(feature = "enabled")]
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

#[cfg(feature = "enabled")]
impl Gauge {
    /// Overwrites the gauge value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0 for detached handles).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }
}

/// Histogram recording handle (shared when live).
#[cfg(feature = "enabled")]
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<Mutex<HistogramData>>>);

#[cfg(feature = "enabled")]
impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().record(v);
        }
    }

    /// Merges a locally accumulated batch in one lock acquisition.
    ///
    /// Hot loops record into a private [`HistogramData`] and flush it here
    /// at coarse boundaries (epoch end), keeping the per-sample path free of
    /// synchronization.
    pub fn merge(&self, batch: &HistogramData) {
        if batch.count() == 0 {
            return;
        }
        if let Some(h) = &self.0 {
            h.lock().unwrap().merge(batch);
        }
    }

    /// The `q`-quantile of recorded samples (0 for detached handles).
    pub fn percentile(&self, q: f64) -> f64 {
        self.0
            .as_ref()
            .map(|h| h.lock().unwrap().percentile(q))
            .unwrap_or(0.0)
    }

    /// Median shorthand for [`Histogram::percentile`]`(0.50)`.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 99th-percentile shorthand for [`Histogram::percentile`]`(0.99)`.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// Shared [`Histogram`] surface. Exactly one `Histogram` type exists per
/// compilation (shared handle with the `enabled` feature, ZST without), so
/// this single ungated impl serves both modes — snapshotting logic lives
/// here once instead of in two near-identical gated copies.
impl Histogram {
    /// Snapshot of the underlying data (empty for detached handles, and
    /// always empty with the feature off).
    pub fn snapshot(&self) -> crate::hist::HistogramData {
        #[cfg(feature = "enabled")]
        {
            self.0
                .as_ref()
                .map(|h| h.lock().unwrap().clone())
                .unwrap_or_default()
        }
        #[cfg(not(feature = "enabled"))]
        {
            crate::hist::HistogramData::new()
        }
    }
}

/// Guard for a span opened with [`Telemetry::span_start`].
///
/// Exactly one of [`ActiveSpan::end`], [`ActiveSpan::end_if_used`], or
/// [`ActiveSpan::cancel`] should close it; dropping the guard unclosed is
/// equivalent to `cancel` (nothing is recorded).
#[cfg(feature = "enabled")]
#[must_use = "bind the span and close it with end()/end_if_used()/cancel()"]
pub struct ActiveSpan {
    inner: Option<Arc<Inner>>,
    id: u64,
    name: &'static str,
    start_ps: u64,
}

#[cfg(feature = "enabled")]
impl std::fmt::Debug for ActiveSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSpan")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("start_ps", &self.start_ps)
            .finish()
    }
}

#[cfg(feature = "enabled")]
impl ActiveSpan {
    /// Hub-unique id of this span (0 when the hub is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Commits the span, ending at `end_ps` (clamped to the start time).
    pub fn end(mut self, end_ps: u64) {
        self.close(Some(end_ps), false);
    }

    /// Commits the span only if a child span attached while it was open;
    /// discards it otherwise.
    pub fn end_if_used(mut self, end_ps: u64) {
        self.close(Some(end_ps), true);
    }

    /// Discards the span without recording anything.
    pub fn cancel(mut self) {
        self.close(None, false);
    }

    fn close(&mut self, end_ps: Option<u64>, require_used: bool) {
        let Some(i) = self.inner.take() else {
            return;
        };
        let mut sp = i.spans.lock().unwrap();
        let Some(open) = sp.remove_open(self.id) else {
            return;
        };
        let Some(end_ps) = end_ps else {
            return;
        };
        if require_used && !open.used {
            return;
        }
        let span = Span {
            id: self.id,
            parent: open.parent,
            name: self.name,
            start_ps: self.start_ps,
            end_ps: end_ps.max(self.start_ps),
        };
        sp.stats
            .entry(self.name)
            .or_default()
            .record(span.duration_ps());
        sp.ring.push(span);
    }
}

#[cfg(feature = "enabled")]
impl Drop for ActiveSpan {
    fn drop(&mut self) {
        self.close(None, false);
    }
}

/// Guard for a span opened with [`Telemetry::span_speculate`].
///
/// Closing mirrors [`ActiveSpan`]: [`SpeculativeSpan::end`] commits,
/// [`SpeculativeSpan::end_if_used`] commits only if a child attached (and
/// for a span that never materialized this touches no lock at all),
/// [`SpeculativeSpan::cancel`] and dropping the guard discard it.
#[cfg(feature = "enabled")]
#[must_use = "bind the span and close it with end()/end_if_used()/cancel()"]
pub struct SpeculativeSpan {
    inner: Option<Arc<Inner>>,
    token: u64,
    name: &'static str,
    start_ps: u64,
}

#[cfg(feature = "enabled")]
impl std::fmt::Debug for SpeculativeSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeculativeSpan")
            .field("token", &self.token)
            .field("name", &self.name)
            .field("start_ps", &self.start_ps)
            .finish()
    }
}

#[cfg(feature = "enabled")]
impl SpeculativeSpan {
    /// Commits the span, ending at `end_ps` (clamped to the start time).
    /// If it never materialized it commits as a leaf, taking the lock once.
    pub fn end(mut self, end_ps: u64) {
        self.close(Some(end_ps), false);
    }

    /// Commits the span only if a child span attached while it was armed;
    /// discards it otherwise — without locking, which makes this the
    /// free-when-quiet closer hot loops pair with
    /// [`Telemetry::span_speculate`].
    pub fn end_if_used(mut self, end_ps: u64) {
        self.close(Some(end_ps), true);
    }

    /// Discards the span without recording anything.
    pub fn cancel(mut self) {
        self.close(None, false);
    }

    fn close(&mut self, end_ps: Option<u64>, require_used: bool) {
        let Some(i) = self.inner.take() else {
            return;
        };
        // Disarm the slot — but only if it is still ours. A later
        // span_speculate supersedes this guard (and already cleaned up any
        // materialized residue), so a failed exchange means no-op.
        if i.spec_token
            .compare_exchange(self.token, 0, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let id = i.spec_id.swap(0, Ordering::Relaxed);
        if id == 0 {
            // Never materialized: nothing is on the stack. A conditional
            // close or a cancel discards for free; an unconditional end
            // commits as a leaf now (equivalent to span_record).
            if !require_used {
                if let Some(end_ps) = end_ps {
                    let t = Telemetry {
                        inner: Some(Arc::clone(&i)),
                    };
                    t.span_record(self.name, self.start_ps, end_ps);
                }
            }
            return;
        }
        // Materialized, which implies a child attached ("used"), so both
        // end() and end_if_used() commit; only cancel discards.
        let mut sp = i.spans.lock().unwrap();
        let Some(open) = sp.remove_open(id) else {
            return;
        };
        let Some(end_ps) = end_ps else {
            return;
        };
        let span = Span {
            id,
            parent: open.parent,
            name: self.name,
            start_ps: self.start_ps,
            end_ps: end_ps.max(self.start_ps),
        };
        sp.stats
            .entry(self.name)
            .or_default()
            .record(span.duration_ps());
        sp.ring.push(span);
    }
}

#[cfg(feature = "enabled")]
impl Drop for SpeculativeSpan {
    fn drop(&mut self) {
        self.close(None, false);
    }
}

/// Guard for a host-wallclock phase opened with [`Telemetry::phase`].
///
/// Dropping the guard closes the phase and records its elapsed host time;
/// [`PhaseGuard::finish`] is the explicit-close spelling for call sites
/// that reopen a phase in a loop. For a disabled handle the guard holds
/// nothing and closing it is a no-op.
#[cfg(feature = "enabled")]
#[must_use = "bind the guard; the phase is timed until it drops"]
pub struct PhaseGuard {
    inner: Option<Arc<Inner>>,
    token: u64,
}

#[cfg(feature = "enabled")]
impl std::fmt::Debug for PhaseGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseGuard")
            .field("enabled", &self.inner.is_some())
            .field("token", &self.token)
            .finish()
    }
}

#[cfg(feature = "enabled")]
impl PhaseGuard {
    /// Closes the phase now (equivalent to dropping the guard).
    #[inline]
    pub fn finish(self) {}
}

#[cfg(feature = "enabled")]
impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            i.wall.lock().unwrap().close(self.token);
        }
    }
}

// ---------------------------------------------------------------------------
// Feature OFF: zero-cost stand-ins with the same API.
// ---------------------------------------------------------------------------

/// Zero-sized stand-in for the telemetry hub (feature `enabled` off).
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Debug, Default)]
pub struct Telemetry;

#[cfg(not(feature = "enabled"))]
impl Telemetry {
    /// Accepts the config and discards it.
    pub fn new(_cfg: TelemetryConfig) -> Self {
        Telemetry
    }

    /// Same as [`Telemetry::new`] in this mode: records nothing.
    pub fn disabled() -> Self {
        Telemetry
    }

    /// Forks into another zero-sized handle.
    pub fn fork(&self) -> Telemetry {
        Telemetry
    }

    /// No-op.
    pub fn merge_from(&self, _other: &Telemetry) {}

    /// No-op.
    pub fn merge_from_prefixed(&self, _other: &Telemetry, _wall_prefix: &str) {}

    /// Always `false` in this mode.
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Returns a plain local counter cell.
    pub fn counter(&self, _name: &'static str) -> Counter {
        Counter::default()
    }

    /// Returns a plain local gauge cell.
    pub fn gauge(&self, _name: &'static str) -> Gauge {
        Gauge::default()
    }

    /// Returns a no-op histogram handle.
    pub fn histogram(&self, _name: &'static str) -> Histogram {
        Histogram
    }

    /// No-op.
    #[inline]
    pub fn record(&self, _ts_ps: u64, _kind: EventKind) {}

    /// Returns an inert span guard.
    #[inline]
    pub fn span_start(&self, _name: &'static str, _start_ps: u64) -> ActiveSpan {
        ActiveSpan
    }

    /// Returns an inert speculative span guard.
    #[inline]
    pub fn span_speculate(&self, _name: &'static str, _start_ps: u64) -> SpeculativeSpan {
        SpeculativeSpan
    }

    /// No-op.
    #[inline]
    pub fn span_record(&self, _name: &'static str, _start_ps: u64, _end_ps: u64) {}

    /// Returns an inert phase guard: no clock read, no lock, zero size.
    #[inline]
    pub fn phase(&self, _name: &'static str) -> PhaseGuard {
        PhaseGuard
    }

    /// Always empty in this mode.
    pub fn spans(&self) -> Vec<Span> {
        Vec::new()
    }

    /// No-op.
    #[inline]
    pub fn push_epoch(&self, _record: EpochRecord) {}

    /// Always empty in this mode.
    pub fn epochs(&self) -> EpochSeries {
        EpochSeries::new()
    }

    /// Always empty in this mode.
    pub fn trace_events(&self) -> Vec<crate::event::Event> {
        Vec::new()
    }

    /// Always `None` in this mode.
    pub fn summary(&self) -> Option<TelemetrySummary> {
        None
    }

    /// Always empty in this mode.
    pub fn histogram_snapshots(&self) -> Vec<(String, crate::hist::HistogramData)> {
        Vec::new()
    }
}

/// Plain local counter cell: a bare `u64` increment (feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Debug, Default)]
pub struct Counter(std::cell::Cell<u64>);

#[cfg(not(feature = "enabled"))]
impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.set(self.0.get().wrapping_add(1));
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current (handle-local) value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Plain local gauge cell (feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Debug, Default)]
pub struct Gauge(std::cell::Cell<f64>);

#[cfg(not(feature = "enabled"))]
impl Gauge {
    /// Overwrites the (handle-local) value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current (handle-local) value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// No-op histogram handle (feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Debug, Default)]
pub struct Histogram;

#[cfg(not(feature = "enabled"))]
impl Histogram {
    /// No-op.
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// No-op.
    #[inline]
    pub fn merge(&self, _batch: &crate::hist::HistogramData) {}

    /// Always 0 in this mode.
    pub fn percentile(&self, _q: f64) -> f64 {
        0.0
    }

    /// Always 0 in this mode.
    pub fn p50(&self) -> f64 {
        0.0
    }

    /// Always 0 in this mode.
    pub fn p99(&self) -> f64 {
        0.0
    }
}

/// Inert span guard (feature off): every close is a no-op.
#[cfg(not(feature = "enabled"))]
#[must_use = "bind the span and close it with end()/end_if_used()/cancel()"]
#[derive(Debug)]
pub struct ActiveSpan;

/// Inert phase guard (feature off): a zero-sized type with no `Drop`, so
/// instrumented call sites compile to nothing — in particular, no
/// `Instant` is ever read.
#[cfg(not(feature = "enabled"))]
#[must_use = "bind the guard; the phase is timed until it drops"]
#[derive(Debug)]
pub struct PhaseGuard;

#[cfg(not(feature = "enabled"))]
impl PhaseGuard {
    /// No-op.
    #[inline]
    pub fn finish(self) {}
}

#[cfg(not(feature = "enabled"))]
impl ActiveSpan {
    /// Always 0 in this mode.
    pub fn id(&self) -> u64 {
        0
    }

    /// No-op.
    #[inline]
    pub fn end(self, _end_ps: u64) {}

    /// No-op.
    #[inline]
    pub fn end_if_used(self, _end_ps: u64) {}

    /// No-op.
    #[inline]
    pub fn cancel(self) {}
}

/// Inert speculative span guard (feature off): a zero-sized type with no
/// `Drop`, so the quiet path compiles to nothing.
#[cfg(not(feature = "enabled"))]
#[must_use = "bind the span and close it with end()/end_if_used()/cancel()"]
#[derive(Debug)]
pub struct SpeculativeSpan;

#[cfg(not(feature = "enabled"))]
impl SpeculativeSpan {
    /// No-op.
    #[inline]
    pub fn end(self, _end_ps: u64) {}

    /// No-op.
    #[inline]
    pub fn end_if_used(self, _end_ps: u64) {}

    /// No-op.
    #[inline]
    pub fn cancel(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn counters_count_in_both_modes() {
        let t = Telemetry::new(TelemetryConfig::default());
        let c = t.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauges_hold_last_value() {
        let t = Telemetry::new(TelemetryConfig::default());
        let g = t.gauge("g");
        g.set(0.5);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn named_handles_share_state() {
        let t = Telemetry::new(TelemetryConfig::default());
        let a = t.counter("shared");
        let b = t.counter("shared");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let s = t.summary().unwrap();
        assert_eq!(s.counter("shared"), Some(2));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn activates_are_filtered_by_default() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.record(10, EventKind::Activate { bank: 0, row: 1 });
        t.record(20, EventKind::EpochRollover { epoch: 0 });
        assert_eq!(t.trace_events().len(), 1);

        let t2 = Telemetry::new(TelemetryConfig {
            trace_activates: true,
            ..Default::default()
        });
        t2.record(10, EventKind::Activate { bank: 0, row: 1 });
        assert_eq!(t2.trace_events().len(), 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_aggregates_every_metric_kind() {
        use crate::epoch::EpochRecord;

        let parent = Telemetry::new(TelemetryConfig::default());
        parent.counter("c").add(3);
        parent.gauge("g").set(0.25);
        parent.histogram("h").record(10);
        parent.push_epoch(EpochRecord {
            epoch: 0,
            ..Default::default()
        });
        parent.record(1, EventKind::EpochRollover { epoch: 0 });

        let job = parent.fork();
        assert!(job.is_enabled());
        job.counter("c").add(4);
        job.counter("job_only").inc();
        job.gauge("g").set(0.75);
        job.histogram("h").record(20);
        job.push_epoch(EpochRecord {
            epoch: 1,
            ..Default::default()
        });
        job.record(2, EventKind::EpochRollover { epoch: 1 });

        parent.merge_from(&job);
        let s = parent.summary().unwrap();
        assert_eq!(s.counter("c"), Some(7));
        assert_eq!(s.counter("job_only"), Some(1));
        assert_eq!(s.gauge("g"), Some(0.75));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 20);
        assert_eq!(s.epochs_recorded, 2);
        assert_eq!(s.events_recorded, 2);
        let epochs: Vec<u64> = parent.epochs().records().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![0, 1]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_nest_and_record_duration_stats() {
        let t = Telemetry::new(TelemetryConfig::default());
        let root = t.span_start("root", 100);
        let child = t.span_start("child", 120);
        child.end(150);
        root.end(200);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        // Children commit before their parent (end order), parent links hold.
        assert_eq!(spans[0].name, "child");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].name, "root");
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[0].duration_ps(), 30);
        let s = t.summary().unwrap();
        assert_eq!(s.spans_recorded, 2);
        assert_eq!(s.histogram("span.root").unwrap().count, 1);
        assert_eq!(s.histogram("span.child").unwrap().max, 30);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn end_if_used_commits_only_with_children() {
        let t = Telemetry::new(TelemetryConfig::default());
        let unused = t.span_start("speculative", 0);
        unused.end_if_used(10);
        assert!(t.spans().is_empty());

        let used = t.span_start("speculative", 20);
        let child = t.span_start("work", 21);
        child.end(25);
        used.end_if_used(30);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "speculative");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn cancel_and_drop_record_nothing() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.span_start("a", 0).cancel();
        {
            let _dropped = t.span_start("b", 0);
        }
        assert!(t.spans().is_empty());
        // The stack is clean: a new root has no parent.
        let root = t.span_start("c", 5);
        root.end(9);
        assert_eq!(t.spans()[0].parent, None);
        assert_eq!(t.summary().unwrap().spans_recorded, 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn end_clamps_backwards_time() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.span_start("x", 100).end(40);
        let s = t.spans()[0];
        assert_eq!((s.start_ps, s.end_ps), (100, 100));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_remaps_span_ids_and_parents() {
        let parent = Telemetry::new(TelemetryConfig::default());
        let r = parent.span_start("r", 0);
        r.end(1);
        let job = parent.fork();
        let root = job.span_start("jr", 10);
        let child = job.span_start("jc", 11);
        child.end(12);
        root.end(20);
        parent.merge_from(&job);
        let spans = parent.spans();
        assert_eq!(spans.len(), 3);
        let mut ids = std::collections::BTreeSet::new();
        for s in &spans {
            assert!(ids.insert(s.id), "duplicate span id after merge");
        }
        let jc = spans.iter().find(|s| s.name == "jc").unwrap();
        let jr = spans.iter().find(|s| s.name == "jr").unwrap();
        assert_eq!(jc.parent, Some(jr.id));
        let s = parent.summary().unwrap();
        assert_eq!(s.spans_recorded, 3);
        assert_eq!(s.histogram("span.jc").unwrap().count, 1);
        // A span opened after the merge still gets a fresh id.
        let post = parent.span_start("post", 30);
        let post_id = post.id();
        post.end(31);
        assert!(!ids.contains(&post_id));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn zero_capacity_span_ring_never_panics() {
        let t = Telemetry::new(TelemetryConfig {
            span_capacity: 0,
            ..Default::default()
        });
        let a = t.span_start("a", 0);
        let b = t.span_start("b", 1);
        b.end(2);
        a.end(3);
        assert!(t.spans().is_empty());
        let s = t.summary().unwrap();
        assert_eq!(s.spans_recorded, 2);
        assert_eq!(s.spans_dropped, 2);
        // Duration stats still accumulate even when the ring retains nothing.
        assert_eq!(s.histogram("span.a").unwrap().count, 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_with_disabled_or_self_is_a_no_op() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.counter("c").inc();
        t.merge_from(&t.clone()); // same hub: must not deadlock or double
        t.merge_from(&Telemetry::disabled());
        Telemetry::disabled().merge_from(&t);
        assert_eq!(t.summary().unwrap().counter("c"), Some(1));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn fork_inherits_config_but_not_state() {
        let t = Telemetry::new(TelemetryConfig {
            trace_activates: true,
            ..Default::default()
        });
        t.counter("c").inc();
        let f = t.fork();
        assert_eq!(f.summary().unwrap().counter("c"), None);
        // The fork inherits `trace_activates`.
        f.record(1, EventKind::Activate { bank: 0, row: 1 });
        assert_eq!(f.trace_events().len(), 1);
        assert!(!Telemetry::disabled().fork().is_enabled());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.record(1, EventKind::EpochRollover { epoch: 0 });
        assert!(t.summary().is_none());
        assert!(t.trace_events().is_empty());
        let c = t.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn phases_nest_and_account_self_vs_child() {
        let t = Telemetry::new(TelemetryConfig::default());
        {
            let _outer = t.phase("outer");
            {
                let _inner = t.phase("inner");
            }
            {
                let _inner = t.phase("inner");
            }
        }
        let w = t.summary().unwrap().wallclock.unwrap();
        let outer = w.phase("outer").unwrap();
        let inner = w.phase("inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        // The two inner occurrences landed on the nested path and their
        // time was attributed to outer's child time.
        assert_eq!(w.path("outer;inner").unwrap().count, 2);
        assert!(w.path("inner").is_none());
        assert!(outer.child_ns >= inner.total_ns);
        assert!(outer.total_ns >= outer.child_ns);
        assert_eq!(outer.self_ns(), outer.total_ns - outer.child_ns);
        // Root totals define the profiled wallclock.
        assert_eq!(w.host_wallclock_ns, outer.total_ns);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn phase_finish_closes_early_and_loops_reopen() {
        let t = Telemetry::new(TelemetryConfig::default());
        let run = t.phase("run");
        let mut epoch = t.phase("epoch");
        for _ in 0..3 {
            epoch.finish();
            epoch = t.phase("epoch");
        }
        epoch.finish();
        run.finish();
        let w = t.summary().unwrap().wallclock.unwrap();
        assert_eq!(w.phase("epoch").unwrap().count, 4);
        assert_eq!(w.path("run;epoch").unwrap().count, 4);
        assert_eq!(w.phase("run").unwrap().count, 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn open_phases_do_not_leak_into_summary_or_merge() {
        let t = Telemetry::new(TelemetryConfig::default());
        let _open = t.phase("still_open");
        assert!(t.summary().unwrap().wallclock.is_none());

        let job = t.fork();
        let done = job.phase("job_work");
        done.finish();
        let _job_open = job.phase("job_open");
        t.merge_from(&job);
        let w = t.summary().unwrap().wallclock.unwrap();
        assert_eq!(w.phase("job_work").unwrap().count, 1);
        assert!(w.phase("job_open").is_none());
        // The parent's own open phase is still unrecorded.
        assert!(w.phase("still_open").is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn phase_counts_merge_deterministically_across_forks() {
        fn exercise(hub: &Telemetry) {
            let r = hub.phase("r");
            hub.phase("c").finish();
            hub.phase("c").finish();
            r.finish();
        }
        let whole = Telemetry::new(TelemetryConfig::default());
        exercise(&whole);
        let job = whole.fork();
        exercise(&job);
        whole.merge_from(&job);
        let w = whole.summary().unwrap().wallclock.unwrap();
        assert_eq!(w.phase("r").unwrap().count, 2);
        assert_eq!(w.path("r;c").unwrap().count, 4);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn disabled_handle_phase_is_inert() {
        let t = Telemetry::disabled();
        let g = t.phase("x");
        g.finish();
        assert!(t.summary().is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn speculative_quiet_path_records_nothing_and_burns_no_id() {
        let t = Telemetry::new(TelemetryConfig::default());
        let sp = t.span_speculate("quiet", 0);
        sp.end_if_used(10);
        assert!(t.spans().is_empty());
        assert!(t.summary().unwrap().histogram("span.quiet").is_none());
        // No span id was consumed: the next eager span gets id 1.
        let root = t.span_start("after", 20);
        assert_eq!(root.id(), 1);
        root.end(21);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn speculative_materializes_via_child_span_start() {
        let t = Telemetry::new(TelemetryConfig::default());
        let sp = t.span_speculate("mitigation", 100);
        let child = t.span_start("migration", 110);
        child.end(150);
        sp.end_if_used(200);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let child = spans.iter().find(|s| s.name == "migration").unwrap();
        let root = spans.iter().find(|s| s.name == "mitigation").unwrap();
        assert_eq!(child.parent, Some(root.id));
        // Parent materialized before the child took an id, exactly as an
        // eager span_start would have ordered them.
        assert!(root.id < child.id);
        assert_eq!((root.start_ps, root.end_ps), (100, 200));
        assert_eq!(root.parent, None);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn speculative_materializes_via_span_record() {
        let t = Telemetry::new(TelemetryConfig::default());
        let sp = t.span_speculate("drain", 10);
        t.span_record("refresh", 11, 15);
        sp.end_if_used(20);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let leaf = spans.iter().find(|s| s.name == "refresh").unwrap();
        let root = spans.iter().find(|s| s.name == "drain").unwrap();
        assert_eq!(leaf.parent, Some(root.id));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn speculative_unconditional_end_commits_as_leaf() {
        let t = Telemetry::new(TelemetryConfig::default());
        let sp = t.span_speculate("solo", 5);
        sp.end(9);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].name, spans[0].parent), ("solo", None));
        assert_eq!(spans[0].duration_ps(), 4);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn speculative_nests_under_open_parent_only_when_used() {
        let t = Telemetry::new(TelemetryConfig::default());
        // Quiet speculative span inside a conditional root: the root stays
        // unused and is discarded by its own end_if_used.
        let outer = t.span_start("outer", 0);
        let quiet = t.span_speculate("quiet", 1);
        quiet.end_if_used(2);
        outer.end_if_used(3);
        assert!(t.spans().is_empty());

        // A used speculative span nests under the open parent and marks it
        // used.
        let outer = t.span_start("outer", 10);
        let sp = t.span_speculate("mid", 11);
        let leaf = t.span_start("leaf", 12);
        leaf.end(13);
        sp.end_if_used(14);
        outer.end_if_used(15);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let mid = spans.iter().find(|s| s.name == "mid").unwrap();
        let leaf = spans.iter().find(|s| s.name == "leaf").unwrap();
        assert_eq!(mid.parent, Some(outer.id));
        assert_eq!(leaf.parent, Some(mid.id));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn speculative_cancel_and_drop_discard_even_when_materialized() {
        let t = Telemetry::new(TelemetryConfig::default());
        let sp = t.span_speculate("a", 0);
        t.span_record("child", 1, 2);
        sp.cancel();
        {
            let _dropped = t.span_speculate("b", 10);
            t.span_record("child", 11, 12);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.name == "child"));
        // The stack is clean: a new root has no parent.
        let root = t.span_start("c", 20);
        root.end(21);
        assert_eq!(t.spans().last().unwrap().parent, None);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn superseded_speculative_span_is_discarded_and_stack_stays_clean() {
        let t = Telemetry::new(TelemetryConfig::default());
        let first = t.span_speculate("first", 0);
        t.span_record("c1", 1, 2); // materializes `first`
        let second = t.span_speculate("second", 10); // supersedes `first`
        t.span_record("c2", 11, 12); // materializes `second`
        second.end_if_used(20);
        first.end(30); // superseded: must be a no-op
        let spans = t.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["c1", "c2", "second"]);
        let c2 = spans.iter().find(|s| s.name == "c2").unwrap();
        let second = spans.iter().find(|s| s.name == "second").unwrap();
        assert_eq!(c2.parent, Some(second.id));
        // `first`'s materialized residue was removed at supersede time:
        // `second` is a root, and so is a fresh eager span.
        assert_eq!(second.parent, None);
        let root = t.span_start("after", 40);
        root.end(41);
        assert_eq!(t.spans().last().unwrap().parent, None);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_from_prefixed_nests_wall_phases_and_credits_child_time() {
        let t = Telemetry::new(TelemetryConfig::default());
        let shard = t.fork();
        {
            let run = shard.phase("sim.run");
            shard.phase("sim.epoch").finish();
            run.finish();
        }
        let shard_total = shard
            .summary()
            .unwrap()
            .wallclock
            .unwrap()
            .phase("sim.run")
            .unwrap()
            .total_ns;
        let coord = t.phase("sim.sharded");
        t.merge_from_prefixed(&shard, "sim.sharded;shard0");
        coord.finish();
        let w = t.summary().unwrap().wallclock.unwrap();
        // Shard rows nest under the coordinator instead of the root.
        assert_eq!(w.path("sim.sharded;shard0;sim.run").unwrap().count, 1);
        assert!(w.path("sim.run").is_none());
        let root = w.phase("sim.sharded").unwrap();
        // The absorbed shard total was credited as the coordinator's child
        // time, and only the coordinator's real elapsed time is the root.
        assert!(root.child_ns >= shard_total);
        assert_eq!(w.host_wallclock_ns, root.total_ns);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_from_prefixed_with_empty_prefix_is_flat() {
        let t = Telemetry::new(TelemetryConfig::default());
        let job = t.fork();
        job.phase("work").finish();
        job.counter("c").inc();
        t.merge_from_prefixed(&job, "");
        let w = t.summary().unwrap().wallclock.unwrap();
        assert_eq!(w.phase("work").unwrap().count, 1);
        assert_eq!(t.summary().unwrap().counter("c"), Some(1));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn feature_off_speculative_span_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<SpeculativeSpan>(), 0);
        let t = Telemetry::new(TelemetryConfig::default());
        t.span_speculate("x", 0).end_if_used(1);
        t.span_speculate("y", 0).end(1);
        t.span_speculate("z", 0).cancel();
        t.merge_from_prefixed(&Telemetry::new(TelemetryConfig::default()), "p");
        assert!(t.summary().is_none());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn feature_off_phase_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<PhaseGuard>(), 0);
        let t = Telemetry::new(TelemetryConfig::default());
        let g = t.phase("x");
        g.finish();
        let _held = t.phase("y");
        assert!(t.summary().is_none());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        let t = Telemetry::new(TelemetryConfig::default());
        assert!(!t.is_enabled());
        t.record(1, EventKind::EpochRollover { epoch: 0 });
        assert!(t.summary().is_none());
        let h = t.histogram("h");
        h.record(10);
        assert_eq!(h.snapshot().count(), 0);
    }
}
