//! The shared telemetry hub and its metric handles.
//!
//! [`Telemetry`] is the cheap-to-clone handle every simulator layer holds.
//! With the `enabled` cargo feature the handles feed shared atomics, the
//! bounded ring trace, histograms, and the epoch series. With the feature
//! off, [`Telemetry`] is a zero-sized type: [`Counter`] / [`Gauge`] degrade
//! to plain local cells (a bare `u64` increment on the hot path) and every
//! trace/histogram/epoch call compiles to nothing.

use crate::epoch::{EpochRecord, EpochSeries};
use crate::event::EventKind;
use crate::summary::TelemetrySummary;

#[cfg(feature = "enabled")]
use crate::event::Event;
#[cfg(feature = "enabled")]
use crate::hist::HistogramData;
#[cfg(feature = "enabled")]
use crate::ring::RingBuffer;
#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};

/// Construction-time options for a telemetry hub.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Maximum events retained by the ring trace (oldest dropped first).
    pub trace_capacity: usize,
    /// Whether high-volume `Activate` events enter the trace at all.
    pub trace_activates: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace_capacity: 65_536,
            trace_activates: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Feature ON: shared hub.
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
struct Inner {
    cfg: TelemetryConfig,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Mutex<HistogramData>>>>,
    trace: Mutex<RingBuffer<Event>>,
    epochs: Mutex<EpochSeries>,
}

/// Cheap-to-clone handle to the telemetry hub (or to nothing, when
/// constructed via [`Telemetry::disabled`] or with the feature off).
#[cfg(feature = "enabled")]
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

#[cfg(feature = "enabled")]
impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

#[cfg(feature = "enabled")]
impl Telemetry {
    /// Creates an active hub.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                cfg,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                trace: Mutex::new(RingBuffer::new(cfg.trace_capacity)),
                epochs: Mutex::new(EpochSeries::new()),
            })),
        }
    }

    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A fresh, empty hub with this hub's configuration (disabled handles
    /// fork into disabled handles). The parallel experiment runner gives
    /// each job a fork of the caller's hub so that concurrently running
    /// simulations never interleave writes, then [`Telemetry::merge_from`]s
    /// the forks back in deterministic job order.
    pub fn fork(&self) -> Telemetry {
        match &self.inner {
            Some(i) => Telemetry::new(i.cfg),
            None => Telemetry::disabled(),
        }
    }

    /// Absorbs everything `other` recorded into this hub.
    ///
    /// Counters add, gauges take `other`'s value, histograms merge
    /// bucket-wise, the epoch series appends `other`'s records after this
    /// hub's own, and `other`'s retained trace events are replayed into this
    /// hub's ring (events `other` already dropped stay counted as dropped).
    /// Merging per-job hubs in job-index order therefore yields the same
    /// aggregate regardless of how the jobs were scheduled across threads.
    ///
    /// A no-op when either handle is disabled or both refer to the same hub.
    pub fn merge_from(&self, other: &Telemetry) {
        let (Some(a), Some(b)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(a, b) {
            return;
        }
        for (&name, c) in b.counters.lock().unwrap().iter() {
            self.counter(name).add(c.load(Ordering::Relaxed));
        }
        for (&name, g) in b.gauges.lock().unwrap().iter() {
            self.gauge(name)
                .set(f64::from_bits(g.load(Ordering::Relaxed)));
        }
        for (&name, h) in b.histograms.lock().unwrap().iter() {
            let data = h.lock().unwrap().clone();
            if let Some(mine) = self.histogram(name).0 {
                mine.lock().unwrap().merge(&data);
            }
        }
        a.epochs
            .lock()
            .unwrap()
            .merge_from(&b.epochs.lock().unwrap());
        a.trace.lock().unwrap().merge_from(&b.trace.lock().unwrap());
    }

    /// Whether this handle feeds a live hub.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-fetches) a named counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.counters
                    .lock()
                    .unwrap()
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Registers (or re-fetches) a named gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.gauges
                    .lock()
                    .unwrap()
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
            )
        }))
    }

    /// Registers (or re-fetches) a named histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| {
            Arc::clone(
                i.histograms
                    .lock()
                    .unwrap()
                    .entry(name)
                    .or_insert_with(|| Arc::new(Mutex::new(HistogramData::new()))),
            )
        }))
    }

    /// Pushes a typed event into the ring trace.
    ///
    /// `Activate` events are filtered out unless
    /// [`TelemetryConfig::trace_activates`] was set.
    pub fn record(&self, ts_ps: u64, kind: EventKind) {
        if let Some(i) = &self.inner {
            if matches!(kind, EventKind::Activate { .. }) && !i.cfg.trace_activates {
                return;
            }
            i.trace.lock().unwrap().push(Event { ts_ps, kind });
        }
    }

    /// Appends one epoch sample to the time series.
    pub fn push_epoch(&self, record: EpochRecord) {
        if let Some(i) = &self.inner {
            i.epochs.lock().unwrap().push(record);
        }
    }

    /// Clones the recorded epoch series (empty when disabled).
    pub fn epochs(&self) -> EpochSeries {
        self.inner
            .as_ref()
            .map(|i| i.epochs.lock().unwrap().clone())
            .unwrap_or_default()
    }

    /// Clones the retained trace events, oldest first (empty when disabled).
    pub fn trace_events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|i| i.trace.lock().unwrap().iter().copied().collect())
            .unwrap_or_default()
    }

    /// Condenses everything recorded so far (None when disabled).
    pub fn summary(&self) -> Option<TelemetrySummary> {
        let i = self.inner.as_ref()?;
        let counters = i
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = i
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.to_string(), f64::from_bits(g.load(Ordering::Relaxed))))
            .collect();
        let histograms = i
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.to_string(), h.lock().unwrap().summary()))
            .collect();
        let trace = i.trace.lock().unwrap();
        Some(TelemetrySummary {
            counters,
            gauges,
            histograms,
            events_recorded: trace.offered(),
            events_dropped: trace.dropped(),
            epochs_recorded: i.epochs.lock().unwrap().len() as u64,
        })
    }
}

/// Monotone counter handle (shared atomic when live).
#[cfg(feature = "enabled")]
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

#[cfg(feature = "enabled")]
impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for detached handles).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Last-value gauge handle (shared atomic `f64` bits when live).
#[cfg(feature = "enabled")]
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

#[cfg(feature = "enabled")]
impl Gauge {
    /// Overwrites the gauge value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0 for detached handles).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }
}

/// Histogram recording handle (shared when live).
#[cfg(feature = "enabled")]
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<Mutex<HistogramData>>>);

#[cfg(feature = "enabled")]
impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().record(v);
        }
    }

    /// Snapshot of the underlying data (empty for detached handles).
    pub fn snapshot(&self) -> crate::hist::HistogramData {
        self.0
            .as_ref()
            .map(|h| h.lock().unwrap().clone())
            .unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Feature OFF: zero-cost stand-ins with the same API.
// ---------------------------------------------------------------------------

/// Zero-sized stand-in for the telemetry hub (feature `enabled` off).
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Debug, Default)]
pub struct Telemetry;

#[cfg(not(feature = "enabled"))]
impl Telemetry {
    /// Accepts the config and discards it.
    pub fn new(_cfg: TelemetryConfig) -> Self {
        Telemetry
    }

    /// Same as [`Telemetry::new`] in this mode: records nothing.
    pub fn disabled() -> Self {
        Telemetry
    }

    /// Forks into another zero-sized handle.
    pub fn fork(&self) -> Telemetry {
        Telemetry
    }

    /// No-op.
    pub fn merge_from(&self, _other: &Telemetry) {}

    /// Always `false` in this mode.
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Returns a plain local counter cell.
    pub fn counter(&self, _name: &'static str) -> Counter {
        Counter::default()
    }

    /// Returns a plain local gauge cell.
    pub fn gauge(&self, _name: &'static str) -> Gauge {
        Gauge::default()
    }

    /// Returns a no-op histogram handle.
    pub fn histogram(&self, _name: &'static str) -> Histogram {
        Histogram
    }

    /// No-op.
    #[inline]
    pub fn record(&self, _ts_ps: u64, _kind: EventKind) {}

    /// No-op.
    #[inline]
    pub fn push_epoch(&self, _record: EpochRecord) {}

    /// Always empty in this mode.
    pub fn epochs(&self) -> EpochSeries {
        EpochSeries::new()
    }

    /// Always empty in this mode.
    pub fn trace_events(&self) -> Vec<crate::event::Event> {
        Vec::new()
    }

    /// Always `None` in this mode.
    pub fn summary(&self) -> Option<TelemetrySummary> {
        None
    }
}

/// Plain local counter cell: a bare `u64` increment (feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Debug, Default)]
pub struct Counter(std::cell::Cell<u64>);

#[cfg(not(feature = "enabled"))]
impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.set(self.0.get().wrapping_add(1));
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current (handle-local) value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Plain local gauge cell (feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Debug, Default)]
pub struct Gauge(std::cell::Cell<f64>);

#[cfg(not(feature = "enabled"))]
impl Gauge {
    /// Overwrites the (handle-local) value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current (handle-local) value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// No-op histogram handle (feature off).
#[cfg(not(feature = "enabled"))]
#[derive(Clone, Debug, Default)]
pub struct Histogram;

#[cfg(not(feature = "enabled"))]
impl Histogram {
    /// No-op.
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// Always empty in this mode.
    pub fn snapshot(&self) -> crate::hist::HistogramData {
        crate::hist::HistogramData::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn counters_count_in_both_modes() {
        let t = Telemetry::new(TelemetryConfig::default());
        let c = t.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauges_hold_last_value() {
        let t = Telemetry::new(TelemetryConfig::default());
        let g = t.gauge("g");
        g.set(0.5);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn named_handles_share_state() {
        let t = Telemetry::new(TelemetryConfig::default());
        let a = t.counter("shared");
        let b = t.counter("shared");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let s = t.summary().unwrap();
        assert_eq!(s.counter("shared"), Some(2));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn activates_are_filtered_by_default() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.record(10, EventKind::Activate { bank: 0, row: 1 });
        t.record(20, EventKind::EpochRollover { epoch: 0 });
        assert_eq!(t.trace_events().len(), 1);

        let t2 = Telemetry::new(TelemetryConfig {
            trace_activates: true,
            ..Default::default()
        });
        t2.record(10, EventKind::Activate { bank: 0, row: 1 });
        assert_eq!(t2.trace_events().len(), 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_aggregates_every_metric_kind() {
        use crate::epoch::EpochRecord;

        let parent = Telemetry::new(TelemetryConfig::default());
        parent.counter("c").add(3);
        parent.gauge("g").set(0.25);
        parent.histogram("h").record(10);
        parent.push_epoch(EpochRecord {
            epoch: 0,
            ..Default::default()
        });
        parent.record(1, EventKind::EpochRollover { epoch: 0 });

        let job = parent.fork();
        assert!(job.is_enabled());
        job.counter("c").add(4);
        job.counter("job_only").inc();
        job.gauge("g").set(0.75);
        job.histogram("h").record(20);
        job.push_epoch(EpochRecord {
            epoch: 1,
            ..Default::default()
        });
        job.record(2, EventKind::EpochRollover { epoch: 1 });

        parent.merge_from(&job);
        let s = parent.summary().unwrap();
        assert_eq!(s.counter("c"), Some(7));
        assert_eq!(s.counter("job_only"), Some(1));
        assert_eq!(s.gauge("g"), Some(0.75));
        let h = s.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 20);
        assert_eq!(s.epochs_recorded, 2);
        assert_eq!(s.events_recorded, 2);
        let epochs: Vec<u64> = parent.epochs().records().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![0, 1]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_with_disabled_or_self_is_a_no_op() {
        let t = Telemetry::new(TelemetryConfig::default());
        t.counter("c").inc();
        t.merge_from(&t.clone()); // same hub: must not deadlock or double
        t.merge_from(&Telemetry::disabled());
        Telemetry::disabled().merge_from(&t);
        assert_eq!(t.summary().unwrap().counter("c"), Some(1));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn fork_inherits_config_but_not_state() {
        let t = Telemetry::new(TelemetryConfig {
            trace_activates: true,
            ..Default::default()
        });
        t.counter("c").inc();
        let f = t.fork();
        assert_eq!(f.summary().unwrap().counter("c"), None);
        // The fork inherits `trace_activates`.
        f.record(1, EventKind::Activate { bank: 0, row: 1 });
        assert_eq!(f.trace_events().len(), 1);
        assert!(!Telemetry::disabled().fork().is_enabled());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.record(1, EventKind::EpochRollover { epoch: 0 });
        assert!(t.summary().is_none());
        assert!(t.trace_events().is_empty());
        let c = t.counter("x");
        c.inc();
        assert_eq!(c.get(), 0);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        let t = Telemetry::new(TelemetryConfig::default());
        assert!(!t.is_enabled());
        t.record(1, EventKind::EpochRollover { epoch: 0 });
        assert!(t.summary().is_none());
        let h = t.histogram("h");
        h.record(10);
        assert_eq!(h.snapshot().count(), 0);
    }
}
