//! Unified telemetry for the AQUA simulator workspace.
//!
//! One crate provides every observability primitive the simulator layers
//! share:
//!
//! * [`Counter`] / [`Gauge`] handles backed by a named registry inside
//!   [`Telemetry`]. With the `enabled` feature they are shared atomics; with
//!   it off they degrade to plain thread-local cells, so instrumented hot
//!   paths still compile to a bare `u64` increment.
//! * [`HistogramData`] — log-bucketed (power-of-two) latency histograms with
//!   p50/p95/p99/max summaries, plus the [`Histogram`] recording handle.
//! * [`RingBuffer`] + [`EventKind`] — a bounded event trace of typed
//!   simulator events (activations, quarantine moves, swaps, cache misses,
//!   epoch rollovers, throttle stalls, threshold crossings).
//! * [`EpochSeries`] — a per-epoch time-series recorder (migrations, RQA
//!   occupancy, FPT-cache hit rate, channel busy fractions, ...).
//! * [`Span`] + [`ActiveSpan`] — causal begin/end spans over simulated
//!   time with parent links and per-name duration histograms, covering the
//!   full migration lifecycle (quarantine decision → channel blocking →
//!   table update) plus the intervals where demand traffic pays for it.
//! * [`wallclock`] + [`PhaseGuard`] — scoped *host-time* phase timers over
//!   `std::time::Instant` with a nesting stack, self/child accounting, and
//!   folded-stacks export; the throughput instrument behind the hot-loop
//!   speed campaign. Zero-cost (no clock reads) with the feature off.
//! * [`export`] — JSONL and Chrome `about:tracing` writers for all of the
//!   above, hand-rolled so no serialization dependency is required.
//! * [`Snapshot`] / [`SnapshotTracker`] — read-only, point-in-time views
//!   of a live hub with per-counter deltas; [`MetricsPlane`] — the opt-in
//!   live scrape endpoint (`/metrics` Prometheus text + `/healthz` JSON,
//!   hand-rolled over `std::net::TcpListener`); [`AlertEngine`] — a small
//!   declarative threshold-rule engine over snapshots that fires typed
//!   [`EventKind::AlertFired`] events.
//! * [`stat_struct!`] — the declarative macro behind the workspace's plain
//!   `u64` stats structs (`Default + AddAssign + aggregate + diff` and
//!   field iteration from a single field list).
//!
//! The raw data structures ([`HistogramData`], [`RingBuffer`],
//! [`EpochSeries`]) are compiled unconditionally so they stay property-
//! testable in both feature modes; only the shared-hub plumbing is gated.

pub mod alerts;
pub mod epoch;
pub mod event;
pub mod export;
pub mod expose;
pub mod hist;
pub mod hub;
mod json;
pub mod ring;
pub mod snapshot;
pub mod span;
mod stats;
pub mod summary;
pub mod wallclock;

pub use alerts::{AlertCmp, AlertEngine, AlertFiring, AlertInput, AlertRule};
pub use expose::{AlertNotice, CellHealth, MetricsPlane};
pub use snapshot::{Snapshot, SnapshotTracker};

pub use epoch::{EpochRecord, EpochSeries};
pub use event::{Event, EventKind};
pub use hist::{HistogramData, HistogramSummary};
pub use hub::{
    ActiveSpan, Counter, Gauge, Histogram, PhaseGuard, SpeculativeSpan, Telemetry, TelemetryConfig,
};
pub use ring::RingBuffer;
pub use span::Span;
pub use summary::TelemetrySummary;
pub use wallclock::{PhaseStats, WallProfile, WallclockSummary};
