//! Consistent in-run snapshots of a live telemetry hub.
//!
//! A [`Snapshot`] is a read-only, point-in-time view of everything a
//! [`Telemetry`] hub has registered — counters, gauges, histograms
//! (both condensed summaries and full bucket data), ring/epoch/span
//! statistics, and the wallclock phase profile — plus per-counter deltas
//! against the previous snapshot taken by the same [`SnapshotTracker`].
//!
//! Consistency model (DESIGN.md section 16): capture reuses the hub's own
//! [`Telemetry::summary`] pass, which holds each registry lock only long
//! enough to copy it, so a snapshot is *per-structure* consistent (every
//! counter read is a single atomic load; every histogram is copied under
//! its own lock) but not a global stop-the-world cut — two counters
//! incremented by a concurrently running shard may straddle the capture.
//! That is deliberate: snapshots exist to *observe* a live run, and the
//! simulator's hot path must never block on an observer. Capture mutates
//! nothing, so a run with snapshots enabled is byte-identical to one
//! without.
//!
//! Host-time discipline: `host_elapsed_ns` follows the wallclock layer's
//! count-only-equality convention — [`Snapshot`]'s `PartialEq` ignores it
//! entirely, so snapshot comparisons stay deterministic across hosts.

use std::time::Instant;

use crate::hist::HistogramData;
use crate::hub::Telemetry;
use crate::summary::TelemetrySummary;

/// A point-in-time view of one telemetry hub (see the module docs for the
/// consistency model).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotone capture sequence number within one [`SnapshotTracker`]
    /// (the first capture is 1).
    pub seq: u64,
    /// The condensed registry view: counters, gauges, histogram summaries
    /// (including folded `span.<name>` stats), ring/epoch/span statistics,
    /// and the wallclock profile.
    pub summary: TelemetrySummary,
    /// Full bucket data of every *registered* histogram (folded span stats
    /// are summaries only), sorted by name. Captured through the shared
    /// [`crate::hub::Histogram::snapshot`] helper.
    pub histogram_data: Vec<(String, HistogramData)>,
    /// Per-counter increase since the previous snapshot of the same
    /// tracker (saturating; a counter first seen in this capture reports
    /// its full value). Sorted by name.
    pub counter_deltas: Vec<(String, u64)>,
    /// Host nanoseconds since the previous capture (or since the tracker
    /// was created, for the first). Host-time noise: excluded from
    /// equality, like every nanosecond field in the wallclock layer.
    pub host_elapsed_ns: u64,
}

impl PartialEq for Snapshot {
    /// Equality ignores `host_elapsed_ns` (host-time noise), mirroring
    /// [`crate::wallclock::WallclockSummary`]'s count-only convention.
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
            && self.summary == other.summary
            && self.histogram_data == other.histogram_data
            && self.counter_deltas == other.counter_deltas
    }
}

impl Snapshot {
    /// Current value of a counter, or `None` if it is not registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.summary.counter(name)
    }

    /// Current value of a gauge, or `None` if it is not registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.summary.gauge(name)
    }

    /// Increase of a counter since the previous snapshot (0 when absent).
    pub fn delta(&self, name: &str) -> u64 {
        self.counter_deltas
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Host-time rate of a counter over the capture interval, per second.
    /// 0 when the interval is empty (first capture on a fast host).
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        if self.host_elapsed_ns == 0 {
            return 0.0;
        }
        self.delta(name) as f64 / (self.host_elapsed_ns as f64 / 1e9)
    }
}

/// Takes successive [`Snapshot`]s of one hub and computes the deltas
/// between them. One tracker per observed hub; captures are cheap enough
/// for an epoch-boundary cadence.
#[derive(Debug)]
pub struct SnapshotTracker {
    seq: u64,
    prev_counters: Vec<(String, u64)>,
    last_capture: Instant,
}

impl Default for SnapshotTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotTracker {
    /// A tracker with no history: the first capture reports every counter
    /// as its own delta.
    pub fn new() -> Self {
        SnapshotTracker {
            seq: 0,
            prev_counters: Vec::new(),
            last_capture: Instant::now(),
        }
    }

    /// Captures a snapshot of `hub`, or `None` when the hub is disabled
    /// (or the crate was built without the `enabled` feature). Read-only:
    /// nothing in the hub changes, so enabling captures never perturbs a
    /// run's recorded telemetry.
    pub fn capture(&mut self, hub: &Telemetry) -> Option<Snapshot> {
        let summary = hub.summary()?;
        let now = Instant::now();
        let host_elapsed_ns = now.duration_since(self.last_capture).as_nanos() as u64;
        self.last_capture = now;
        self.seq += 1;
        let counter_deltas: Vec<(String, u64)> = summary
            .counters
            .iter()
            .map(|(name, v)| {
                let before = self
                    .prev_counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, b)| b)
                    .unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .collect();
        self.prev_counters = summary.counters.clone();
        Some(Snapshot {
            seq: self.seq,
            histogram_data: hub.histogram_snapshots(),
            counter_deltas,
            summary,
            host_elapsed_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::TelemetryConfig;

    #[test]
    fn capture_none_when_disabled() {
        let mut tracker = SnapshotTracker::new();
        assert!(tracker.capture(&Telemetry::disabled()).is_none());
    }

    #[test]
    fn deltas_track_counter_increases() {
        let hub = Telemetry::new(TelemetryConfig::default());
        if !hub.is_enabled() {
            return; // feature off: capture is always None, covered above
        }
        let c = hub.counter("sim.requests");
        let mut tracker = SnapshotTracker::new();
        c.add(5);
        let s1 = tracker.capture(&hub).unwrap();
        assert_eq!(s1.seq, 1);
        assert_eq!(s1.counter("sim.requests"), Some(5));
        assert_eq!(s1.delta("sim.requests"), 5, "first capture = full value");
        c.add(3);
        let s2 = tracker.capture(&hub).unwrap();
        assert_eq!(s2.seq, 2);
        assert_eq!(s2.counter("sim.requests"), Some(8));
        assert_eq!(s2.delta("sim.requests"), 3);
        assert_eq!(s2.delta("sim.unknown"), 0);
    }

    #[test]
    fn histograms_capture_via_the_shared_helper() {
        let hub = Telemetry::new(TelemetryConfig::default());
        if !hub.is_enabled() {
            return;
        }
        hub.histogram("mem.access_ps").record(100);
        hub.histogram("mem.access_ps").record(200);
        let mut tracker = SnapshotTracker::new();
        let snap = tracker.capture(&hub).unwrap();
        let (name, data) = &snap.histogram_data[0];
        assert_eq!(name, "mem.access_ps");
        assert_eq!(data.count(), 2);
        assert_eq!(snap.summary.histogram("mem.access_ps").unwrap().count, 2);
    }

    #[test]
    fn equality_ignores_host_elapsed() {
        let a = Snapshot {
            seq: 1,
            host_elapsed_ns: 10,
            ..Snapshot::default()
        };
        let b = Snapshot {
            seq: 1,
            host_elapsed_ns: 99_999,
            ..Snapshot::default()
        };
        assert_eq!(a, b, "host nanoseconds never break snapshot equality");
    }

    #[test]
    fn rates_follow_the_capture_interval() {
        let snap = Snapshot {
            counter_deltas: vec![("sim.requests".into(), 1000)],
            host_elapsed_ns: 500_000_000, // 0.5 s
            ..Snapshot::default()
        };
        assert!((snap.rate_per_sec("sim.requests") - 2000.0).abs() < 1e-9);
        let empty = Snapshot::default();
        assert_eq!(empty.rate_per_sec("sim.requests"), 0.0);
    }
}
