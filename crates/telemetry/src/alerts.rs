//! Declarative threshold alerts over snapshot deltas.
//!
//! A rule is one line of the grammar (DESIGN.md section 16):
//!
//! ```text
//! rule  := name ':' expr cmp threshold
//! expr  := counter | 'delta(' counter ')' | 'rate(' counter ')'
//! cmp   := '>' | '<'
//! rules := rule (';' rule)*
//! ```
//!
//! `counter` is a registered counter name (`sim.integrity_escapes`),
//! `delta(...)` its increase since the previous [`Snapshot`], and
//! `rate(...)` its host-time per-second rate over the capture interval.
//!
//! Determinism contract: `counter` and `delta` rules depend only on
//! simulated state and are evaluated at epoch boundaries by the simulator
//! itself — their firings are recorded as [`EventKind::AlertFired`] trace
//! events and are byte-identical across worker counts and with the
//! metrics plane on or off. `rate` rules read the host clock, so they are
//! evaluated **only** by the bench heartbeat, print warnings, surface on
//! `/healthz` — and never enter the event ring.
//!
//! Firing is edge-triggered: a rule fires when its condition becomes true
//! after being false (or at its first true evaluation), not on every
//! evaluation while it stays true — `integrity_escapes > 0` alerts once
//! per run, not once per epoch.
//!
//! [`EventKind::AlertFired`]: crate::event::EventKind::AlertFired
//! [`Snapshot`]: crate::snapshot::Snapshot

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::snapshot::Snapshot;

/// What a rule reads from a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertInput {
    /// The counter's absolute value.
    Counter,
    /// The counter's increase since the previous snapshot.
    Delta,
    /// The counter's host-time rate (per second) over the capture
    /// interval. Host-time: never evaluated by the deterministic path.
    Rate,
}

/// The comparison a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertCmp {
    /// Fires when the observed value exceeds the threshold.
    Above,
    /// Fires when the observed value drops below the threshold.
    Below,
}

/// One parsed threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name, as it appears in warnings and `AlertFired` events.
    /// Interned so trace events stay `Copy` (`&'static str`).
    pub name: &'static str,
    /// Observed counter.
    pub metric: String,
    /// How the counter is read.
    pub input: AlertInput,
    /// Comparison direction.
    pub cmp: AlertCmp,
    /// Threshold the observation is compared against.
    pub threshold: f64,
}

impl AlertRule {
    /// Whether this rule reads the host clock (`rate(...)`): host-time
    /// rules are evaluated by the bench heartbeat only and never recorded
    /// into the deterministic event ring.
    pub fn is_host_time(&self) -> bool {
        self.input == AlertInput::Rate
    }

    fn observe(&self, snap: &Snapshot) -> f64 {
        match self.input {
            AlertInput::Counter => snap.counter(&self.metric).unwrap_or(0) as f64,
            AlertInput::Delta => snap.delta(&self.metric) as f64,
            AlertInput::Rate => snap.rate_per_sec(&self.metric),
        }
    }

    fn is_true(&self, value: f64) -> bool {
        match self.cmp {
            AlertCmp::Above => value > self.threshold,
            AlertCmp::Below => value < self.threshold,
        }
    }
}

impl std::fmt::Display for AlertRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let expr = match self.input {
            AlertInput::Counter => self.metric.clone(),
            AlertInput::Delta => format!("delta({})", self.metric),
            AlertInput::Rate => format!("rate({})", self.metric),
        };
        let cmp = match self.cmp {
            AlertCmp::Above => '>',
            AlertCmp::Below => '<',
        };
        write!(f, "{}: {expr} {cmp} {}", self.name, self.threshold)
    }
}

/// One firing: a rule whose condition just became true.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertFiring {
    /// The rule's interned name.
    pub rule: &'static str,
    /// The observed value that tripped the rule.
    pub value: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Whether the firing came from a host-time (`rate`) rule.
    pub host_time: bool,
}

/// Evaluates a fixed rule set over successive snapshots with per-rule
/// edge-triggering (see the module docs).
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    was_true: Vec<bool>,
}

impl AlertEngine {
    /// The built-in rule set (DESIGN.md section 16): any integrity escape,
    /// a rising degraded-epoch count, and a host-side collapse of the
    /// access rate below one request per second.
    pub fn default_rules() -> Vec<AlertRule> {
        vec![
            AlertRule {
                name: "integrity_escape",
                metric: "sim.integrity_escapes".into(),
                input: AlertInput::Counter,
                cmp: AlertCmp::Above,
                threshold: 0.0,
            },
            AlertRule {
                name: "degraded_rising",
                metric: "sim.degraded_epochs".into(),
                input: AlertInput::Delta,
                cmp: AlertCmp::Above,
                threshold: 0.0,
            },
            AlertRule {
                name: "throughput_collapse",
                metric: "sim.requests".into(),
                input: AlertInput::Rate,
                cmp: AlertCmp::Below,
                threshold: 1.0,
            },
        ]
    }

    /// An engine over an explicit rule set.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let was_true = vec![false; rules.len()];
        AlertEngine { rules, was_true }
    }

    /// An engine over `AQUA_ALERT_RULES` (the grammar in the module docs),
    /// or the built-in rules when the variable is unset. An unparsable
    /// spec warns and falls back to the built-ins rather than silently
    /// disabling alerting.
    pub fn from_env() -> Self {
        match std::env::var("AQUA_ALERT_RULES") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(rules) => Self::new(rules),
                Err(e) => {
                    eprintln!(
                        "warning: ignoring unparsable AQUA_ALERT_RULES ({e}); using defaults"
                    );
                    Self::new(Self::default_rules())
                }
            },
            Err(_) => Self::new(Self::default_rules()),
        }
    }

    /// Parses a `;`-separated rule list. Empty entries are skipped, so
    /// trailing semicolons are harmless.
    pub fn parse(spec: &str) -> Result<Vec<AlertRule>, String> {
        spec.split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(parse_rule)
            .collect()
    }

    /// The engine's rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluates the **deterministic** rules (`counter` / `delta`) against
    /// a snapshot, returning the rules that just fired. Host-time (`rate`)
    /// rules are skipped entirely — their state does not advance here.
    pub fn evaluate(&mut self, snap: &Snapshot) -> Vec<AlertFiring> {
        self.evaluate_filtered(snap, false)
    }

    /// Evaluates the **host-time** (`rate`) rules only. For the bench
    /// heartbeat: firings must stay out of the deterministic event ring.
    pub fn evaluate_host(&mut self, snap: &Snapshot) -> Vec<AlertFiring> {
        self.evaluate_filtered(snap, true)
    }

    fn evaluate_filtered(&mut self, snap: &Snapshot, host_time: bool) -> Vec<AlertFiring> {
        let mut fired = Vec::new();
        for (rule, was) in self.rules.iter().zip(self.was_true.iter_mut()) {
            if rule.is_host_time() != host_time {
                continue;
            }
            let value = rule.observe(snap);
            let now = rule.is_true(value);
            if now && !*was {
                fired.push(AlertFiring {
                    rule: rule.name,
                    value,
                    threshold: rule.threshold,
                    host_time,
                });
            }
            *was = now;
        }
        fired
    }
}

/// Parses one `name: expr cmp threshold` rule.
fn parse_rule(text: &str) -> Result<AlertRule, String> {
    let (name, rest) = text
        .split_once(':')
        .ok_or_else(|| format!("rule {text:?} has no `name:` prefix"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("rule {text:?} has an empty name"));
    }
    let (cmp, sep) = if rest.contains('>') {
        (AlertCmp::Above, '>')
    } else if rest.contains('<') {
        (AlertCmp::Below, '<')
    } else {
        return Err(format!("rule {text:?} has no `>` or `<` comparison"));
    };
    let (expr, threshold) = rest
        .split_once(sep)
        .expect("separator presence checked above");
    let threshold: f64 = threshold
        .trim()
        .parse()
        .map_err(|_| format!("rule {text:?} has an unparsable threshold {threshold:?}"))?;
    let expr = expr.trim();
    let (input, metric) = if let Some(inner) = strip_call(expr, "delta") {
        (AlertInput::Delta, inner)
    } else if let Some(inner) = strip_call(expr, "rate") {
        (AlertInput::Rate, inner)
    } else {
        (AlertInput::Counter, expr)
    };
    if metric.is_empty() {
        return Err(format!("rule {text:?} names no metric"));
    }
    Ok(AlertRule {
        name: intern(name),
        metric: metric.to_string(),
        input,
        cmp,
        threshold,
    })
}

/// `strip_call("delta(x)", "delta")` → `Some("x")`.
fn strip_call<'a>(expr: &'a str, func: &str) -> Option<&'a str> {
    expr.strip_prefix(func)
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('('))
        .and_then(|s| s.strip_suffix(')'))
        .map(str::trim)
}

/// Interns a rule name as `&'static str` so [`AlertFiring::rule`] (and the
/// `AlertFired` trace event) stay `Copy`. Leaks at most one allocation per
/// *distinct* rule name per process — bounded by the rule vocabulary, not
/// by the number of engines or runs.
fn intern(name: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let cache = INTERNED.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&s) = cache.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    cache.insert(name.to_string(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)], deltas: &[(&str, u64)], elapsed_ns: u64) -> Snapshot {
        Snapshot {
            summary: crate::TelemetrySummary {
                counters: counters.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
                ..Default::default()
            },
            counter_deltas: deltas.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
            host_elapsed_ns: elapsed_ns,
            ..Default::default()
        }
    }

    #[test]
    fn grammar_round_trips() {
        let rules = AlertEngine::parse(
            "escape: sim.integrity_escapes > 0; \
             degraded: delta(sim.degraded_epochs) > 2; \
             stall: rate(sim.requests) < 100.5;",
        )
        .unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].name, "escape");
        assert_eq!(rules[0].input, AlertInput::Counter);
        assert_eq!(rules[1].input, AlertInput::Delta);
        assert_eq!(rules[1].threshold, 2.0);
        assert_eq!(rules[2].input, AlertInput::Rate);
        assert!(rules[2].is_host_time());
        assert_eq!(rules[2].cmp, AlertCmp::Below);
        // Display re-renders parsable rules.
        for r in &rules {
            let again = &AlertEngine::parse(&r.to_string()).unwrap()[0];
            assert_eq!(again, r);
        }
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        assert!(AlertEngine::parse("no separator here").is_err());
        assert!(AlertEngine::parse("x: metric = 4").is_err());
        assert!(AlertEngine::parse("x: metric > lots").is_err());
        assert!(AlertEngine::parse(": metric > 1").is_err());
        assert!(AlertEngine::parse("x: delta() > 1").is_err());
        assert!(AlertEngine::parse("").unwrap().is_empty());
    }

    #[test]
    fn firing_is_edge_triggered() {
        let mut engine =
            AlertEngine::new(AlertEngine::parse("escape: sim.integrity_escapes > 0").unwrap());
        assert!(engine
            .evaluate(&snap(&[("sim.integrity_escapes", 0)], &[], 0))
            .is_empty());
        let fired = engine.evaluate(&snap(&[("sim.integrity_escapes", 2)], &[], 0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "escape");
        assert_eq!(fired[0].value, 2.0);
        assert!(!fired[0].host_time);
        // Still true: no re-fire.
        assert!(engine
            .evaluate(&snap(&[("sim.integrity_escapes", 3)], &[], 0))
            .is_empty());
        // Falls false, then true again: re-fires.
        assert!(engine
            .evaluate(&snap(&[("sim.integrity_escapes", 0)], &[], 0))
            .is_empty());
        assert_eq!(
            engine
                .evaluate(&snap(&[("sim.integrity_escapes", 1)], &[], 0))
                .len(),
            1
        );
    }

    #[test]
    fn host_rules_are_partitioned_from_deterministic_ones() {
        let mut engine = AlertEngine::new(AlertEngine::default_rules());
        // 0 requests over 1 s: the rate rule is true, but evaluate() must
        // not touch it.
        let s = snap(
            &[("sim.requests", 0)],
            &[("sim.requests", 0)],
            1_000_000_000,
        );
        assert!(engine.evaluate(&s).is_empty());
        let host = engine.evaluate_host(&s);
        assert_eq!(host.len(), 1);
        assert_eq!(host[0].rule, "throughput_collapse");
        assert!(host[0].host_time);
    }

    #[test]
    fn delta_rules_read_snapshot_deltas() {
        let mut engine =
            AlertEngine::new(AlertEngine::parse("deg: delta(sim.degraded_epochs) > 0").unwrap());
        let quiet = snap(
            &[("sim.degraded_epochs", 5)],
            &[("sim.degraded_epochs", 0)],
            0,
        );
        assert!(engine.evaluate(&quiet).is_empty(), "flat count never fires");
        let rising = snap(
            &[("sim.degraded_epochs", 6)],
            &[("sim.degraded_epochs", 1)],
            0,
        );
        assert_eq!(engine.evaluate(&rising).len(), 1);
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("same-rule");
        let b = intern("same-rule");
        assert!(std::ptr::eq(a, b), "repeated interns share one allocation");
    }
}
