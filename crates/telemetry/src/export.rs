//! Exporters: Chrome `about:tracing` JSON and line-delimited JSON.
//!
//! The Chrome format is the "JSON Array Format" documented for
//! `chrome://tracing` / Perfetto: an object with a `traceEvents` array of
//! instant events (`"ph":"i"`), timestamps in microseconds. The JSONL
//! exporters emit one self-contained object per line so downstream tooling
//! can stream-parse them.

use std::io::{self, Write};

use crate::epoch::EpochSeries;
use crate::event::Event;
use crate::hist::HistogramData;
use crate::json;
use crate::span::Span;

/// Picoseconds → Chrome-trace microseconds.
fn ps_to_us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Writes events as a Chrome-loadable trace (`chrome://tracing`, Perfetto).
pub fn write_chrome_trace<'a, W, I>(w: &mut W, events: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a Event>,
{
    write_chrome_trace_full(w, events, &[])
}

/// Writes instant events plus completed spans as one Chrome-loadable trace.
///
/// Spans become complete events (`"ph":"X"`) carrying their id and parent
/// id in `args`, so the causal tree survives the export; instant events keep
/// the `"ph":"i"` shape [`write_chrome_trace`] emits.
pub fn write_chrome_trace_full<'a, W, I>(w: &mut W, events: I, spans: &[Span]) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a Event>,
{
    write!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;
    for ev in events {
        if !first {
            write!(w, ",")?;
        }
        first = false;
        let mut name = String::new();
        json::push_str(&mut name, ev.kind.name());
        write!(
            w,
            "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":1,\"args\":{}}}",
            name,
            json::num(ps_to_us(ev.ts_ps)),
            ev.kind.args_json()
        )?;
    }
    for s in spans {
        if !first {
            write!(w, ",")?;
        }
        first = false;
        let mut name = String::new();
        json::push_str(&mut name, s.name);
        let parent = match s.parent {
            Some(p) => p.to_string(),
            None => "null".into(),
        };
        write!(
            w,
            "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\
             \"args\":{{\"id\":{},\"parent\":{}}}}}",
            name,
            json::num(ps_to_us(s.start_ps)),
            json::num(ps_to_us(s.duration_ps())),
            s.id,
            parent
        )?;
    }
    writeln!(w, "]}}")
}

/// Writes spans as JSONL: one `{id, parent, name, start_ps, end_ps, dur_ps}`
/// object per line, oldest first.
pub fn write_spans_jsonl<W: Write>(w: &mut W, spans: &[Span]) -> io::Result<()> {
    for s in spans {
        let mut name = String::new();
        json::push_str(&mut name, s.name);
        let parent = match s.parent {
            Some(p) => p.to_string(),
            None => "null".into(),
        };
        writeln!(
            w,
            "{{\"id\":{},\"parent\":{},\"name\":{},\"start_ps\":{},\"end_ps\":{},\"dur_ps\":{}}}",
            s.id,
            parent,
            name,
            s.start_ps,
            s.end_ps,
            s.duration_ps()
        )?;
    }
    Ok(())
}

/// Writes events as JSONL: one `{ts_ps, name, args}` object per line.
pub fn write_events_jsonl<'a, W, I>(w: &mut W, events: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a Event>,
{
    for ev in events {
        let mut name = String::new();
        json::push_str(&mut name, ev.kind.name());
        writeln!(
            w,
            "{{\"ts_ps\":{},\"name\":{},\"args\":{}}}",
            ev.ts_ps,
            name,
            ev.kind.args_json()
        )?;
    }
    Ok(())
}

/// Writes the epoch time series as JSONL: one record per epoch, with the
/// scheme-specific gauges flattened into the same object.
pub fn write_epochs_jsonl<W: Write>(w: &mut W, series: &EpochSeries) -> io::Result<()> {
    for r in series.records() {
        let mut line = format!(
            "{{\"epoch\":{},\"end_ps\":{},\"requests_done\":{},\"migrations\":{},\
             \"mitigations_triggered\":{},\"victim_refreshes\":{},\"throttled\":{},\
             \"data_busy_frac\":{},\"migration_busy_frac\":{},\"table_busy_frac\":{}",
            r.epoch,
            r.end_ps,
            r.requests_done,
            r.migrations,
            r.mitigations_triggered,
            r.victim_refreshes,
            r.throttled,
            json::num(r.data_busy_frac),
            json::num(r.migration_busy_frac),
            json::num(r.table_busy_frac),
        );
        for (name, v) in &r.gauges {
            line.push(',');
            json::push_str(&mut line, name);
            line.push(':');
            line.push_str(&json::num(*v));
        }
        line.push('}');
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Writes one histogram as a JSONL record: summary plus non-empty buckets.
pub fn write_histogram_jsonl<W: Write>(
    w: &mut W,
    name: &str,
    data: &HistogramData,
) -> io::Result<()> {
    let s = data.summary();
    let mut line = String::from("{");
    json::push_str(&mut line, "name");
    line.push(':');
    json::push_str(&mut line, name);
    line.push_str(&format!(
        ",\"count\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"buckets\":[",
        s.count,
        json::num(s.mean),
        json::num(s.p50),
        json::num(s.p95),
        json::num(s.p99),
        s.max
    ));
    let mut first = true;
    for (i, &n) in data.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            line.push(',');
        }
        first = false;
        let (lo, hi) = HistogramData::bucket_bounds(i);
        line.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"n\":{n}}}"));
    }
    line.push_str("]}");
    writeln!(w, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochRecord;
    use crate::event::EventKind;

    fn events() -> Vec<Event> {
        vec![
            Event {
                ts_ps: 1_000_000,
                kind: EventKind::QuarantineIn { row: 5, slot: 0 },
            },
            Event {
                ts_ps: 2_000_000,
                kind: EventKind::EpochRollover { epoch: 0 },
            },
        ]
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let mut out = Vec::new();
        write_chrome_trace(&mut out, events().iter()).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("{\"displayTimeUnit\""), "{s}");
        assert!(s.contains("\"traceEvents\":["), "{s}");
        assert!(s.contains("\"name\":\"QuarantineIn\""), "{s}");
        assert!(s.contains("\"ts\":1"), "{s}");
        assert!(s.trim_end().ends_with("]}"), "{s}");
    }

    fn spans() -> Vec<Span> {
        vec![
            Span {
                id: 2,
                parent: Some(1),
                name: "migration.install",
                start_ps: 1_000_000,
                end_ps: 2_370_000,
            },
            Span {
                id: 1,
                parent: None,
                name: "sim.mitigation",
                start_ps: 1_000_000,
                end_ps: 2_500_000,
            },
        ]
    }

    #[test]
    fn chrome_trace_full_mixes_instants_and_complete_events() {
        let mut out = Vec::new();
        write_chrome_trace_full(&mut out, events().iter(), &spans()).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("\"ph\":\"i\""), "{s}");
        assert!(s.contains("\"ph\":\"X\""), "{s}");
        assert!(s.contains("\"name\":\"migration.install\""), "{s}");
        assert!(s.contains("\"dur\":1.37"), "{s}");
        assert!(s.contains("\"args\":{\"id\":2,\"parent\":1}"), "{s}");
        assert!(s.contains("\"parent\":null"), "{s}");
        assert!(s.trim_end().ends_with("]}"), "{s}");
    }

    #[test]
    fn spans_only_trace_is_valid() {
        let none: Vec<Event> = Vec::new();
        let mut out = Vec::new();
        write_chrome_trace_full(&mut out, none.iter(), &spans()).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("{\"displayTimeUnit\""), "{s}");
        assert!(!s.contains("[,"), "{s}");
    }

    #[test]
    fn spans_jsonl_is_one_object_per_line() {
        let mut out = Vec::new();
        write_spans_jsonl(&mut out, &spans()).unwrap();
        let s = String::from_utf8(out).unwrap();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dur_ps\":1370000"), "{}", lines[0]);
        assert!(lines[1].contains("\"parent\":null"), "{}", lines[1]);
    }

    #[test]
    fn events_jsonl_is_one_object_per_line() {
        let mut out = Vec::new();
        write_events_jsonl(&mut out, events().iter()).unwrap();
        let s = String::from_utf8(out).unwrap();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[1].contains("\"EpochRollover\""));
    }

    #[test]
    fn epochs_jsonl_flattens_gauges() {
        let mut series = EpochSeries::new();
        series.push(EpochRecord {
            epoch: 0,
            migrations: 3,
            gauges: vec![("rqa_occupancy".into(), 0.25)],
            ..Default::default()
        });
        let mut out = Vec::new();
        write_epochs_jsonl(&mut out, &series).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("\"migrations\":3"), "{s}");
        assert!(s.contains("\"rqa_occupancy\":0.25"), "{s}");
    }

    #[test]
    fn histogram_jsonl_lists_nonempty_buckets() {
        let mut h = HistogramData::new();
        h.record(3);
        h.record(3);
        h.record(100);
        let mut out = Vec::new();
        write_histogram_jsonl(&mut out, "lat", &h).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("\"name\":\"lat\""), "{s}");
        assert!(s.contains("{\"lo\":2,\"hi\":3,\"n\":2}"), "{s}");
        assert!(s.contains("\"count\":3"), "{s}");
    }
}
