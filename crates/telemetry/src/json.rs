//! Tiny hand-rolled JSON emission helpers (the workspace carries no real
//! serialization dependency — see `vendor/README.md`).

/// Appends `s` as a quoted, escaped JSON string.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float as a JSON number (`null` for non-finite values).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Trim to a stable short form; full precision is irrelevant for
        // telemetry consumers and bloats the files.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".into()
        } else {
            s.to_string()
        }
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn numbers_are_trimmed() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(2.0), "2");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "null");
    }
}
