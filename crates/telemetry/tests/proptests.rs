//! Property-based tests on the telemetry data structures.
//!
//! These run in both feature modes: `HistogramData` and `RingBuffer` are
//! compiled unconditionally, so `cargo test --no-default-features` exercises
//! the same properties.

use aqua_telemetry::hist::BUCKET_COUNT;
use aqua_telemetry::{HistogramData, RingBuffer, Span, WallProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every value lands in a bucket whose inclusive bounds contain it.
    #[test]
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let i = HistogramData::bucket_index(v);
        let (lo, hi) = HistogramData::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
    }

    /// Percentiles stay inside the rank sample's bucket (the factor-of-two
    /// interpolation guarantee) and inside the observed `[min, max]` range.
    #[test]
    fn percentiles_interpolate_within_the_rank_bucket(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..200),
        q_mil in 1u64..=1000,
    ) {
        let mut h = HistogramData::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        let q = q_mil as f64 / 1000.0;
        let p = h.percentile(q);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let (lo, hi) = HistogramData::bucket_bounds(HistogramData::bucket_index(exact));
        prop_assert!(
            p >= lo as f64 && p <= hi as f64,
            "p({q}) = {p} outside bucket [{lo}, {hi}] of exact rank sample {exact}"
        );
        prop_assert!(p >= sorted[0] as f64 && p <= *sorted.last().unwrap() as f64);
    }

    /// Quantiles are monotone in `q`.
    #[test]
    fn percentiles_are_monotone_in_q(
        samples in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut h = HistogramData::new();
        for &s in &samples {
            h.record(s);
        }
        let qs = [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.percentile(w[0]) <= h.percentile(w[1]));
        }
    }

    /// Merging two histograms is identical to recording every sample into
    /// one, including counts, sum, min/max, and all bucket contents.
    #[test]
    fn merge_equals_recording_everything(
        a_samples in prop::collection::vec(any::<u64>(), 0..100),
        b_samples in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut a = HistogramData::new();
        let mut b = HistogramData::new();
        let mut both = HistogramData::new();
        for &s in &a_samples {
            a.record(s);
            both.record(s);
        }
        for &s in &b_samples {
            b.record(s);
            both.record(s);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &both);
        prop_assert_eq!(a.count(), (a_samples.len() + b_samples.len()) as u64);
        prop_assert_eq!(a.summary(), both.summary());
    }

    /// A full ring retains exactly the newest `capacity` entries, in push
    /// order, and accounts for every overflow in `dropped()`.
    #[test]
    fn ring_wraparound_drops_oldest_first(
        values in prop::collection::vec(any::<u32>(), 0..200),
        capacity in 1usize..16,
    ) {
        let mut rb = RingBuffer::new(capacity);
        for &v in &values {
            rb.push(v);
        }
        let kept = values.len().min(capacity);
        let expected: Vec<u32> = values[values.len() - kept..].to_vec();
        prop_assert_eq!(rb.iter().copied().collect::<Vec<_>>(), expected);
        prop_assert_eq!(rb.len(), kept);
        prop_assert_eq!(rb.offered(), values.len() as u64);
        prop_assert_eq!(rb.dropped(), (values.len() - kept) as u64);
    }

    /// A capacity-0 ring rejects everything but still counts offers.
    #[test]
    fn ring_capacity_zero_drops_everything(n in 0u64..100) {
        let mut rb = RingBuffer::new(0);
        for v in 0..n {
            rb.push(v);
        }
        prop_assert!(rb.is_empty());
        prop_assert_eq!(rb.offered(), n);
        prop_assert_eq!(rb.dropped(), n);
    }

    /// Histogram merging is associative and preserves count/sum/min/max and
    /// every bucket no matter how the samples are partitioned across jobs —
    /// the property the parallel runner's telemetry merge relies on.
    #[test]
    fn merge_is_partition_independent(
        samples in prop::collection::vec(any::<u64>(), 1..120),
        cut_a in 0usize..120,
        cut_b in 0usize..120,
    ) {
        let cut_a = cut_a.min(samples.len());
        let cut_b = cut_b.min(samples.len()).max(cut_a);
        let mut parts = [HistogramData::new(), HistogramData::new(), HistogramData::new()];
        let mut whole = HistogramData::new();
        for (i, &s) in samples.iter().enumerate() {
            let p = if i < cut_a { 0 } else if i < cut_b { 1 } else { 2 };
            parts[p].record(s);
            whole.record(s);
        }
        // Left-fold (merged[0] <- 1 <- 2) vs right-fold (1 <- 2 first).
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right_tail = parts[1].clone();
        right_tail.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(&right, &whole);
        prop_assert_eq!(left.count(), samples.len() as u64);
        prop_assert_eq!(left.sum(), samples.iter().map(|&s| s as u128).sum::<u128>());
        prop_assert_eq!(left.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(left.max(), *samples.iter().max().unwrap());
        prop_assert_eq!(left.buckets(), whole.buckets());
    }

    /// Ring merging replays retained entries in order and never loses the
    /// offered/dropped accounting of either side.
    #[test]
    fn ring_merge_accounts_for_both_sides(
        a_values in prop::collection::vec(any::<u32>(), 0..60),
        b_values in prop::collection::vec(any::<u32>(), 0..60),
        cap_a in 1usize..12,
        cap_b in 1usize..12,
    ) {
        let mut a = RingBuffer::new(cap_a);
        for &v in &a_values {
            a.push(v);
        }
        let mut b = RingBuffer::new(cap_b);
        for &v in &b_values {
            b.push(v);
        }
        // Pushing b's retained entries by hand must be indistinguishable.
        let mut expect = a.clone();
        for v in b.iter().copied().collect::<Vec<_>>() {
            expect.push(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.iter().copied().collect::<Vec<_>>(),
                        expect.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(a.offered(), (a_values.len() + b_values.len()) as u64);
        let retained = a.len() as u64;
        prop_assert_eq!(a.dropped(), a.offered() - retained);
    }

    /// Merge accounting holds at *any* capacity, including zero on either
    /// side: `offered` always counts every entry either ring ever saw and
    /// `dropped` is exactly `offered - retained`.
    #[test]
    fn ring_merge_accounting_covers_zero_capacity(
        a_values in prop::collection::vec(any::<u32>(), 0..40),
        b_values in prop::collection::vec(any::<u32>(), 0..40),
        cap_a in 0usize..8,
        cap_b in 0usize..8,
    ) {
        let mut a = RingBuffer::new(cap_a);
        for &v in &a_values {
            a.push(v);
        }
        let mut b = RingBuffer::new(cap_b);
        for &v in &b_values {
            b.push(v);
        }
        let b_offered = b.offered();
        let b_dropped = b.dropped();
        prop_assert_eq!(b_offered, b_values.len() as u64);
        prop_assert_eq!(b_dropped, b_offered - b.len() as u64);
        a.merge_from(&b);
        prop_assert_eq!(a.offered(), (a_values.len() + b_values.len()) as u64);
        prop_assert_eq!(a.dropped(), a.offered() - a.len() as u64);
        prop_assert!(a.len() <= cap_a);
        // The donor ring is untouched by the merge.
        prop_assert_eq!((b.offered(), b.dropped()), (b_offered, b_dropped));
    }

    /// Mapped merge is plain merge composed with the map on retained
    /// entries; the offered/dropped accounting is identical.
    #[test]
    fn ring_mapped_merge_matches_plain_merge(
        a_values in prop::collection::vec(any::<u32>(), 0..40),
        b_values in prop::collection::vec(any::<u32>(), 0..40),
        cap in 0usize..8,
        offset in 0u32..1000,
    ) {
        let mut plain = RingBuffer::new(cap);
        let mut mapped = RingBuffer::new(cap);
        for &v in &a_values {
            plain.push(v);
            mapped.push(v);
        }
        let mut b = RingBuffer::new(4);
        for &v in &b_values {
            b.push(v % 1000);
        }
        let mut b_shifted = RingBuffer::new(4);
        for &v in &b_values {
            b_shifted.push(v % 1000 + offset);
        }
        plain.merge_from(&b_shifted);
        mapped.merge_from_with(&b, |&v| v + offset);
        prop_assert_eq!(plain.iter().collect::<Vec<_>>(), mapped.iter().collect::<Vec<_>>());
        prop_assert_eq!(plain.offered(), mapped.offered());
        prop_assert_eq!(plain.dropped(), mapped.dropped());
    }

    /// Wallclock-profile merging is partition-independent: splitting the
    /// same phase records across forked profiles and merging back (in
    /// either fold order) reproduces counts, total/child nanoseconds, and
    /// min/max exactly — the property the matrix runner's fork/merge path
    /// relies on for deterministic phase counts.
    #[test]
    fn wall_profile_merge_is_partition_independent(
        records in prop::collection::vec(
            (0usize..4, 0u64..1_000_000, 0u64..1_000), 0..80),
        cut_a in 0usize..80,
        cut_b in 0usize..80,
    ) {
        const PATHS: [&str; 4] = [
            "sim.run",
            "sim.run;sim.epoch",
            "sim.run;sim.epoch_end",
            "bench.run",
        ];
        let cut_a = cut_a.min(records.len());
        let cut_b = cut_b.min(records.len()).max(cut_a);
        let mut whole = WallProfile::new();
        let mut parts = [WallProfile::new(), WallProfile::new(), WallProfile::new()];
        for (i, &(p, total, child)) in records.iter().enumerate() {
            let child = child.min(total);
            whole.record(PATHS[p], total, child);
            let part = if i < cut_a { 0 } else if i < cut_b { 1 } else { 2 };
            parts[part].record(PATHS[p], total, child);
        }
        // Left fold (0 <- 1 <- 2) vs right fold (1 <- 2 first).
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        let mut right_tail = parts[1].clone();
        right_tail.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(&right, &whole);
        for (path, stats) in whole.paths() {
            prop_assert_eq!(left.path(path), Some(stats));
        }
    }

    /// Span rings never panic at capacity zero: pushes and merges (mapped
    /// or not) are safe, retain nothing, and count everything as dropped.
    #[test]
    fn span_ring_capacity_zero_never_panics(n in 0u64..60, m in 0u64..60) {
        let span = |id: u64| Span {
            id,
            parent: id.checked_sub(1).filter(|&p| p > 0),
            name: "sim.mitigation",
            start_ps: id * 10,
            end_ps: id * 10 + 5,
        };
        let mut zero = RingBuffer::new(0);
        for id in 1..=n {
            zero.push(span(id));
        }
        let mut donor = RingBuffer::new(8);
        for id in 1..=m {
            donor.push(span(id));
        }
        zero.merge_from_with(&donor, |s| Span { id: s.id + n, ..*s });
        prop_assert!(zero.is_empty());
        prop_assert_eq!(zero.offered(), n + m);
        prop_assert_eq!(zero.dropped(), n + m);
        // And merging *from* a zero-capacity ring only carries counts.
        let mut sink = RingBuffer::new(4);
        sink.merge_from(&zero);
        prop_assert!(sink.is_empty());
        prop_assert_eq!(sink.dropped(), n + m);
    }
}

/// Nested spans through the hub never panic when the span ring has
/// capacity zero, and the drop accounting stays exact (feature-gated: the
/// hub only exists with `enabled`).
#[cfg(feature = "enabled")]
#[test]
fn hub_span_stack_survives_zero_capacity_ring() {
    use aqua_telemetry::{Telemetry, TelemetryConfig};
    let t = Telemetry::new(TelemetryConfig {
        span_capacity: 0,
        ..Default::default()
    });
    for depth in 0..5usize {
        let guards: Vec<_> = (0..depth)
            .map(|d| t.span_start("nested", d as u64))
            .collect();
        for g in guards.into_iter().rev() {
            g.end(100);
        }
    }
    assert!(t.spans().is_empty());
    let s = t.summary().unwrap();
    assert_eq!(s.spans_recorded, 10); // 0+1+2+3+4
    assert_eq!(s.spans_dropped, 10);
}

/// The 65 buckets tile the full `u64` range with no gaps or overlaps.
#[test]
fn buckets_tile_u64_contiguously() {
    assert_eq!(HistogramData::bucket_bounds(0), (0, 0));
    for i in 0..BUCKET_COUNT - 1 {
        let (_, hi) = HistogramData::bucket_bounds(i);
        let (next_lo, _) = HistogramData::bucket_bounds(i + 1);
        assert_eq!(hi + 1, next_lo, "gap between buckets {i} and {}", i + 1);
    }
    assert_eq!(HistogramData::bucket_bounds(BUCKET_COUNT - 1).1, u64::MAX);
}
