//! Per-bank Misra-Gries / Space-Saving aggressor tracker (Graphene-style).

use crate::{AggressorTracker, TrackerConfig, TrackerDecision, TrackerStats};
use aqua_dram::RowAddr;
use aqua_fastmap::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

/// One bank's Space-Saving summary.
///
/// Invariant: `counts` and `buckets` describe the same multiset — every
/// tracked row appears in exactly one bucket, keyed by its current count.
///
/// Both hash containers use the deterministic [`aqua_fastmap`] hasher: the
/// replacement victim is chosen by set iteration order, which with the
/// seedless hasher is a pure function of the insertion history — identical
/// access streams evict identical rows in every process.
#[derive(Debug, Default)]
struct BankSummary {
    counts: FxHashMap<u32, u64>,
    buckets: BTreeMap<u64, FxHashSet<u32>>,
    replacements: u64,
}

impl BankSummary {
    fn len(&self) -> usize {
        self.counts.len()
    }

    fn min_count(&self) -> u64 {
        self.buckets.keys().next().copied().unwrap_or(0)
    }

    fn move_bucket(&mut self, row: u32, from: u64, to: u64) {
        let empty = {
            let set = self
                .buckets
                .get_mut(&from)
                .expect("bucket for tracked count must exist");
            set.remove(&row);
            set.is_empty()
        };
        if empty {
            self.buckets.remove(&from);
        }
        self.buckets.entry(to).or_default().insert(row);
    }

    /// Records one activation; returns the row's new estimated count.
    fn touch(&mut self, row: u32, capacity: usize) -> u64 {
        if let Some(count) = self.counts.get_mut(&row) {
            let old = *count;
            *count += 1;
            let new = *count;
            self.move_bucket(row, old, new);
            return new;
        }
        if self.len() < capacity {
            self.counts.insert(row, 1);
            self.buckets.entry(1).or_default().insert(row);
            return 1;
        }
        // Table full: replace a minimum-count entry. The newcomer inherits
        // min + 1 — the overestimate that causes the paper's spurious
        // mitigations (section IV-F).
        let min = self.min_count();
        let victim = *self
            .buckets
            .get(&min)
            .and_then(|s| s.iter().next())
            .expect("non-empty summary must have a min bucket");
        self.counts.remove(&victim);
        if let Some(set) = self.buckets.get_mut(&min) {
            set.remove(&victim);
            if set.is_empty() {
                self.buckets.remove(&min);
            }
        }
        self.replacements += 1;
        let new = min + 1;
        self.counts.insert(row, new);
        self.buckets.entry(new).or_default().insert(row);
        new
    }

    fn clear(&mut self) {
        self.counts.clear();
        self.buckets.clear();
    }

    /// Injected fault: pegs every tracked row's count to `value`. All rows
    /// land in one bucket, so the summary invariant holds and the end state
    /// is independent of map iteration order.
    fn saturate_to(&mut self, value: u64) {
        let rows: Vec<u32> = self.counts.keys().copied().collect();
        if rows.is_empty() {
            return;
        }
        self.counts.clear();
        self.buckets.clear();
        for &row in &rows {
            self.counts.insert(row, value);
        }
        self.buckets.insert(value, rows.into_iter().collect());
    }
}

/// Graphene-style per-bank Misra-Gries (Space-Saving) tracker.
///
/// Guarantee: with `entries_per_bank >= ACTmax / A`, any row that receives `A`
/// activations within an epoch is flagged at or before its `A`-th activation
/// (the summary may *overestimate* counts, never underestimate by more than
/// the minimum count, which the sizing keeps below `A`).
///
/// # Example
///
/// ```
/// use aqua_dram::{BankId, RowAddr};
/// use aqua_tracker::{AggressorTracker, MisraGriesTracker, TrackerConfig};
///
/// let mut t = MisraGriesTracker::new(TrackerConfig::with_mitigation_threshold(10), 4);
/// let row = RowAddr { bank: BankId::new(1), row: 3 };
/// let fired: u32 = (0..25).map(|_| t.on_activation(row).mitigate() as u32).sum();
/// assert_eq!(fired, 2); // at counts 10 and 20
/// ```
#[derive(Debug)]
pub struct MisraGriesTracker {
    config: TrackerConfig,
    banks: Vec<BankSummary>,
    stats: TrackerStats,
}

impl MisraGriesTracker {
    /// Creates a tracker with one summary per bank.
    pub fn new(config: TrackerConfig, banks: u32) -> Self {
        MisraGriesTracker {
            config,
            banks: (0..banks).map(|_| BankSummary::default()).collect(),
            stats: TrackerStats::default(),
        }
    }

    /// The configured mitigation threshold `A`.
    pub fn mitigation_threshold(&self) -> u64 {
        self.config.mitigation_threshold
    }

    /// Current estimated count for `row`, if tracked.
    pub fn estimate(&self, row: RowAddr) -> Option<u64> {
        self.banks
            .get(row.bank.index() as usize)
            .and_then(|b| b.counts.get(&row.row).copied())
    }
}

impl AggressorTracker for MisraGriesTracker {
    fn on_activation(&mut self, row: RowAddr) -> TrackerDecision {
        self.stats.activations += 1;
        let bank = self
            .banks
            .get_mut(row.bank.index() as usize)
            .expect("bank index within configured bank count");
        let before_replacements = bank.replacements;
        let count = bank.touch(row.row, self.config.entries_per_bank);
        self.stats.replacements += bank.replacements - before_replacements;
        if count >= self.config.mitigation_threshold
            && count.is_multiple_of(self.config.mitigation_threshold)
        {
            self.stats.mitigations += 1;
            TrackerDecision::trigger(count)
        } else {
            TrackerDecision::quiet(count)
        }
    }

    fn end_epoch(&mut self) {
        for bank in &mut self.banks {
            bank.clear();
        }
        self.stats.epochs += 1;
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn sram_bits(&self) -> u64 {
        // Per entry: 17-bit row address (128K rows/bank), 21-bit counter
        // (counts up to ACTmax), valid bit. CAM/comparator overhead excluded.
        let bits_per_entry = 17 + 21 + 1;
        self.banks.len() as u64 * self.config.entries_per_bank as u64 * bits_per_entry
    }

    fn inject_reset(&mut self) -> bool {
        for bank in &mut self.banks {
            bank.clear();
        }
        true
    }

    fn inject_saturate(&mut self) -> bool {
        // One shy of the threshold: the very next touch of any tracked row
        // crosses it and fires a spurious mitigation.
        let target = self.config.mitigation_threshold.saturating_sub(1).max(1);
        for bank in &mut self.banks {
            bank.saturate_to(target);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn row(bank: u32, row: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(bank),
            row,
        }
    }

    fn tracker(a: u64, entries: usize) -> MisraGriesTracker {
        MisraGriesTracker::new(
            TrackerConfig::with_mitigation_threshold(a).entries_per_bank(entries),
            4,
        )
    }

    #[test]
    fn fires_at_every_multiple_of_threshold() {
        let mut t = tracker(100, 8);
        let mut fired = vec![];
        for i in 1..=350u64 {
            if t.on_activation(row(0, 1)).mitigate() {
                fired.push(i);
            }
        }
        assert_eq!(fired, vec![100, 200, 300]);
        assert_eq!(t.stats().mitigations, 3);
    }

    #[test]
    fn separate_banks_do_not_interfere() {
        let mut t = tracker(10, 8);
        for _ in 0..9 {
            assert!(!t.on_activation(row(0, 5)).mitigate());
            assert!(!t.on_activation(row(1, 5)).mitigate());
        }
        assert!(t.on_activation(row(0, 5)).mitigate());
        assert!(t.on_activation(row(1, 5)).mitigate());
    }

    #[test]
    fn replacement_inherits_min_count() {
        let mut t = tracker(100, 2);
        // Fill the 2-entry bank summary.
        for _ in 0..5 {
            t.on_activation(row(0, 1));
        }
        for _ in 0..3 {
            t.on_activation(row(0, 2));
        }
        // New row evicts the min (count 3) and starts at 4.
        let d = t.on_activation(row(0, 3));
        assert_eq!(d.estimate(), 4);
        assert_eq!(t.estimate(row(0, 2)), None);
        assert_eq!(t.stats().replacements, 1);
    }

    #[test]
    fn spurious_mitigation_from_spill() {
        // Paper IV-F: a fresh row can inherit a near-threshold count and
        // trigger a mitigation it never earned.
        let mut t = tracker(10, 1);
        for _ in 0..9 {
            t.on_activation(row(0, 1));
        }
        // Row 2 replaces row 1, inheriting count 9 + 1 = 10 -> fires.
        let d = t.on_activation(row(0, 2));
        assert!(d.mitigate());
        assert_eq!(d.estimate(), 10);
    }

    #[test]
    fn never_undercounts() {
        // Estimated count >= true count for every tracked row, always.
        let mut t = tracker(50, 4);
        let mut truth: std::collections::HashMap<u32, u64> = Default::default();
        let pattern = [1u32, 2, 1, 3, 4, 5, 1, 2, 6, 1, 7, 1, 1, 2, 3];
        for &r in pattern.iter().cycle().take(600) {
            *truth.entry(r).or_default() += 1;
            t.on_activation(row(0, r));
            if let Some(est) = t.estimate(row(0, r)) {
                assert!(est >= truth[&r], "row {r}: est {est} < true {}", truth[&r]);
            }
        }
    }

    #[test]
    fn epoch_reset_clears_counts() {
        let mut t = tracker(10, 4);
        for _ in 0..9 {
            t.on_activation(row(0, 1));
        }
        t.end_epoch();
        assert_eq!(t.estimate(row(0, 1)), None);
        // After reset, 9 more activations do not fire (would have at 10).
        for _ in 0..9 {
            assert!(!t.on_activation(row(0, 1)).mitigate());
        }
        assert_eq!(t.stats().epochs, 1);
    }

    #[test]
    fn guarantee_with_graphene_sizing() {
        // With entries >= ACTs/threshold, a hot row among background noise is
        // always flagged by its A-th activation.
        let a = 20;
        let total_acts = 400;
        let entries = (total_acts / a) as usize; // Graphene sizing
        let mut t = tracker(a, entries);
        let mut hot_acts = 0;
        let mut flagged = false;
        for i in 0..total_acts {
            if i % 2 == 0 {
                hot_acts += 1;
                if t.on_activation(row(0, 9999)).mitigate() {
                    flagged = true;
                    break;
                }
            } else {
                t.on_activation(row(0, i as u32)); // unique cold rows
            }
        }
        assert!(flagged, "hot row not flagged");
        assert!(hot_acts <= a, "flagged only after {hot_acts} > {a} ACTs");
    }

    #[test]
    fn injected_reset_blinds_the_tracker() {
        let mut t = tracker(10, 4);
        for _ in 0..9 {
            t.on_activation(row(0, 1));
        }
        assert!(t.inject_reset());
        assert_eq!(t.estimate(row(0, 1)), None);
        // Counters restart from scratch: 9 more touches stay quiet.
        for _ in 0..9 {
            assert!(!t.on_activation(row(0, 1)).mitigate());
        }
        // A mid-epoch reset is not an epoch boundary.
        assert_eq!(t.stats().epochs, 0);
    }

    #[test]
    fn injected_saturation_fires_on_next_touch() {
        let mut t = tracker(100, 8);
        t.on_activation(row(0, 1));
        t.on_activation(row(1, 2));
        assert!(t.inject_saturate());
        assert_eq!(t.estimate(row(0, 1)), Some(99));
        assert!(t.on_activation(row(0, 1)).mitigate());
        assert!(t.on_activation(row(1, 2)).mitigate());
        // Untracked rows are unaffected.
        assert!(!t.on_activation(row(0, 3)).mitigate());
    }

    #[test]
    fn sram_bits_scale_with_entries() {
        let small = tracker(100, 10).sram_bits();
        let large = tracker(100, 100).sram_bits();
        assert_eq!(large, small * 10);
    }
}
