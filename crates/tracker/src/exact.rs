//! Idealized exact per-row tracker.

use crate::{AggressorTracker, TrackerDecision, TrackerStats};
use aqua_dram::RowAddr;
use aqua_fastmap::FxHashMap;

/// An idealized tracker with one exact counter per accessed row.
///
/// Never issues spurious mitigations and never misses a row, but its storage
/// grows with the footprint (it models an "ideal tracker", as used for the
/// Blockhammer comparison in section VII-B). Useful in tests as ground truth
/// for the Misra-Gries overestimate.
#[derive(Debug)]
pub struct ExactTracker {
    threshold: u64,
    counts: FxHashMap<RowAddr, u64>,
    stats: TrackerStats,
}

impl ExactTracker {
    /// Creates an exact tracker that mitigates every `threshold` activations
    /// of a row within an epoch.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        ExactTracker {
            threshold,
            counts: FxHashMap::default(),
            stats: TrackerStats::default(),
        }
    }

    /// Exact count for `row` in the current epoch.
    pub fn count(&self, row: RowAddr) -> u64 {
        self.counts.get(&row).copied().unwrap_or(0)
    }

    /// Number of distinct rows activated this epoch.
    pub fn tracked_rows(&self) -> usize {
        self.counts.len()
    }
}

impl AggressorTracker for ExactTracker {
    fn on_activation(&mut self, row: RowAddr) -> TrackerDecision {
        self.stats.activations += 1;
        let count = self.counts.entry(row).or_insert(0);
        *count += 1;
        if (*count).is_multiple_of(self.threshold) {
            self.stats.mitigations += 1;
            TrackerDecision::trigger(*count)
        } else {
            TrackerDecision::quiet(*count)
        }
    }

    fn end_epoch(&mut self) {
        self.counts.clear();
        self.stats.epochs += 1;
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn sram_bits(&self) -> u64 {
        // 21-bit global row id + 21-bit counter per live entry.
        self.counts.len() as u64 * (21 + 21)
    }

    fn inject_reset(&mut self) -> bool {
        self.counts.clear();
        true
    }

    fn inject_saturate(&mut self) -> bool {
        let target = self.threshold.saturating_sub(1).max(1);
        for count in self.counts.values_mut() {
            *count = target;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn row(r: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(0),
            row: r,
        }
    }

    #[test]
    fn fires_exactly_at_multiples() {
        let mut t = ExactTracker::new(5);
        let fired: Vec<u64> = (1..=12)
            .filter(|_| t.on_activation(row(1)).mitigate())
            .collect();
        assert_eq!(fired.len(), 2);
        assert_eq!(t.count(row(1)), 12);
    }

    #[test]
    fn epoch_reset() {
        let mut t = ExactTracker::new(5);
        for _ in 0..4 {
            t.on_activation(row(1));
        }
        t.end_epoch();
        assert_eq!(t.count(row(1)), 0);
        assert_eq!(t.tracked_rows(), 0);
    }

    #[test]
    fn storage_grows_with_footprint() {
        let mut t = ExactTracker::new(5);
        for r in 0..100 {
            t.on_activation(row(r));
        }
        assert_eq!(t.sram_bits(), 100 * 42);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_threshold() {
        ExactTracker::new(0);
    }

    #[test]
    fn injected_faults_reset_and_saturate() {
        let mut t = ExactTracker::new(5);
        for _ in 0..3 {
            t.on_activation(row(1));
        }
        assert!(t.inject_saturate());
        assert_eq!(t.count(row(1)), 4);
        assert!(t.on_activation(row(1)).mitigate());
        assert!(t.inject_reset());
        assert_eq!(t.tracked_rows(), 0);
    }
}
