//! CRA-style per-row counters in DRAM with an on-chip counter cache.
//!
//! CRA (Counter-based Row Activation, Kim et al., IEEE CAL 2014 — reference
//! [14] of the paper) keeps one exact activation counter per DRAM row,
//! stored *in DRAM*, with a small SRAM counter cache absorbing the hot rows'
//! counter traffic. Unlike Misra-Gries it never overestimates (no spurious
//! mitigations), and unlike Hydra it needs no group escalation — but every
//! counter-cache miss costs a DRAM access, which is why later designs
//! (Hydra) added the group level. It is included here as the third point in
//! the tracker design space AQUA can plug into.

use crate::{AggressorTracker, TrackerDecision, TrackerStats};
use aqua_dram::RowAddr;
use aqua_fastmap::FxHashMap;
use serde::{Deserialize, Serialize};

/// CRA tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CraConfig {
    /// Mitigation threshold `A` (activations per row per epoch).
    pub mitigation_threshold: u64,
    /// Entries in the SRAM counter cache.
    pub cache_entries: usize,
    /// Associativity of the counter cache.
    pub cache_ways: usize,
}

impl CraConfig {
    /// A design point comparable to the paper's other trackers: 8K-entry,
    /// 8-way counter cache, mitigating at `t_rh / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh < 2`.
    pub fn for_rowhammer_threshold(t_rh: u64) -> Self {
        assert!(t_rh >= 2, "Rowhammer threshold must be at least 2");
        CraConfig {
            mitigation_threshold: t_rh / 2,
            cache_entries: 8 * 1024,
            cache_ways: 8,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    row: RowAddr,
    count: u64,
    lru: u64,
}

/// Exact per-row counters in DRAM, cached in SRAM.
#[derive(Debug)]
pub struct CraTracker {
    config: CraConfig,
    /// Backing store: the in-DRAM counter table (exact, unbounded).
    dram_counts: FxHashMap<RowAddr, u64>,
    /// Set-associative SRAM counter cache.
    cache: Vec<Option<CacheEntry>>,
    sets: usize,
    lru_clock: u64,
    stats: TrackerStats,
}

impl CraTracker {
    /// Creates the tracker.
    ///
    /// # Panics
    ///
    /// Panics if the cache configuration is degenerate.
    pub fn new(config: CraConfig) -> Self {
        assert!(config.cache_entries >= config.cache_ways && config.cache_ways > 0);
        let sets = config.cache_entries / config.cache_ways;
        CraTracker {
            config,
            dram_counts: FxHashMap::default(),
            cache: vec![None; sets * config.cache_ways],
            sets,
            lru_clock: 0,
            stats: TrackerStats::default(),
        }
    }

    fn set_range(&self, row: RowAddr) -> std::ops::Range<usize> {
        let key = (row.bank.index() as u64) << 32 | row.row as u64;
        let mut x = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 29;
        let set = (x % self.sets as u64) as usize;
        set * self.config.cache_ways..(set + 1) * self.config.cache_ways
    }

    /// The exact count for `row` this epoch (cache or DRAM).
    pub fn count(&self, row: RowAddr) -> u64 {
        for i in self.set_range(row) {
            if let Some(e) = &self.cache[i] {
                if e.row == row {
                    return e.count;
                }
            }
        }
        self.dram_counts.get(&row).copied().unwrap_or(0)
    }
}

impl AggressorTracker for CraTracker {
    fn on_activation(&mut self, row: RowAddr) -> TrackerDecision {
        self.stats.activations += 1;
        self.lru_clock += 1;
        let range = self.set_range(row);
        // Cache hit: increment in place.
        for i in range.clone() {
            if let Some(e) = &mut self.cache[i] {
                if e.row == row {
                    e.count += 1;
                    e.lru = self.lru_clock;
                    let count = e.count;
                    return if count % self.config.mitigation_threshold == 0 {
                        self.stats.mitigations += 1;
                        TrackerDecision::trigger(count)
                    } else {
                        TrackerDecision::quiet(count)
                    };
                }
            }
        }
        // Miss: fetch the counter from DRAM, evicting the set's LRU entry
        // (written back to DRAM) — both cost a DRAM access.
        self.stats.dram_accesses += 1;
        let count = self.dram_counts.entry(row).or_insert(0);
        *count += 1;
        let count = *count;
        let victim = range
            .clone()
            .min_by_key(|&i| self.cache[i].map_or(0, |e| e.lru))
            .expect("non-empty set");
        if let Some(old) = self.cache[victim] {
            self.dram_counts.insert(old.row, old.count);
            self.stats.replacements += 1;
        }
        self.cache[victim] = Some(CacheEntry {
            row,
            count,
            lru: self.lru_clock,
        });
        if count.is_multiple_of(self.config.mitigation_threshold) {
            self.stats.mitigations += 1;
            TrackerDecision::trigger(count)
        } else {
            TrackerDecision::quiet(count)
        }
    }

    fn end_epoch(&mut self) {
        self.dram_counts.clear();
        self.cache.fill(None);
        self.stats.epochs += 1;
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn sram_bits(&self) -> u64 {
        // Tag (21) + counter (21) + valid per cache entry.
        self.config.cache_entries as u64 * (21 + 21 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn row(r: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(0),
            row: r,
        }
    }

    fn tracker(a: u64, entries: usize) -> CraTracker {
        CraTracker::new(CraConfig {
            mitigation_threshold: a,
            cache_entries: entries,
            cache_ways: 4,
        })
    }

    #[test]
    fn exact_counting_through_the_cache() {
        let mut t = tracker(10, 16);
        let fired: Vec<u64> = (1..=25)
            .filter(|_| t.on_activation(row(1)).mitigate())
            .collect();
        assert_eq!(fired.len(), 2); // at 10 and 20
        assert_eq!(t.count(row(1)), 25);
    }

    #[test]
    fn counts_survive_eviction() {
        // Touch many rows so row 1's counter gets evicted to DRAM, then
        // verify the count picks up where it left off.
        let mut t = tracker(100, 8);
        for _ in 0..7 {
            t.on_activation(row(1));
        }
        for r in 100..200 {
            t.on_activation(row(r));
        }
        assert_eq!(t.count(row(1)), 7, "evicted counter must persist in DRAM");
        for _ in 0..3 {
            t.on_activation(row(1));
        }
        assert_eq!(t.count(row(1)), 10);
    }

    #[test]
    fn never_spurious_unlike_misra_gries() {
        // CRA is exact: churning unique rows never pushes anyone over the
        // threshold.
        let mut t = tracker(5, 8);
        for r in 0..10_000u32 {
            assert!(!t.on_activation(row(r)).mitigate());
        }
    }

    #[test]
    fn misses_cost_dram_accesses() {
        let mut t = tracker(100, 8);
        for r in 0..100 {
            t.on_activation(row(r));
        }
        assert!(t.stats().dram_accesses >= 92, "{}", t.stats().dram_accesses);
        // Hot-row re-activations are cache hits.
        let before = t.stats().dram_accesses;
        for _ in 0..10 {
            t.on_activation(row(99));
        }
        assert_eq!(t.stats().dram_accesses, before);
    }

    #[test]
    fn epoch_reset_clears_everything() {
        let mut t = tracker(10, 16);
        for _ in 0..9 {
            t.on_activation(row(1));
        }
        t.end_epoch();
        assert_eq!(t.count(row(1)), 0);
        assert!(!t.on_activation(row(1)).mitigate());
    }

    #[test]
    fn sram_is_cache_only() {
        let t = tracker(500, 8 * 1024);
        let kb = t.sram_bits() / 8 / 1024;
        assert!((40..=48).contains(&kb), "CRA cache = {kb} KB");
    }
}
