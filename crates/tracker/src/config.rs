//! Tracker configuration.

use serde::{Deserialize, Serialize};

/// Configuration shared by all trackers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Mitigation threshold `A`: a mitigation fires every `A` activations of
    /// one row within an epoch. For AQUA this is `T_RH / 2` (section IV-B);
    /// for RRS it is `T_RH / 6` (section II-F).
    pub mitigation_threshold: u64,
    /// Misra-Gries entries per bank. Graphene sizes this as
    /// `ACTmax / mitigation_threshold` so the summary can never miss a row
    /// that crosses the threshold.
    pub entries_per_bank: usize,
}

impl TrackerConfig {
    /// Default AQUA configuration for a given Rowhammer threshold: mitigate
    /// every `t_rh / 2` activations, with Graphene-style entry provisioning
    /// for DDR4-2400 (`ACTmax` = 1360K per bank per 64 ms).
    ///
    /// # Panics
    ///
    /// Panics if `t_rh < 2`.
    pub fn for_rowhammer_threshold(t_rh: u64) -> Self {
        assert!(t_rh >= 2, "Rowhammer threshold must be at least 2");
        Self::with_mitigation_threshold(t_rh / 2)
    }

    /// Configuration with an explicit per-epoch mitigation threshold `A`
    /// (e.g. `T_RH / 6` for RRS).
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero.
    pub fn with_mitigation_threshold(a: u64) -> Self {
        assert!(a > 0, "mitigation threshold must be positive");
        const ACT_MAX: u64 = 1_360_000;
        TrackerConfig {
            mitigation_threshold: a,
            entries_per_bank: (ACT_MAX / a).max(1) as usize,
        }
    }

    /// Overrides the per-bank entry count (for storage studies).
    pub fn entries_per_bank(mut self, entries: usize) -> Self {
        self.entries_per_bank = entries;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aqua_default_is_half_trh() {
        let c = TrackerConfig::for_rowhammer_threshold(1000);
        assert_eq!(c.mitigation_threshold, 500);
        assert_eq!(c.entries_per_bank, 2720);
    }

    #[test]
    fn rrs_style_threshold() {
        let c = TrackerConfig::with_mitigation_threshold(166);
        assert_eq!(c.mitigation_threshold, 166);
        assert!(c.entries_per_bank > 8000);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_trh() {
        TrackerConfig::for_rowhammer_threshold(1);
    }

    #[test]
    fn entry_override() {
        let c = TrackerConfig::for_rowhammer_threshold(1000).entries_per_bank(64);
        assert_eq!(c.entries_per_bank, 64);
    }
}
