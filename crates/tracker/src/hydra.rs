//! Hydra-style hybrid SRAM/DRAM tracker (paper Appendix B).
//!
//! Hydra keeps small *group* counters in SRAM. While a group of rows is cold,
//! one shared counter suffices. Once the group counter crosses a group
//! threshold, Hydra falls back to exact per-row counters stored in DRAM,
//! initialized conservatively to the group-counter value, with a small SRAM
//! row-counter cache (RCC) absorbing most per-row counter accesses.
//!
//! This reproduces the two properties the paper relies on:
//! no undercounting (per-row counters start at the group count, an
//! overestimate) and a tiny SRAM footprint (~28 KB per rank) at the cost of a
//! small number of extra DRAM accesses.

use crate::{AggressorTracker, TrackerDecision, TrackerStats};
use aqua_dram::RowAddr;
use aqua_fastmap::FxHashMap;
use serde::{Deserialize, Serialize};

/// Hydra tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HydraConfig {
    /// Mitigation threshold `A` (activations per row per epoch).
    pub mitigation_threshold: u64,
    /// Number of SRAM group counters.
    pub group_counters: usize,
    /// Rows per group (total rows / group counters, rounded up).
    pub rows_per_group: u32,
    /// Group-counter value at which the group switches to per-row counting.
    pub group_threshold: u64,
    /// Entries in the SRAM row-counter cache.
    pub rcc_entries: usize,
}

impl HydraConfig {
    /// Configuration mirroring the published Hydra design point for a 16 GB
    /// rank (2M rows): 32K group counters (groups of 64 rows), group threshold
    /// at half the mitigation threshold, 4K-entry RCC.
    pub fn for_rowhammer_threshold(t_rh: u64) -> Self {
        let a = (t_rh / 2).max(1);
        HydraConfig {
            mitigation_threshold: a,
            group_counters: 32 * 1024,
            rows_per_group: 64,
            group_threshold: (a / 2).max(1),
            rcc_entries: 4 * 1024,
        }
    }
}

/// Hydra-style hybrid tracker.
///
/// # Example
///
/// ```
/// use aqua_dram::{BankId, RowAddr};
/// use aqua_tracker::{AggressorTracker, HydraConfig, HydraTracker};
///
/// let mut t = HydraTracker::new(HydraConfig::for_rowhammer_threshold(1000), 128 * 1024);
/// let row = RowAddr { bank: BankId::new(0), row: 42 };
/// let fired: u32 = (0..1000).map(|_| t.on_activation(row).mitigate() as u32).sum();
/// assert!(fired >= 1); // conservative overestimates may fire early, never late
/// ```
#[derive(Debug)]
pub struct HydraTracker {
    config: HydraConfig,
    rows_per_bank: u32,
    group_counts: Vec<u64>,
    /// Per-row counters for escalated groups (modelled as residing in DRAM).
    row_counts: FxHashMap<RowAddr, u64>,
    /// Direct-mapped row-counter cache: slot -> row currently cached.
    rcc: Vec<Option<RowAddr>>,
    stats: TrackerStats,
}

impl HydraTracker {
    /// Creates a Hydra tracker for a module with `rows_per_bank` rows per bank.
    pub fn new(config: HydraConfig, rows_per_bank: u32) -> Self {
        HydraTracker {
            config,
            rows_per_bank,
            group_counts: vec![0; config.group_counters],
            row_counts: FxHashMap::default(),
            rcc: vec![None; config.rcc_entries],
            stats: TrackerStats::default(),
        }
    }

    fn group_of(&self, row: RowAddr) -> usize {
        let flat = row.bank.index() as u64 * self.rows_per_bank as u64 + row.row as u64;
        (flat / self.config.rows_per_group as u64) as usize % self.config.group_counters
    }

    fn rcc_slot(&self, row: RowAddr) -> usize {
        let flat = row.bank.index() as u64 * self.rows_per_bank as u64 + row.row as u64;
        (flat as usize) % self.config.rcc_entries
    }

    /// Number of groups currently escalated to per-row counting.
    pub fn escalated_rows(&self) -> usize {
        self.row_counts.len()
    }
}

impl AggressorTracker for HydraTracker {
    fn on_activation(&mut self, row: RowAddr) -> TrackerDecision {
        self.stats.activations += 1;
        let group = self.group_of(row);
        let gcount = &mut self.group_counts[group];
        if *gcount < self.config.group_threshold {
            // Cold group: shared counter only, pure SRAM.
            *gcount += 1;
            return TrackerDecision::quiet(*gcount);
        }
        // Hot group: per-row counter, initialized conservatively to the group
        // count on first touch (never undercounts).
        let init = *gcount;
        let slot = self.rcc_slot(row);
        if self.rcc[slot] != Some(row) {
            // RCC miss: fetch/instantiate the per-row counter from DRAM.
            self.stats.dram_accesses += 1;
            if self.rcc[slot].is_some() {
                self.stats.replacements += 1;
            }
            self.rcc[slot] = Some(row);
        }
        let count = self.row_counts.entry(row).or_insert(init);
        *count += 1;
        if *count >= self.config.mitigation_threshold
            && (*count).is_multiple_of(self.config.mitigation_threshold)
        {
            self.stats.mitigations += 1;
            TrackerDecision::trigger(*count)
        } else {
            TrackerDecision::quiet(*count)
        }
    }

    fn end_epoch(&mut self) {
        self.group_counts.fill(0);
        self.row_counts.clear();
        self.rcc.fill(None);
        self.stats.epochs += 1;
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn sram_bits(&self) -> u64 {
        // Group counters (each wide enough for the group threshold) plus the
        // RCC (tag + counter per entry). Per-row counters live in DRAM.
        let gc_bits = self.config.group_counters as u64 * 5;
        let rcc_bits = self.config.rcc_entries as u64 * (21 + 21 + 1);
        gc_bits + rcc_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn row(r: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(0),
            row: r,
        }
    }

    fn config(a: u64) -> HydraConfig {
        HydraConfig {
            mitigation_threshold: a,
            group_counters: 64,
            rows_per_group: 4,
            group_threshold: a / 2,
            rcc_entries: 16,
        }
    }

    #[test]
    fn cold_groups_stay_in_sram() {
        let mut t = HydraTracker::new(config(100), 1024);
        for _ in 0..49 {
            t.on_activation(row(1));
        }
        assert_eq!(t.stats().dram_accesses, 0);
        assert_eq!(t.escalated_rows(), 0);
    }

    #[test]
    fn hot_group_escalates_and_fires() {
        let mut t = HydraTracker::new(config(100), 1024);
        let mut fired_at = None;
        for i in 1..=150u64 {
            if t.on_activation(row(1)).mitigate() {
                fired_at = Some(i);
                break;
            }
        }
        // Conservative init can make it fire early; never later than 100.
        let at = fired_at.expect("must fire by the 100th activation");
        assert!(at <= 100, "fired at {at}");
        assert!(t.stats().dram_accesses >= 1);
    }

    #[test]
    fn never_undercounts_vs_truth() {
        let mut t = HydraTracker::new(config(40), 1024);
        let mut truth = 0u64;
        for _ in 0..60 {
            truth += 1;
            let d = t.on_activation(row(7));
            assert!(d.estimate() >= truth.min(d.estimate()));
        }
        // The per-row estimate is at least the activations since escalation
        // plus the group count at escalation, i.e. >= true count.
        let d = t.on_activation(row(7));
        truth += 1;
        assert!(d.estimate() >= truth);
    }

    #[test]
    fn group_sharing_is_conservative() {
        // Two rows in the same group share the group counter while cold, so
        // the first escalated row inherits the *combined* count (safe side).
        let mut t = HydraTracker::new(config(100), 1024);
        for _ in 0..25 {
            t.on_activation(row(0));
            t.on_activation(row(1)); // same group of 4 rows
        }
        // Group crossed threshold (50) at combined count; row 0's estimate
        // now exceeds its true count of ~25.
        let d = t.on_activation(row(0));
        assert!(d.estimate() > 25);
    }

    #[test]
    fn rcc_misses_cost_dram_accesses() {
        let mut t = HydraTracker::new(config(10), 1024);
        // Escalate one group (rows 0..4).
        for _ in 0..5 {
            t.on_activation(row(0));
        }
        let before = t.stats().dram_accesses;
        // Alternate two rows that collide in the 16-entry RCC (0 and 16 map
        // to slot 0 but are in different groups; use rows 0 and 1 which share
        // the group but different RCC slots -> each misses only once).
        t.on_activation(row(0));
        t.on_activation(row(1));
        t.on_activation(row(0));
        t.on_activation(row(1));
        let misses = t.stats().dram_accesses - before;
        assert!(misses <= 2, "expected <=2 cold misses, got {misses}");
    }

    #[test]
    fn epoch_reset_clears_everything() {
        let mut t = HydraTracker::new(config(10), 1024);
        for _ in 0..20 {
            t.on_activation(row(3));
        }
        t.end_epoch();
        assert_eq!(t.escalated_rows(), 0);
        let d = t.on_activation(row(3));
        assert_eq!(d.estimate(), 1);
    }

    #[test]
    fn sram_is_much_smaller_than_exact() {
        let paper = HydraConfig::for_rowhammer_threshold(1000);
        let t = HydraTracker::new(paper, 128 * 1024);
        // ~28 KB per rank in the paper; our accounting lands in the tens of KB.
        let kb = t.sram_bits() as f64 / 8.0 / 1024.0;
        assert!(kb < 64.0, "Hydra SRAM {kb} KB");
    }
}
