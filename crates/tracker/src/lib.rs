//! Aggressor-row trackers (the "ART" of the AQUA paper, section IV-B).
//!
//! A tracker watches the stream of DRAM row activations and decides when a row
//! has accrued enough activations within the current 64 ms epoch to require a
//! mitigation (quarantine for AQUA, swap for RRS, extra refresh for
//! victim-refresh schemes).
//!
//! Four trackers are provided:
//!
//! - [`MisraGriesTracker`] — the per-bank Misra-Gries / Space-Saving summary
//!   used by Graphene, RRS, and AQUA's default configuration. It guarantees
//!   that no row crosses the threshold undetected, at the cost of *spurious*
//!   mitigations: a newly installed entry inherits the minimum (spill) count,
//!   which the paper calls out as the source of unnecessary mitigations in
//!   workloads like `imagick` (section IV-F).
//! - [`ExactTracker`] — an idealized per-row counter (no spurious mitigations,
//!   unbounded SRAM); used as the "ideal tracker" baseline in the Blockhammer
//!   comparison.
//! - [`HydraTracker`] — a storage-optimized hybrid in the style of Hydra: small
//!   SRAM group counters that fall back to per-row counters "in DRAM" once a
//!   group gets hot, trading a small number of extra DRAM accesses for a much
//!   smaller SRAM footprint (paper Appendix B).
//! - [`CraTracker`] — CRA-style exact per-row counters in DRAM behind an SRAM
//!   counter cache (reference [14] of the paper): never spurious, but every
//!   counter-cache miss is a DRAM access.
//!
//! All trackers share the [`AggressorTracker`] trait and the epoch-reset
//! semantics of section VI-A property P1: the tracker is reset every epoch, so
//! the effective mitigation threshold must be `T_RH / 2` to guarantee that no
//! row reaches `T_RH` activations in any 64 ms window spanning two epochs.
//!
//! # Example
//!
//! ```
//! use aqua_dram::{BankId, RowAddr};
//! use aqua_tracker::{AggressorTracker, MisraGriesTracker, TrackerConfig};
//!
//! let cfg = TrackerConfig::for_rowhammer_threshold(1000); // mitigate at 500
//! let mut tracker = MisraGriesTracker::new(cfg, 16);
//! let row = RowAddr { bank: BankId::new(0), row: 7 };
//! let mut mitigations = 0;
//! for _ in 0..1000 {
//!     if tracker.on_activation(row).mitigate() {
//!         mitigations += 1;
//!     }
//! }
//! assert_eq!(mitigations, 2); // at 500 and at 1000 activations
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod cra;
mod exact;
mod hydra;
mod misra_gries;

pub use config::TrackerConfig;
pub use cra::{CraConfig, CraTracker};
pub use exact::ExactTracker;
pub use hydra::{HydraConfig, HydraTracker};
pub use misra_gries::MisraGriesTracker;

use aqua_dram::RowAddr;
use serde::{Deserialize, Serialize};

/// The verdict a tracker returns for one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerDecision {
    /// Whether the row just crossed a mitigation threshold.
    mitigate: bool,
    /// The tracker's (possibly overestimated) activation count for the row.
    estimate: u64,
}

impl TrackerDecision {
    /// A decision that requires no mitigation.
    pub const fn quiet(estimate: u64) -> Self {
        TrackerDecision {
            mitigate: false,
            estimate,
        }
    }

    /// A decision that triggers a mitigation.
    pub const fn trigger(estimate: u64) -> Self {
        TrackerDecision {
            mitigate: true,
            estimate,
        }
    }

    /// Whether a mitigation must be performed now.
    pub fn mitigate(self) -> bool {
        self.mitigate
    }

    /// The tracker's activation-count estimate for the row.
    pub fn estimate(self) -> u64 {
        self.estimate
    }
}

aqua_telemetry::stat_struct! {
    /// Cumulative tracker statistics.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct TrackerStats {
        /// Activations observed.
        pub activations: u64,
        /// Mitigations signalled.
        pub mitigations: u64,
        /// Entry replacements (Misra-Gries evictions / Hydra spills).
        pub replacements: u64,
        /// Extra DRAM accesses incurred by the tracker itself (Hydra).
        pub dram_accesses: u64,
        /// Epochs completed.
        pub epochs: u64,
    }
}

/// Common interface of all aggressor-row trackers.
///
/// The tracker is indexed with the *physical* row address — i.e. the address
/// after consulting the mitigation scheme's indirection table (paper property
/// P3) — so that quarantined rows are themselves tracked at their new
/// locations.
pub trait AggressorTracker: std::fmt::Debug {
    /// Records one activation of `row`; returns whether to mitigate now.
    fn on_activation(&mut self, row: RowAddr) -> TrackerDecision;

    /// Resets per-epoch state at the 64 ms epoch boundary.
    fn end_epoch(&mut self);

    /// Cumulative statistics.
    fn stats(&self) -> TrackerStats;

    /// SRAM footprint of the tracker state, in bits.
    fn sram_bits(&self) -> u64;

    /// Injected fault: wipes every per-epoch counter mid-epoch, leaving the
    /// tracker blind until rows are re-observed. Returns `false` if this
    /// tracker does not support counter injection (the fault is then
    /// reported as unsupported rather than silently ignored).
    fn inject_reset(&mut self) -> bool {
        false
    }

    /// Injected fault: saturates every tracked counter to just below the
    /// mitigation threshold, so the next touch of any tracked row fires a
    /// spurious mitigation (migration-storm pressure). Returns `false` if
    /// unsupported.
    fn inject_saturate(&mut self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessors() {
        let q = TrackerDecision::quiet(3);
        assert!(!q.mitigate());
        assert_eq!(q.estimate(), 3);
        let t = TrackerDecision::trigger(500);
        assert!(t.mitigate());
        assert_eq!(t.estimate(), 500);
    }
}
