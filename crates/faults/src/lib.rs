//! Deterministic fault injection for the AQUA simulator.
//!
//! AQUA's security argument (paper §IV-D, §VI) rests on the quarantine
//! pipeline never *silently* losing a mapping: a flipped FPT/RPT entry, a
//! cleared filter bit, or an interrupted migration turns a performance
//! mechanism into a data-integrity hazard. This crate provides the pieces
//! needed to probe that argument at runtime:
//!
//! * a fault taxonomy ([`FaultKind`]) covering table bit-flips, stale-slot
//!   corruption, filter/cache false state, tracker resets and saturation,
//!   interrupted migrations, quarantine-area wrap pressure, and one-shot
//!   DRAM command faults;
//! * seeded, byte-identically replayable schedules ([`FaultPlan`], driven by
//!   a [`SplitMix64`] PRNG) and the replay cursor ([`FaultInjector`]);
//! * the structured outcome types mitigation engines report back through
//!   the `Mitigation` trait: [`InjectOutcome`] per event, [`FaultHealth`]
//!   cumulative counters, and the end-of-run [`FaultReport`] in which every
//!   injected translation corruption must be accounted for — recovered,
//!   counted as an integrity escape by the shadow memory, or dormant
//!   (never referenced again). `unaccounted` must always be zero.
//!
//! The crate is a leaf: it knows nothing about DRAM geometry or engines, so
//! any layer (dram, tracker, aqua, rrs, sim, bench) can depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod splitmix;

pub use plan::{derive_cell_seed, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSpec};
pub use splitmix::{mix, SplitMix64};

use serde::{Deserialize, Serialize};

/// What a mitigation engine did with one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectOutcome {
    /// The engine has no state of this kind (e.g. a filter fault against
    /// the SRAM backend, or any table fault against the no-op baseline).
    Unsupported,
    /// The fault was applied and is self-contained: it may degrade security
    /// or performance, but no address translation became incorrect.
    Applied,
    /// The fault corrupted address translation for the listed global row
    /// ids. The driver must watch these rows until each is recovered,
    /// counted as an integrity violation, or proven dormant.
    CorruptedTranslation {
        /// Global row ids whose translation is now wrong.
        rows: Vec<u64>,
    },
}

aqua_telemetry::stat_struct! {
    /// Cumulative fault-handling counters a mitigation engine reports via
    /// `Mitigation::fault_health`.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct FaultHealth {
        /// Faults the engine accepted (applied to its state).
        pub injected: u64,
        /// Faults the engine neutralised or repaired (aborted migrations,
        /// audit-repaired table entries, rebuilt filters).
        pub recovered: u64,
        /// Individual table entries repaired by the end-of-epoch audit.
        pub repairs: u64,
        /// Banks currently running in degraded (victim-refresh) mode.
        pub degraded_banks: u64,
        /// Bank-epochs spent in degraded mode so far.
        pub degraded_epochs: u64,
        /// Inconsistencies the engine could not repair (the affected bank
        /// was degraded instead).
        pub unrecoverable: u64,
    }
}

aqua_telemetry::stat_struct! {
    /// End-of-run fault accounting, embedded in the simulator's `RunReport`.
    ///
    /// Invariant checked by the proptests and the `fault_campaign` binary:
    /// `unaccounted == 0` — every corrupted row is recovered, counted, or
    /// dormant; nothing escapes silently.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct FaultReport {
        /// Events dispatched from the plan.
        pub injected: u64,
        /// Events the target scheme had no state for.
        pub unsupported: u64,
        /// Events applied without corrupting any translation.
        pub applied: u64,
        /// Distinct rows whose translation was corrupted (watch-list
        /// admissions), partitioned exactly into the four fates below.
        pub corruptions: u64,
        /// Watched rows whose translation resolved correctly again by the
        /// end of the run (engine audit repaired them).
        pub recovered_rows: u64,
        /// Watched rows whose corruption surfaced as a counted
        /// shadow-memory integrity violation on access.
        pub escaped_counted: u64,
        /// Watched rows still mistranslated at the end of the run that no
        /// access ever observed wrong — the shadow verifies every access,
        /// so their first wrong touch is guaranteed to be counted.
        pub dormant: u64,
        /// Watched rows observed wrong on access without the shadow
        /// recording any violation — a wrong access that slipped through
        /// verification uncounted, i.e. a silent escape. Must be zero.
        pub unaccounted: u64,
        /// Engine-level recoveries (from `FaultHealth::recovered`).
        pub engine_recovered: u64,
        /// Bank-epochs the engine spent in degraded victim-refresh mode.
        pub degraded_epochs: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_report_accumulates() {
        let mut a = FaultReport {
            injected: 2,
            corruptions: 1,
            ..FaultReport::default()
        };
        a += FaultReport {
            injected: 3,
            recovered_rows: 1,
            ..FaultReport::default()
        };
        assert_eq!(a.injected, 5);
        assert_eq!(a.recovered_rows, 1);
        assert_eq!(FaultReport::FIELD_NAMES[0], "injected");
    }

    #[test]
    fn outcome_equality() {
        assert_eq!(
            InjectOutcome::CorruptedTranslation { rows: vec![3, 4] },
            InjectOutcome::CorruptedTranslation { rows: vec![3, 4] }
        );
        assert_ne!(InjectOutcome::Applied, InjectOutcome::Unsupported);
    }
}
