//! SplitMix64: the tiny, seedable PRNG behind every fault plan.
//!
//! SplitMix64 is a 64-bit state / 64-bit output mixer with a simple additive
//! state update, so a stream is fully determined by its seed and replays
//! byte-identically on every platform — exactly the property a replayable
//! fault campaign needs. No external RNG crate is involved on purpose: the
//! fault layer must stay deterministic even if the workspace RNG changes.

/// The SplitMix64 output mixer (finalizer) applied to a raw state word.
///
/// Exposed separately so seed-derivation helpers can whiten hash values
/// without instantiating a generator.
#[must_use]
pub fn mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next value in `0..bound` via the multiply-high reduction.
    ///
    /// The reduction has a negligible bias for the bounds used here (fault
    /// counts, row indices) and, unlike rejection sampling, consumes exactly
    /// one draw — which keeps plans identical even if callers reorder
    /// bound sizes.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires a positive bound");
        (((u128::from(self.next_u64())) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Reference output of splitmix64 for seed 0x1234_5678 (first three
        // values of the canonical C implementation).
        let mut rng = SplitMix64::new(0x1234_5678);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut again = SplitMix64::new(0x1234_5678);
        let replay: Vec<u64> = (0..3).map(|_| again.next_u64()).collect();
        assert_eq!(first, replay);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SplitMix64::new(99);
        for bound in [1u64, 2, 7, 1024, u64::MAX] {
            for _ in 0..64 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn mix_matches_generator_step() {
        // `mix(seed + GAMMA)`? No: the generator adds gamma then mixes, so
        // mix(seed) must equal a generator seeded with `seed - gamma`'s
        // first output shifted by construction. We only require determinism
        // and avalanche here.
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
    }
}
