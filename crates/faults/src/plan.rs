//! Fault taxonomy, seeded fault plans, and the replay injector.

use crate::splitmix::{mix, SplitMix64};

/// One injectable fault. Variants carry pre-drawn `entropy` so the *effect*
/// of a fault (which table entry, which wrong value) is fixed at plan time:
/// two replays of the same plan corrupt exactly the same state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip a forward-pointer-table entry: one quarantined row's FPT slot
    /// pointer is rewritten to a wrong slot.
    FptFlip {
        /// Selects the victim mapping and the wrong slot value.
        entropy: u64,
    },
    /// Flip a reverse-pointer-table entry: one RQA slot's "original row"
    /// back-pointer is rewritten (possibly to an out-of-geometry value,
    /// modelling flips in the high pointer bits).
    RptFlip {
        /// Selects the victim slot and the wrong row value.
        entropy: u64,
    },
    /// Drop a reverse-pointer-table entry (stale-slot corruption): the slot
    /// looks vacant while the forward table still points at it.
    RptDrop {
        /// Selects the victim slot.
        entropy: u64,
    },
    /// Clear a set bit of the quarantine presence filter (Bloom false
    /// negative): rows hashing to that bit silently bypass their
    /// quarantine translation.
    FilterFalseClear {
        /// Selects which set filter bit to clear.
        entropy: u64,
    },
    /// Poison the FPT cache: one quarantined row's cached forward pointer
    /// is replaced with a wrong slot while DRAM holds the correct entry.
    CachePoison {
        /// Selects the victim mapping and the wrong slot value.
        entropy: u64,
    },
    /// Reset every aggressor-tracker counter mid-epoch (the tracker goes
    /// blind until rows are re-observed).
    TrackerReset,
    /// Saturate the aggressor tracker: every tracked counter jumps to the
    /// mitigation threshold, so the next touch of any tracked row fires a
    /// spurious migration (migration-storm pressure).
    TrackerSaturate,
    /// Interrupt the next migration mid-swap: the engine must abort it
    /// without committing partial table state.
    MigrationInterrupt,
    /// Burn quarantine-area allocations without installing rows, forcing
    /// early wrap-around pressure on the circular allocator.
    RqaWrapBurst {
        /// Number of allocations to burn.
        slots: u64,
    },
    /// One-shot DRAM command fault: a single activate command is issued to
    /// the array but its notification never reaches the mitigation (tracker
    /// blind spot for one access).
    DramCommandFault,
}

impl FaultKind {
    /// Short stable name, for telemetry labels and CSV columns.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::FptFlip { .. } => "fpt_flip",
            FaultKind::RptFlip { .. } => "rpt_flip",
            FaultKind::RptDrop { .. } => "rpt_drop",
            FaultKind::FilterFalseClear { .. } => "filter_false_clear",
            FaultKind::CachePoison { .. } => "cache_poison",
            FaultKind::TrackerReset => "tracker_reset",
            FaultKind::TrackerSaturate => "tracker_saturate",
            FaultKind::MigrationInterrupt => "migration_interrupt",
            FaultKind::RqaWrapBurst { .. } => "rqa_wrap_burst",
            FaultKind::DramCommandFault => "dram_command_fault",
        }
    }

    /// All fault family names, in plan-draw order.
    pub const NAMES: &'static [&'static str] = &[
        "fpt_flip",
        "rpt_flip",
        "rpt_drop",
        "filter_false_clear",
        "cache_poison",
        "tracker_reset",
        "tracker_saturate",
        "migration_interrupt",
        "rqa_wrap_burst",
        "dram_command_fault",
    ];

    fn draw(rng: &mut SplitMix64) -> FaultKind {
        match rng.next_below(10) {
            0 => FaultKind::FptFlip {
                entropy: rng.next_u64(),
            },
            1 => FaultKind::RptFlip {
                entropy: rng.next_u64(),
            },
            2 => FaultKind::RptDrop {
                entropy: rng.next_u64(),
            },
            3 => FaultKind::FilterFalseClear {
                entropy: rng.next_u64(),
            },
            4 => FaultKind::CachePoison {
                entropy: rng.next_u64(),
            },
            5 => FaultKind::TrackerReset,
            6 => FaultKind::TrackerSaturate,
            7 => FaultKind::MigrationInterrupt,
            8 => FaultKind::RqaWrapBurst {
                slots: 1 + rng.next_below(64),
            },
            _ => FaultKind::DramCommandFault,
        }
    }
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Injection time, picoseconds since simulation start.
    pub at_ps: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// Campaign knob attached to a harness or simulation: how many faults to
/// schedule per epoch, and the seed the plan is generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the plan PRNG. Equal seeds replay byte-identical plans.
    pub seed: u64,
    /// Faults scheduled per 64 ms epoch (0 disables injection but still
    /// exercises the fault plumbing).
    pub events_per_epoch: u32,
}

/// A fully materialised, time-sorted schedule of fault events.
///
/// Generation is pure: `generate` called twice with the same arguments
/// yields structurally identical plans (`PartialEq`), and the debug
/// rendering — used by the determinism tests as a byte-level fingerprint —
/// matches character for character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates the plan for `epochs` epochs of `epoch_ps` picoseconds.
    #[must_use]
    pub fn generate(spec: FaultSpec, epochs: u64, epoch_ps: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(mix(spec.seed));
        let mut events = Vec::with_capacity((epochs * u64::from(spec.events_per_epoch)) as usize);
        if epoch_ps == 0 {
            return FaultPlan { events };
        }
        for epoch in 0..epochs {
            let base = epoch * epoch_ps;
            let mut batch: Vec<FaultEvent> = (0..spec.events_per_epoch)
                .map(|_| FaultEvent {
                    at_ps: base + rng.next_below(epoch_ps),
                    kind: FaultKind::draw(&mut rng),
                })
                .collect();
            // Stable sort: simultaneous events keep their draw order.
            batch.sort_by_key(|ev| ev.at_ps);
            events.extend(batch);
        }
        FaultPlan { events }
    }

    /// An empty plan (no faults ever fire).
    #[must_use]
    pub fn empty() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// The scheduled events, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Replays a [`FaultPlan`] against a running simulation: the driver polls
/// [`FaultInjector::due`] with the current simulation time and applies every
/// event that has come due, in schedule order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    next: usize,
}

impl FaultInjector {
    /// Wraps a plan for replay.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan, next: 0 }
    }

    /// The next event at or before `now_ps`, if any. Call in a loop to
    /// drain simultaneous events.
    pub fn due(&mut self, now_ps: u64) -> Option<FaultEvent> {
        let ev = *self.plan.events.get(self.next)?;
        if ev.at_ps <= now_ps {
            self.next += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// Events already handed out.
    #[must_use]
    pub fn dispatched(&self) -> usize {
        self.next
    }

    /// Events still pending.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.plan.events.len() - self.next
    }
}

/// Derives the per-cell fault seed for a `(scheme, workload)` matrix cell
/// from the campaign's base seed.
///
/// FNV-1a over `scheme NUL workload`, whitened through the SplitMix64
/// finalizer, so neighbouring cells get unrelated fault streams while the
/// whole campaign stays reproducible from one `--seed` value.
#[must_use]
pub fn derive_cell_seed(base: u64, scheme: &str, workload: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in scheme.bytes().chain([0u8]).chain(workload.bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    mix(base ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: FaultSpec = FaultSpec {
        seed: 7,
        events_per_epoch: 16,
    };

    #[test]
    fn plans_replay_byte_identically() {
        let a = FaultPlan::generate(SPEC, 4, 1_000_000);
        let b = FaultPlan::generate(SPEC, 4, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(SPEC, 2, 1_000_000);
        let b = FaultPlan::generate(FaultSpec { seed: 8, ..SPEC }, 2, 1_000_000);
        assert_ne!(a, b);
    }

    #[test]
    fn events_are_time_sorted_within_horizon() {
        let plan = FaultPlan::generate(SPEC, 3, 500_000);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at_ps).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(times.iter().all(|&t| t < 3 * 500_000));
    }

    #[test]
    fn injector_drains_in_order() {
        let plan = FaultPlan::generate(SPEC, 2, 1_000_000);
        let total = plan.len();
        let mut inj = FaultInjector::new(plan.clone());
        assert!(inj.due(0).is_none() || plan.events()[0].at_ps == 0);
        let mut seen = 0;
        while inj.due(u64::MAX).is_some() {
            seen += 1;
        }
        assert_eq!(seen + inj.dispatched() - seen, total);
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn zero_rate_yields_empty_plan() {
        let plan = FaultPlan::generate(
            FaultSpec {
                seed: 1,
                events_per_epoch: 0,
            },
            8,
            1_000_000,
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = derive_cell_seed(42, "aqua-sram", "lbm");
        assert_eq!(a, derive_cell_seed(42, "aqua-sram", "lbm"));
        assert_ne!(a, derive_cell_seed(42, "aqua-sram", "mcf"));
        assert_ne!(a, derive_cell_seed(42, "rrs", "lbm"));
        assert_ne!(a, derive_cell_seed(43, "aqua-sram", "lbm"));
        // The NUL separator keeps (scheme, workload) concatenation unambiguous.
        assert_ne!(
            derive_cell_seed(1, "ab", "c"),
            derive_cell_seed(1, "a", "bc")
        );
    }

    #[test]
    fn kind_names_cover_every_variant() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..256 {
            let kind = FaultKind::draw(&mut rng);
            assert!(FaultKind::NAMES.contains(&kind.name()));
        }
    }
}
