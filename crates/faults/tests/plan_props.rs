//! Property tests: fault plans are pure functions of their inputs.

use aqua_faults::{derive_cell_seed, FaultInjector, FaultPlan, FaultSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same (seed, rate, horizon) → structurally and textually identical plans.
    #[test]
    fn plan_is_a_pure_function(seed in any::<u64>(), rate in 0u32..32, epochs in 0u64..6) {
        let spec = FaultSpec { seed, events_per_epoch: rate };
        let a = FaultPlan::generate(spec, epochs, 1_000_000);
        let b = FaultPlan::generate(spec, epochs, 1_000_000);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        prop_assert_eq!(a.len() as u64, epochs * u64::from(rate));
    }

    /// Events come out sorted and inside the horizon, and the injector
    /// drains exactly the plan.
    #[test]
    fn injector_replays_the_whole_plan(seed in any::<u64>(), rate in 1u32..24) {
        let spec = FaultSpec { seed, events_per_epoch: rate };
        let plan = FaultPlan::generate(spec, 4, 250_000);
        let mut last = 0u64;
        for ev in plan.events() {
            prop_assert!(ev.at_ps >= last);
            prop_assert!(ev.at_ps < 4 * 250_000);
            last = ev.at_ps;
        }
        let mut inj = FaultInjector::new(plan.clone());
        let mut drained = Vec::new();
        // Advance time in coarse steps; every event must come due exactly once.
        for now in (0..=1_000_000u64).step_by(10_000) {
            while let Some(ev) = inj.due(now) {
                drained.push(ev);
            }
        }
        prop_assert_eq!(drained.as_slice(), plan.events());
        prop_assert_eq!(inj.remaining(), 0);
    }

    /// Cell-seed derivation is stable and distinguishes scheme from workload.
    #[test]
    fn cell_seed_is_stable(base in any::<u64>(), s in any::<u32>(), w in any::<u32>()) {
        let (scheme, workload) = (format!("s{s}"), format!("w{w}"));
        prop_assert_eq!(
            derive_cell_seed(base, &scheme, &workload),
            derive_cell_seed(base, &scheme, &workload)
        );
        prop_assert_ne!(
            derive_cell_seed(base, &scheme, &workload),
            derive_cell_seed(base, &workload, &scheme)
        );
    }
}
