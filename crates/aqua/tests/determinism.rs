//! Cross-instance determinism regression tests.
//!
//! Every unordered container feeding observable state (the FPT map, the
//! pinned set, the fault-audit rebuild, the per-bit fault index) must be
//! deterministic: two independent instances driven by byte-identical input
//! streams have to produce byte-identical mapping and audit output. Before
//! the seedless-hash migration this held only by accident of SipHash's
//! per-process keys *within* one process — these tests pin the stronger
//! guarantee the deterministic containers now provide.

use aqua::{AquaConfig, AquaEngine, MappedTables, RqaSlot};
use aqua_dram::mitigation::Mitigation;
use aqua_dram::{BankId, BaselineConfig, GlobalRowId, RowAddr, Time};

/// Tiny deterministic LCG so the drive sequence is identical everywhere.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Drives a mixed map/unmap/lookup sequence: enough churn that the hash
/// maps rehash a few times and the per-bit index sees removals.
fn drive(tables: &mut MappedTables) {
    let mut rng = 0xA0_5EEDu64;
    for _ in 0..5_000 {
        let row = GlobalRowId::new(lcg(&mut rng) % 4_096);
        match lcg(&mut rng) % 3 {
            0 => {
                tables.map(row, RqaSlot::new(lcg(&mut rng) % 512));
            }
            1 => {
                tables.unmap(row);
            }
            _ => {
                tables.lookup(row);
            }
        }
    }
}

fn fresh_tables() -> MappedTables {
    MappedTables::new(4 * 1024, 256, 16)
}

#[test]
fn identical_streams_yield_byte_identical_mappings() {
    let mut a = fresh_tables();
    let mut b = fresh_tables();
    drive(&mut a);
    drive(&mut b);
    let ma = a.mappings();
    assert_eq!(format!("{ma:?}"), format!("{:?}", b.mappings()));
    // The mapping dump itself is in a canonical (sorted) order, not
    // whatever the hash map happened to iterate.
    assert!(ma.windows(2).all(|w| w[0].0.index() < w[1].0.index()));
    assert!(!ma.is_empty(), "drive sequence must leave live mappings");
}

#[test]
fn identical_streams_yield_byte_identical_audit_output() {
    let mut a = fresh_tables();
    let mut b = fresh_tables();
    drive(&mut a);
    drive(&mut b);
    // Fault path: knock out one filter bit, then audit-rebuild. Affected
    // rows and the rebuilt filter state must match byte for byte.
    let hit_a = a.fault_clear_filter(777);
    let hit_b = b.fault_clear_filter(777);
    assert_eq!(format!("{hit_a:?}"), format!("{hit_b:?}"));
    assert!(
        hit_a.windows(2).all(|w| w[0] < w[1]),
        "fault-audit row list must come back sorted"
    );
    assert!(a.fault_audit_rebuild());
    assert!(b.fault_audit_rebuild());
    assert_eq!(format!("{:?}", a.bloom()), format!("{:?}", b.bloom()));
    assert_eq!(format!("{:?}", a.mappings()), format!("{:?}", b.mappings()));
    // The rebuild actually restored the cleared rows' filter bits: every
    // still-mapped row must resolve again.
    for (row, slot) in a.mappings() {
        assert_eq!(a.peek(row), Some(slot));
    }
}

/// The sharded multi-channel simulator's precondition: every engine
/// instance is fully channel-private. Driving four per-channel engines
/// round-robin (as a multi-channel memory controller interleaves in real
/// time) must leave each engine in exactly the state of driving it alone —
/// no hidden cross-instance state, so per-channel shards may run on
/// different threads without changing any result.
#[test]
fn per_channel_engines_are_independent_of_interleaving() {
    let base = BaselineConfig::paper_table1();
    let cfg = AquaConfig::for_rowhammer_threshold(1000, &base).with_mapped_tables();
    let engines = || -> Vec<AquaEngine> {
        (0..4)
            .map(|_| AquaEngine::new(cfg).expect("valid config"))
            .collect()
    };
    // Channel c's stream: a hammered pair plus channel-tagged noise —
    // distinct per channel, deterministic per (channel, round).
    let stream = |c: u64, i: u64, rng: &mut u64| -> RowAddr {
        let row = if i.is_multiple_of(3) {
            8 + c * 64 + (i % 2) * 2
        } else {
            (lcg(rng) ^ (c << 40)) % 100_000
        };
        RowAddr {
            bank: BankId::new((row % 16) as u32),
            row: (row / 16) as u32,
        }
    };
    let rounds = 30_000u64;
    // Solo: each engine consumes its whole stream before the next starts.
    let mut solo = engines();
    let mut actions_solo = Vec::new();
    for (c, engine) in solo.iter_mut().enumerate() {
        let mut rng = 0x5EED ^ c as u64;
        let mut t = Time::ZERO;
        for i in 0..rounds {
            t += aqua_dram::Duration::from_ns(50);
            actions_solo.push((c, i, engine.on_activation(stream(c as u64, i, &mut rng), t)));
        }
    }
    // Interleaved: all four advance in lockstep, one access per round each,
    // sharing each round's timestamp the way parallel channel buses do.
    let mut inter = engines();
    let mut rngs = [0u64; 4];
    for (c, r) in rngs.iter_mut().enumerate() {
        *r = 0x5EED ^ c as u64;
    }
    let mut actions_inter: [Vec<_>; 4] = Default::default();
    let mut t = Time::ZERO;
    for i in 0..rounds {
        t += aqua_dram::Duration::from_ns(50);
        for (c, engine) in inter.iter_mut().enumerate() {
            actions_inter[c].push((
                c,
                i,
                engine.on_activation(stream(c as u64, i, &mut rngs[c]), t),
            ));
        }
    }
    assert_eq!(actions_solo, actions_inter.concat(), "interleaving leaked");
    for c in 0..4 {
        assert_eq!(solo[c].stats(), inter[c].stats(), "channel {c} diverged");
        for row in (0..2_000u64).map(GlobalRowId::new) {
            assert_eq!(
                solo[c].translate(row, t).phys,
                inter[c].translate(row, t).phys,
                "channel {c} mapping diverged at row {}",
                row.index()
            );
        }
    }
    // The streams actually exercised quarantines, and the channels did
    // genuinely different work: channel 0's hot row is quarantined (its
    // translation moved) only on channel 0 — aggregate stats are symmetric
    // by construction, but the *rows* each engine moved are not.
    assert!(solo[0].stats().row_migrations() > 0);
    // Channel 0's hot phys row (stream row 8 -> bank 8, row 0) as an OS
    // row id.
    let hot0 = base
        .geometry
        .flatten(RowAddr {
            bank: BankId::new(8),
            row: 0,
        })
        .expect("hot row is in geometry");
    assert_ne!(
        solo[0].translate(hot0, t).phys,
        solo[1].translate(hot0, t).phys,
        "channel 0's hot row must be remapped on channel 0 only"
    );
}

#[test]
fn two_engines_with_identical_access_streams_agree_exactly() {
    let base = BaselineConfig::paper_table1();
    let cfg = AquaConfig::for_rowhammer_threshold(1000, &base).with_mapped_tables();
    let mut a = AquaEngine::new(cfg).expect("valid config");
    let mut b = AquaEngine::new(cfg).expect("valid config");
    let mut rng = 0xBEEFu64;
    let mut t = Time::ZERO;
    for i in 0..200_000u64 {
        // A few hammered rows (cross the threshold, force quarantines)
        // plus background noise.
        let row = if i % 4 == 0 {
            8 + (i % 3) * 2
        } else {
            lcg(&mut rng) % 100_000
        };
        let phys = RowAddr {
            bank: BankId::new((row % 16) as u32),
            row: (row / 16) as u32,
        };
        t += aqua_dram::Duration::from_ns(50);
        let acts_a = a.on_activation(phys, t);
        let acts_b = b.on_activation(phys, t);
        assert_eq!(acts_a, acts_b, "diverged at activation {i}");
    }
    assert_eq!(a.stats(), b.stats());
    assert!(
        a.stats().row_migrations() > 0,
        "stream must actually trigger quarantines"
    );
    // Translations agree for every row the stream touched.
    for row in 0..100_000u64 {
        let gid = GlobalRowId::new(row);
        assert_eq!(a.translate(gid, t).phys, b.translate(gid, t).phys);
    }
}
