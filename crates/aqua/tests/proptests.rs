//! Property-based tests on AQUA's core data structures.

use aqua::{CollisionAvoidanceTable, FptCache, QuarantineArea, ResettableBloomFilter, RqaSlot};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CAT behaves exactly like a map for any insert/remove interleaving
    /// that stays within a safe load factor.
    #[test]
    fn cat_matches_reference_map(ops in prop::collection::vec((0u64..500, any::<bool>()), 1..200)) {
        let mut cat: CollisionAvoidanceTable<u64> = CollisionAvoidanceTable::new(2048);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for (key, insert) in ops {
            if insert {
                cat.insert(key, key * 3).expect("well under capacity");
                reference.insert(key, key * 3);
            } else {
                prop_assert_eq!(cat.remove(key), reference.remove(&key));
            }
            prop_assert_eq!(cat.len(), reference.len());
        }
        for (k, v) in &reference {
            prop_assert_eq!(cat.get(*k), Some(v));
        }
    }

    /// The bloom filter never yields a false negative, for any interleaving
    /// of inserts and (balanced) removes.
    #[test]
    fn bloom_has_no_false_negatives(
        groups in prop::collection::vec(0u64..10_000, 1..100),
        bits in 8usize..1024,
    ) {
        let mut bf = ResettableBloomFilter::new(bits, 16);
        let mut live: Vec<u64> = Vec::new();
        for g in groups {
            if live.len() > 20 && g % 3 == 0 {
                let removed = live.swap_remove((g % live.len() as u64) as usize);
                bf.remove(removed);
            } else {
                bf.insert(g);
                live.push(g);
            }
            for l in &live {
                prop_assert!(bf.peek(*l), "false negative for live group {l}");
            }
        }
    }

    /// After all inserts are removed, the (aliased) filter is fully clear.
    #[test]
    fn bloom_resets_completely(groups in prop::collection::vec(0u64..1000, 1..60)) {
        let mut bf = ResettableBloomFilter::new(64, 16);
        for g in &groups {
            bf.insert(*g);
        }
        for g in &groups {
            bf.remove(*g);
        }
        prop_assert_eq!(bf.fill_fraction(), 0.0);
    }

    /// The RQA allocator flags a within-epoch reuse if and only if more
    /// slots were requested this epoch than exist.
    #[test]
    fn rqa_flags_reuse_exactly_when_oversubscribed(
        slots in 1u64..64,
        allocs_per_epoch in prop::collection::vec(0u64..128, 1..8),
    ) {
        let mut rqa = QuarantineArea::new(slots);
        for demand in allocs_per_epoch {
            let mut violations = 0u64;
            for _ in 0..demand {
                if rqa.allocate().reused_within_epoch {
                    violations += 1;
                }
            }
            prop_assert_eq!(violations, demand.saturating_sub(slots));
            rqa.advance_epoch();
        }
    }

    /// An FPT-Cache hit always returns the most recently inserted slot for
    /// the row, no matter the eviction pressure.
    #[test]
    fn fpt_cache_never_returns_stale_slots(
        rows in prop::collection::vec((0u64..64, 0u64..1000), 1..200),
    ) {
        let mut cache = FptCache::new(32); // 2 sets: heavy pressure
        let mut latest: HashMap<u64, u64> = HashMap::new();
        for (row, slot) in rows {
            let group = row / 16;
            cache.insert(row, group, RqaSlot::new(slot), false);
            latest.insert(row, slot);
            if let aqua::CacheLookup::Hit(s) = cache.lookup(row, group) {
                prop_assert_eq!(s.index(), latest[&row], "stale slot for row {}", row);
            }
        }
    }

    /// Distinct keys stored in the CAT keep distinct values (no aliasing
    /// between skews or relocations).
    #[test]
    fn cat_relocation_preserves_all_entries(keys in prop::collection::hash_set(any::<u64>(), 1..400)) {
        let mut cat: CollisionAvoidanceTable<u64> = CollisionAvoidanceTable::new(2048);
        let keys: HashSet<u64> = keys;
        for k in &keys {
            cat.insert(*k, k.wrapping_mul(7)).expect("within capacity");
        }
        prop_assert_eq!(cat.len(), keys.len());
        for k in &keys {
            prop_assert_eq!(cat.get(*k), Some(&k.wrapping_mul(7)));
        }
    }
}
