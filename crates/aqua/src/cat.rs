//! Collision-Avoidance Table (CAT).
//!
//! The SRAM FPT must hold entries for *arbitrary* row addresses without set
//! conflicts (paper section IV-C). Following RRS/MIRAGE, the table is split
//! into two skews, each indexed by an independent hash of the key; an insert
//! goes to the skew whose candidate set is emptier (power-of-two-choices),
//! which keeps the maximum set load far below the way count. With the paper's
//! over-provisioning (32K entries for at most 23K valid) overflow is
//! negligibly rare; if both candidate sets are ever full, a bounded cuckoo
//! relocation pass frees a slot, and genuine exhaustion is reported as an
//! error rather than a silent drop.

use crate::AquaError;
use std::fmt;

const WAYS: usize = 16;
const RELOCATION_DEPTH: usize = 24;

/// A two-skew, set-associative table with no practical set conflicts.
///
/// Storage is three parallel per-skew arrays — a 16-bit occupancy mask per
/// set, a flat key array, and a flat value array — instead of an array of
/// `Option<(key, value)>` slots. A lookup first loads the candidate set's
/// mask (the whole mask array for a 32K-entry table is 4 KB, so it stays
/// resident in L1) and only probes the key words of occupied ways; a miss on
/// an empty set — the overwhelmingly common case, since the table sits on
/// the per-access translate path while quarantines are rare — costs two mask
/// loads and touches no key or value cache lines at all.
///
/// # Example
///
/// ```
/// use aqua::CollisionAvoidanceTable;
///
/// let mut cat: CollisionAvoidanceTable<u32> = CollisionAvoidanceTable::new(1024);
/// cat.insert(42, 7)?;
/// assert_eq!(cat.get(42), Some(&7));
/// assert_eq!(cat.remove(42), Some(7));
/// assert_eq!(cat.get(42), None);
/// # Ok::<(), aqua::AquaError>(())
/// ```
#[derive(Clone)]
pub struct CollisionAvoidanceTable<V> {
    /// `masks[s][set]`: bit `w` set iff way `w` of that set is occupied.
    masks: [Vec<u16>; 2],
    /// `keys[s]` is a flat `sets_per_skew * WAYS` key array; a slot's key is
    /// meaningful iff its occupancy bit is set.
    keys: [Vec<u64>; 2],
    /// Values, parallel to `keys` (`None` iff the occupancy bit is clear).
    values: [Vec<Option<V>>; 2],
    sets_per_skew: usize,
    len: usize,
    max_set_load: usize,
}

impl<V: Copy> CollisionAvoidanceTable<V> {
    /// Creates a table with (at least) `capacity` total entries, split across
    /// two skews of 16-way sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 32` (one set per skew).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2 * WAYS, "CAT capacity must be at least 32");
        let sets_per_skew = (capacity / (2 * WAYS)).next_power_of_two();
        let slots = sets_per_skew * WAYS;
        CollisionAvoidanceTable {
            masks: [vec![0; sets_per_skew], vec![0; sets_per_skew]],
            keys: [vec![0; slots], vec![0; slots]],
            values: [vec![None; slots], vec![None; slots]],
            sets_per_skew,
            len: 0,
            max_set_load: 0,
        }
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        2 * self.sets_per_skew * WAYS
    }

    /// Highest set occupancy observed (provisioning diagnostic).
    pub fn max_set_load(&self) -> usize {
        self.max_set_load
    }

    fn hash(&self, skew: usize, key: u64) -> usize {
        // Two independent xorshift-multiply mixers (splitmix64 finalizers
        // with distinct seeds).
        let seed = if skew == 0 {
            0x9e37_79b9_7f4a_7c15u64
        } else {
            0xbf58_476d_1ce4_e5b9u64
        };
        let mut x = key.wrapping_add(seed);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x as usize) & (self.sets_per_skew - 1)
    }

    /// Flat slot index of `(skew, set, way)`'s occupied key match, if any.
    /// Iterates only the set bits of the occupancy mask.
    #[inline]
    fn find(&self, key: u64) -> Option<(usize, usize)> {
        for skew in 0..2 {
            let set = self.hash(skew, key);
            let mut mask = self.masks[skew][set];
            let base = set * WAYS;
            while mask != 0 {
                let way = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if self.keys[skew][base + way] == key {
                    return Some((skew, base + way));
                }
            }
        }
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .and_then(|(skew, i)| self.values[skew][i].as_ref())
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts or updates `key`.
    ///
    /// # Errors
    ///
    /// Returns [`AquaError::FptFull`] if both candidate sets are full and
    /// bounded relocation cannot free a slot (indicates under-provisioning).
    pub fn insert(&mut self, key: u64, value: V) -> Result<(), AquaError> {
        if let Some((skew, i)) = self.find(key) {
            self.values[skew][i] = Some(value);
            return Ok(());
        }
        if self.try_place(key, value, 0) {
            self.len += 1;
            return Ok(());
        }
        Err(AquaError::FptFull {
            capacity: self.capacity(),
        })
    }

    fn set_load(&self, skew: usize, set: usize) -> usize {
        self.masks[skew][set].count_ones() as usize
    }

    /// Installs `(key, value)` at flat slot `i` of `skew`, marking the way
    /// occupied.
    fn install(&mut self, skew: usize, i: usize, key: u64, value: V) {
        self.keys[skew][i] = key;
        self.values[skew][i] = Some(value);
        self.masks[skew][i / WAYS] |= 1 << (i % WAYS);
    }

    fn try_place(&mut self, key: u64, value: V, depth: usize) -> bool {
        let loads = [
            self.set_load(0, self.hash(0, key)),
            self.set_load(1, self.hash(1, key)),
        ];
        // Power-of-two-choices: install into the emptier candidate set.
        let order = if loads[0] <= loads[1] { [0, 1] } else { [1, 0] };
        for skew in order {
            let set = self.hash(skew, key);
            let mask = self.masks[skew][set];
            if mask != u16::MAX {
                let way = (!mask).trailing_zeros() as usize;
                self.install(skew, set * WAYS + way, key, value);
                let load = self.set_load(skew, set);
                self.max_set_load = self.max_set_load.max(load);
                return true;
            }
        }
        if depth >= RELOCATION_DEPTH {
            return false;
        }
        // Both sets full: cuckoo-relocate one victim to its alternate skew.
        let skew = order[0];
        let set = self.hash(skew, key);
        let way = depth % WAYS;
        let slot = set * WAYS + way;
        let Some(victim_value) = self.values[skew][slot].take() else {
            // The set scanned as full above, so this slot cannot be vacant;
            // if it somehow is, installing here is the correct outcome.
            self.install(skew, slot, key, value);
            return true;
        };
        let victim_key = self.keys[skew][slot];
        self.install(skew, slot, key, value);
        if self.try_place(victim_key, victim_value, depth + 1) {
            true
        } else {
            // Undo: restore the victim and fail the insert.
            self.install(skew, slot, victim_key, victim_value);
            false
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let (skew, i) = self.find(key)?;
        let v = self.values[skew][i].take()?;
        self.masks[skew][i / WAYS] &= !(1 << (i % WAYS));
        self.len -= 1;
        Some(v)
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.keys
            .iter()
            .zip(self.values.iter())
            .flat_map(|(keys, values)| {
                keys.iter()
                    .zip(values.iter())
                    .filter_map(|(&k, v)| v.as_ref().map(|v| (k, v)))
            })
    }
}

impl<V: Copy> fmt::Debug for CollisionAvoidanceTable<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollisionAvoidanceTable")
            .field("len", &self.len)
            .field("capacity", &self.capacity())
            .field("max_set_load", &self.max_set_load)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut cat: CollisionAvoidanceTable<u32> = CollisionAvoidanceTable::new(64);
        for k in 0..20u64 {
            cat.insert(k, k as u32 * 10).unwrap();
        }
        assert_eq!(cat.len(), 20);
        for k in 0..20u64 {
            assert_eq!(cat.get(k), Some(&(k as u32 * 10)));
        }
        assert_eq!(cat.remove(5), Some(50));
        assert_eq!(cat.get(5), None);
        assert_eq!(cat.len(), 19);
        assert_eq!(cat.remove(5), None);
    }

    #[test]
    fn update_replaces_value() {
        let mut cat: CollisionAvoidanceTable<u32> = CollisionAvoidanceTable::new(64);
        cat.insert(1, 10).unwrap();
        cat.insert(1, 20).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get(1), Some(&20));
    }

    #[test]
    fn holds_paper_load_factor() {
        // 32K entries for 23K valid (72% load): must never overflow.
        let mut cat: CollisionAvoidanceTable<u32> = CollisionAvoidanceTable::new(32 * 1024);
        for k in 0..23_000u64 {
            cat.insert(k.wrapping_mul(0x2545_f491_4f6c_dd1d), k as u32)
                .unwrap();
        }
        assert_eq!(cat.len(), 23_000);
        // Power-of-two-choices keeps sets comfortably below 16 ways.
        assert!(cat.max_set_load() <= WAYS);
    }

    #[test]
    fn churn_does_not_leak_slots() {
        let mut cat: CollisionAvoidanceTable<u32> = CollisionAvoidanceTable::new(256);
        for round in 0..50u64 {
            for k in 0..100u64 {
                cat.insert(round * 1000 + k, k as u32).unwrap();
            }
            for k in 0..100u64 {
                assert!(cat.remove(round * 1000 + k).is_some());
            }
        }
        assert!(cat.is_empty());
    }

    #[test]
    fn overflow_is_an_error_not_a_drop() {
        let mut cat: CollisionAvoidanceTable<u32> = CollisionAvoidanceTable::new(32);
        let mut inserted = vec![];
        let mut failed = false;
        for k in 0..64u64 {
            match cat.insert(k, k as u32) {
                Ok(()) => inserted.push(k),
                Err(AquaError::FptFull { .. }) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failed, "a 32-slot table cannot hold 64 entries");
        // Every successfully inserted key must still be present.
        for k in inserted {
            assert!(cat.contains(k), "key {k} lost after overflow");
        }
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut cat: CollisionAvoidanceTable<u32> = CollisionAvoidanceTable::new(64);
        for k in 0..10u64 {
            cat.insert(k, 1).unwrap();
        }
        let mut keys: Vec<u64> = cat.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..10u64).collect::<Vec<_>>());
    }
}
