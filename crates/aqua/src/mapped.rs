//! Memory-mapped FPT/RPT design (section V).
//!
//! To cut the 172 KB SRAM cost of the section-IV tables, AQUA can store a
//! *flat* FPT (one 2-byte entry per memory row, 4 MB of DRAM) and the RPT in
//! DRAM, keeping only three small SRAM structures on chip:
//!
//! 1. a [`ResettableBloomFilter`] (16 KB) that proves most rows are not
//!    quarantined without any table access,
//! 2. an [`FptCache`] (16 KB) holding entries of currently quarantined rows,
//! 3. pinned SRAM entries for the rows that *store* the tables themselves
//!    (so a table lookup never recurses, and PTHammer-style attacks on the
//!    tables are mitigated like any other row — section VI-B).
//!
//! Each lookup is classified into the four categories of Figure 10:
//! bloom-clear, FPT-Cache hit, singleton skip, or a real DRAM access.

use crate::{FptCache, ResettableBloomFilter, RqaSlot};
use aqua_dram::GlobalRowId;
use aqua_fastmap::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How a memory-mapped FPT lookup was resolved (Figure 10 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LookupOutcome {
    /// Bloom-filter bit clear: definitely not quarantined (avg 92.2%).
    BloomClear,
    /// Hit in the FPT-Cache (avg 7.3%).
    CacheHit,
    /// Miss, but a singleton-group entry proved non-quarantine (avg 0.4%).
    SingletonSkip,
    /// Had to read the FPT entry from DRAM (avg < 0.1%).
    DramAccess,
}

aqua_telemetry::stat_struct! {
    /// Counters per lookup outcome.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct LookupBreakdown {
        /// Lookups resolved by a clear bloom bit.
        pub bloom_clear: u64,
        /// Lookups resolved by an FPT-Cache hit.
        pub cache_hit: u64,
        /// Lookups resolved by the singleton optimization.
        pub singleton_skip: u64,
        /// Lookups requiring a DRAM FPT read.
        pub dram_access: u64,
    }
}

impl LookupBreakdown {
    /// Total lookups recorded.
    pub fn total(&self) -> u64 {
        self.bloom_clear + self.cache_hit + self.singleton_skip + self.dram_access
    }

    /// Fractions in Figure 10 order (bloom, cache, singleton, dram).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total().max(1) as f64;
        [
            self.bloom_clear as f64 / t,
            self.cache_hit as f64 / t,
            self.singleton_skip as f64 / t,
            self.dram_access as f64 / t,
        ]
    }

    fn record(&mut self, outcome: LookupOutcome) {
        match outcome {
            LookupOutcome::BloomClear => self.bloom_clear += 1,
            LookupOutcome::CacheHit => self.cache_hit += 1,
            LookupOutcome::SingletonSkip => self.singleton_skip += 1,
            LookupOutcome::DramAccess => self.dram_access += 1,
        }
    }
}

/// Result of one memory-mapped lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappedLookup {
    /// The quarantine slot, if the row is quarantined.
    pub slot: Option<RqaSlot>,
    /// Which path resolved the lookup.
    pub outcome: LookupOutcome,
    /// In-DRAM table reads performed (0 or 1).
    pub dram_reads: u32,
}

/// The memory-mapped FPT with its SRAM filter/cache hierarchy.
#[derive(Debug, Clone)]
pub struct MappedTables {
    /// Model of the flat in-DRAM FPT (one entry per memory row).
    fpt: FxHashMap<u64, RqaSlot>,
    /// Valid FPT entries per group (drives bloom reset + singleton bits).
    group_valid: FxHashMap<u64, u32>,
    bloom: ResettableBloomFilter,
    cache: FptCache,
    /// Pinned SRAM entries for table-storing rows (anti-recursion).
    pinned: FxHashMap<u64, Option<RqaSlot>>,
    /// Inverted index: bloom bit → mapped FPT rows hashing to it, kept in
    /// sync by [`map`](Self::map) / [`unmap`](Self::unmap). Lets
    /// [`fault_clear_filter`](Self::fault_clear_filter) report the rows a
    /// cleared bit affects in O(affected) instead of scanning the whole FPT;
    /// `BTreeSet` keeps each bit's rows sorted for free.
    bit_rows: FxHashMap<usize, BTreeSet<u64>>,
    breakdown: LookupBreakdown,
    dram_writes: u64,
}

impl MappedTables {
    /// Creates the structure with `bloom_bits` filter bits and
    /// `cache_entries` FPT-Cache entries, grouping `rows_per_group` rows per
    /// FPT line half (16 for the baseline).
    pub fn new(bloom_bits: usize, cache_entries: usize, rows_per_group: u32) -> Self {
        MappedTables {
            fpt: FxHashMap::default(),
            group_valid: FxHashMap::default(),
            bloom: ResettableBloomFilter::new(bloom_bits, rows_per_group),
            cache: FptCache::new(cache_entries),
            pinned: FxHashMap::default(),
            bit_rows: FxHashMap::default(),
            breakdown: LookupBreakdown::default(),
            dram_writes: 0,
        }
    }

    /// Declares `row` a table-storing row whose FPT entry is pinned in SRAM.
    pub fn pin(&mut self, row: GlobalRowId) {
        self.pinned.entry(row.index()).or_insert(None);
    }

    /// Whether `row` has a pinned SRAM entry.
    pub fn is_pinned(&self, row: GlobalRowId) -> bool {
        self.pinned.contains_key(&row.index())
    }

    /// Number of pinned entries.
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }

    /// Figure 10 lookup breakdown.
    pub fn breakdown(&self) -> LookupBreakdown {
        self.breakdown
    }

    /// In-DRAM table writes performed so far.
    pub fn dram_writes(&self) -> u64 {
        self.dram_writes
    }

    /// Access to the bloom filter (diagnostics).
    pub fn bloom(&self) -> &ResettableBloomFilter {
        &self.bloom
    }

    /// Number of quarantined rows tracked.
    pub fn len(&self) -> usize {
        self.fpt.len() + self.pinned.values().filter(|v| v.is_some()).count()
    }

    /// Whether no rows are quarantined.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `row` through the bloom → cache → singleton → DRAM path.
    pub fn lookup(&mut self, row: GlobalRowId) -> MappedLookup {
        // Pinned (table-storing) rows resolve entirely in SRAM and are not
        // part of the Figure 10 breakdown.
        if let Some(slot) = self.pinned.get(&row.index()) {
            return MappedLookup {
                slot: *slot,
                outcome: LookupOutcome::CacheHit,
                dram_reads: 0,
            };
        }
        let group = self.bloom.group_of(row.index());
        if !self.bloom.maybe_quarantined(group) {
            self.breakdown.record(LookupOutcome::BloomClear);
            return MappedLookup {
                slot: None,
                outcome: LookupOutcome::BloomClear,
                dram_reads: 0,
            };
        }
        match self.cache.lookup(row.index(), group) {
            crate::CacheLookup::Hit(slot) => {
                self.breakdown.record(LookupOutcome::CacheHit);
                MappedLookup {
                    slot: Some(slot),
                    outcome: LookupOutcome::CacheHit,
                    dram_reads: 0,
                }
            }
            crate::CacheLookup::SingletonMiss => {
                self.breakdown.record(LookupOutcome::SingletonSkip);
                MappedLookup {
                    slot: None,
                    outcome: LookupOutcome::SingletonSkip,
                    dram_reads: 0,
                }
            }
            crate::CacheLookup::Miss => {
                self.breakdown.record(LookupOutcome::DramAccess);
                let slot = self.fpt.get(&row.index()).copied();
                // The DRAM read fetched the whole 64-byte FPT line; cache
                // every valid entry of the group it contains (still only
                // quarantined rows — the anti-thrashing rule of V-C). After
                // one fetch, the group's other rows resolve via the cache or
                // the singleton bit without further DRAM traffic.
                let singleton = self.group_valid.get(&group).copied() == Some(1);
                let first = group * self.bloom.rows_per_group() as u64;
                for member in first..first + self.bloom.rows_per_group() as u64 {
                    if let Some(&s) = self.fpt.get(&member) {
                        self.cache.insert(member, group, s, singleton);
                    }
                }
                MappedLookup {
                    slot,
                    outcome: LookupOutcome::DramAccess,
                    dram_reads: 1,
                }
            }
        }
    }

    /// Records that `row` is now quarantined at `slot`. Returns the number of
    /// in-DRAM table writes this required (FPT entry + RPT entry).
    pub fn map(&mut self, row: GlobalRowId, slot: RqaSlot) -> u32 {
        if let Some(p) = self.pinned.get_mut(&row.index()) {
            *p = Some(slot);
            return 0; // pinned entries live in SRAM
        }
        let group = self.bloom.group_of(row.index());
        let was_mapped = self.fpt.insert(row.index(), slot).is_some();
        if !was_mapped {
            let count = self.group_valid.entry(group).or_insert(0);
            *count += 1;
            self.bloom.insert(group);
            if *count == 2 {
                self.cache.set_group_singleton(group, false);
            }
            self.bit_rows
                .entry(self.bloom.bit_of(group))
                .or_default()
                .insert(row.index());
        }
        let singleton = self.group_valid.get(&group).copied() == Some(1);
        self.cache.insert(row.index(), group, slot, singleton);
        self.dram_writes += 2;
        2
    }

    /// Removes the quarantine mapping for `row`. Returns `(slot, writes)`.
    pub fn unmap(&mut self, row: GlobalRowId) -> (Option<RqaSlot>, u32) {
        if let Some(p) = self.pinned.get_mut(&row.index()) {
            return (p.take(), 0);
        }
        let group = self.bloom.group_of(row.index());
        let slot = self.fpt.remove(&row.index());
        if slot.is_some() {
            self.cache.invalidate(row.index(), group);
            // A missing or zero group count means the count bookkeeping was
            // corrupted (only possible under injected faults); saturate
            // instead of panicking and let the epoch audit rebuild it.
            match self.group_valid.get_mut(&group) {
                Some(count) if *count > 1 => {
                    *count -= 1;
                    if *count == 1 {
                        self.cache.set_group_singleton(group, true);
                    }
                }
                Some(_) | None => {
                    self.group_valid.remove(&group);
                }
            }
            self.bloom.remove(group);
            let bit = self.bloom.bit_of(group);
            if let Some(rows) = self.bit_rows.get_mut(&bit) {
                rows.remove(&row.index());
                if rows.is_empty() {
                    self.bit_rows.remove(&bit);
                }
            }
            self.dram_writes += 2;
            (slot, 2)
        } else {
            (None, 0)
        }
    }

    /// Non-mutating translation check: the slot `row` maps to, bypassing the
    /// filter and cache (the audit's ground-truth view of the in-DRAM FPT).
    pub fn peek(&self, row: GlobalRowId) -> Option<RqaSlot> {
        if let Some(p) = self.pinned.get(&row.index()) {
            return *p;
        }
        self.fpt.get(&row.index()).copied()
    }

    /// Injected fault: rewrites the FPT entry for `row` (which must already
    /// be mapped or pinned-mapped) to `slot`, and poisons any cached copy so
    /// the corruption is visible on the fast path too. Returns whether an
    /// entry was corrupted. Group counts are untouched — the entry stays
    /// valid, it just points at the wrong slot.
    pub fn fault_corrupt_fpt(&mut self, row: GlobalRowId, slot: RqaSlot) -> bool {
        if let Some(p) = self.pinned.get_mut(&row.index()) {
            if p.is_some() {
                *p = Some(slot);
                return true;
            }
            return false;
        }
        match self.fpt.get_mut(&row.index()) {
            Some(entry) => {
                *entry = slot;
                let group = self.bloom.group_of(row.index());
                let singleton = self.group_valid.get(&group).copied() == Some(1);
                self.cache.insert(row.index(), group, slot, singleton);
                true
            }
            None => false,
        }
    }

    /// Injected fault: inserts a wrong-slot entry for `row` into the
    /// FPT-Cache only (the in-DRAM FPT stays correct). Returns `false` for
    /// pinned rows, whose lookups never consult the cache.
    pub fn fault_poison_cache(&mut self, row: GlobalRowId, slot: RqaSlot) -> bool {
        if self.pinned.contains_key(&row.index()) {
            return false;
        }
        let group = self.bloom.group_of(row.index());
        let singleton = self.group_valid.get(&group).copied() == Some(1);
        self.cache.insert(row.index(), group, slot, singleton);
        true
    }

    /// Injected fault: zeroes one bloom count (see
    /// [`ResettableBloomFilter::fault_clear_bit`]). Returns the flat FPT rows
    /// whose translations became false negatives, sorted ascending (pinned
    /// rows bypass the filter and are unaffected).
    pub fn fault_clear_filter(&mut self, entropy: u64) -> Vec<u64> {
        let Some(bit) = self.bloom.fault_clear_bit(entropy) else {
            return Vec::new();
        };
        // The inverted index holds exactly the mapped rows hashing to `bit`
        // (in ascending order), so this is O(affected rows) — no whole-FPT
        // scan-filter-sort per injected fault.
        self.bit_rows
            .get(&bit)
            .map(|rows| rows.iter().copied().collect())
            .unwrap_or_default()
    }

    /// End-of-epoch audit rebuild: recomputes the group-valid counts and
    /// bloom counts from the in-DRAM FPT (the authoritative copy) and purges
    /// the FPT-Cache, which may hold poisoned entries. Returns whether any
    /// SRAM state actually changed.
    pub fn fault_audit_rebuild(&mut self) -> bool {
        let mut groups: FxHashMap<u64, u32> = FxHashMap::default();
        for &row in self.fpt.keys() {
            *groups.entry(self.bloom.group_of(row)).or_insert(0) += 1;
        }
        let groups_changed = groups != self.group_valid;
        self.group_valid = groups;
        // Feed the rebuild in sorted group order: the filter's final counts
        // are a sum and thus order-independent, but sorting makes the whole
        // audit path — including any tracing or debugging inside rebuild —
        // a pure function of the mapping set rather than of hash-iteration
        // order.
        let mut sorted: Vec<(u64, u32)> = self.group_valid.iter().map(|(&g, &c)| (g, c)).collect();
        sorted.sort_unstable_by_key(|&(g, _)| g);
        let bloom_changed = self.bloom.rebuild(sorted);
        let cache_dirty = !self.cache.is_empty();
        self.cache.purge();
        groups_changed || bloom_changed || cache_dirty
    }

    /// All current `(row, slot)` quarantine mappings (flat FPT plus pinned),
    /// sorted by row id so the output is observably deterministic — audit
    /// logs and consistency dumps never depend on hash-iteration order.
    pub fn mappings(&self) -> Vec<(GlobalRowId, RqaSlot)> {
        let mut all: Vec<(GlobalRowId, RqaSlot)> = self
            .fpt
            .iter()
            .map(|(&r, &s)| (GlobalRowId::new(r), s))
            .chain(
                self.pinned
                    .iter()
                    .filter_map(|(&r, s)| s.map(|s| (GlobalRowId::new(r), s))),
            )
            .collect();
        all.sort_unstable_by_key(|&(r, _)| r.index());
        all
    }

    /// SRAM bits: bloom filter + FPT-Cache + pinned entries (16 bits each).
    pub fn sram_bits(&self) -> u64 {
        self.bloom.sram_bits() + self.cache.sram_bits() + self.pinned.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> MappedTables {
        MappedTables::new(1024, 64, 16)
    }

    fn row(i: u64) -> GlobalRowId {
        GlobalRowId::new(i)
    }

    #[test]
    fn unquarantined_row_is_bloom_filtered() {
        let mut t = tables();
        let l = t.lookup(row(5));
        assert_eq!(l.outcome, LookupOutcome::BloomClear);
        assert_eq!(l.slot, None);
        assert_eq!(l.dram_reads, 0);
    }

    #[test]
    fn quarantined_row_hits_cache_after_map() {
        let mut t = tables();
        t.map(row(5), RqaSlot::new(3));
        let l = t.lookup(row(5));
        assert_eq!(l.outcome, LookupOutcome::CacheHit);
        assert_eq!(l.slot, Some(RqaSlot::new(3)));
    }

    #[test]
    fn groupmate_of_singleton_skips_dram() {
        let mut t = tables();
        t.map(row(16), RqaSlot::new(0)); // group 1 = rows 16..32
        let l = t.lookup(row(17));
        assert_eq!(l.outcome, LookupOutcome::SingletonSkip);
        assert_eq!(l.slot, None);
    }

    #[test]
    fn groupmate_of_pair_needs_dram() {
        let mut t = tables();
        t.map(row(16), RqaSlot::new(0));
        t.map(row(17), RqaSlot::new(1)); // group now has 2 entries
        let l = t.lookup(row(18));
        assert_eq!(l.outcome, LookupOutcome::DramAccess);
        assert_eq!(l.slot, None);
        assert_eq!(l.dram_reads, 1);
    }

    #[test]
    fn dram_lookup_fills_cache_for_quarantined_row() {
        let mut t = tables();
        t.map(row(16), RqaSlot::new(0));
        t.map(row(17), RqaSlot::new(1));
        // Evict row 16 from the cache by invalidating it there only.
        t.cache.invalidate(16, 1);
        let first = t.lookup(row(16));
        assert_eq!(first.outcome, LookupOutcome::DramAccess);
        assert_eq!(first.slot, Some(RqaSlot::new(0)));
        let second = t.lookup(row(16));
        assert_eq!(second.outcome, LookupOutcome::CacheHit);
    }

    #[test]
    fn unmap_restores_bloom_clear() {
        let mut t = tables();
        t.map(row(40), RqaSlot::new(2));
        let (slot, writes) = t.unmap(row(40));
        assert_eq!(slot, Some(RqaSlot::new(2)));
        assert_eq!(writes, 2);
        let l = t.lookup(row(40));
        assert_eq!(l.outcome, LookupOutcome::BloomClear);
    }

    #[test]
    fn unmap_demotes_pair_to_singleton() {
        let mut t = tables();
        t.map(row(16), RqaSlot::new(0));
        t.map(row(17), RqaSlot::new(1));
        t.unmap(row(17));
        // Row 16 is again the group's only entry: group-mates skip DRAM.
        let l = t.lookup(row(18));
        assert_eq!(l.outcome, LookupOutcome::SingletonSkip);
    }

    #[test]
    fn pinned_rows_resolve_in_sram() {
        let mut t = tables();
        t.pin(row(7));
        t.map(row(7), RqaSlot::new(5));
        let l = t.lookup(row(7));
        assert_eq!(l.slot, Some(RqaSlot::new(5)));
        assert_eq!(l.dram_reads, 0);
        let (slot, writes) = t.unmap(row(7));
        assert_eq!(slot, Some(RqaSlot::new(5)));
        assert_eq!(writes, 0);
        // Pinned lookups stay out of the Figure 10 breakdown.
        assert_eq!(t.breakdown().total(), 0);
    }

    #[test]
    fn breakdown_counts_every_path() {
        let mut t = tables();
        t.map(row(16), RqaSlot::new(0));
        t.lookup(row(500)); // bloom clear
        t.lookup(row(16)); // cache hit
        t.lookup(row(17)); // singleton skip
        t.map(row(17), RqaSlot::new(1));
        t.lookup(row(18)); // dram access
        let b = t.breakdown();
        assert_eq!(b.bloom_clear, 1);
        assert_eq!(b.cache_hit, 1);
        assert_eq!(b.singleton_skip, 1);
        assert_eq!(b.dram_access, 1);
        assert_eq!(b.total(), 4);
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peek_bypasses_filter_and_cache() {
        let mut t = tables();
        t.map(row(5), RqaSlot::new(3));
        t.cache.invalidate(5, 0);
        assert_eq!(t.peek(row(5)), Some(RqaSlot::new(3)));
        assert_eq!(t.peek(row(6)), None);
        assert_eq!(t.breakdown().total(), 0, "peek must not record lookups");
    }

    #[test]
    fn corrupted_fpt_entry_is_visible_and_audit_repairable() {
        let mut t = tables();
        t.map(row(5), RqaSlot::new(3));
        assert!(t.fault_corrupt_fpt(row(5), RqaSlot::new(7)));
        assert_eq!(t.lookup(row(5)).slot, Some(RqaSlot::new(7)));
        assert_eq!(t.peek(row(5)), Some(RqaSlot::new(7)));
        // Unmapped rows have no entry to corrupt.
        assert!(!t.fault_corrupt_fpt(row(6), RqaSlot::new(1)));
        // The engine's audit repairs via map(); the tables converge again.
        t.map(row(5), RqaSlot::new(3));
        assert_eq!(t.lookup(row(5)).slot, Some(RqaSlot::new(3)));
    }

    #[test]
    fn poisoned_cache_is_cured_by_audit_rebuild() {
        let mut t = tables();
        t.map(row(5), RqaSlot::new(3));
        assert!(t.fault_poison_cache(row(5), RqaSlot::new(9)));
        assert_eq!(t.lookup(row(5)).slot, Some(RqaSlot::new(9)));
        assert!(t.fault_audit_rebuild());
        // A second audit straight after finds nothing left to fix.
        assert!(!t.fault_audit_rebuild());
        // DRAM FPT was never wrong; after the purge the lookup refetches it.
        assert_eq!(t.lookup(row(5)).slot, Some(RqaSlot::new(3)));
    }

    #[test]
    fn cleared_filter_bit_reports_affected_rows() {
        let mut t = tables();
        t.map(row(16), RqaSlot::new(0));
        t.map(row(17), RqaSlot::new(1));
        let rows = t.fault_clear_filter(t.bloom().bit_of(1) as u64);
        assert_eq!(rows, vec![16, 17]);
        // False negative: the filter now denies the quarantine.
        assert_eq!(t.lookup(row(16)).outcome, LookupOutcome::BloomClear);
        assert!(t.fault_audit_rebuild());
        assert_eq!(t.lookup(row(16)).slot, Some(RqaSlot::new(0)));
    }

    #[test]
    fn map_is_idempotent_on_group_counts() {
        let mut t = tables();
        t.map(row(16), RqaSlot::new(0));
        t.map(row(16), RqaSlot::new(9)); // re-map (internal migration)
                                         // Still a singleton group.
        let l = t.lookup(row(17));
        assert_eq!(l.outcome, LookupOutcome::SingletonSkip);
        let l = t.lookup(row(16));
        assert_eq!(l.slot, Some(RqaSlot::new(9)));
    }
}
