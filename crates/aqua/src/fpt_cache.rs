//! FPT-Cache: on-chip cache of in-DRAM FPT entries (section V-C/D).
//!
//! A 16-way set-associative cache with RRIP replacement. Two design points
//! from the paper are reproduced exactly:
//!
//! - Only entries of *currently quarantined* rows are cached (avoids
//!   thrashing: the cache covers at most ~23K rows, not 2M).
//! - All rows of an FPT *group* index into the same set, and each entry
//!   carries a **singleton** bit meaning "my group has exactly one valid FPT
//!   entry". A miss that finds a same-group entry with the singleton bit set
//!   proves the missing row is *not* quarantined, skipping the DRAM lookup
//!   (the optimization that removes 99% of false-positive lookups).

use crate::RqaSlot;
use serde::{Deserialize, Serialize};

const RRPV_MAX: u8 = 3;
const RRPV_INSERT: u8 = 2;

/// Outcome of an FPT-Cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheLookup {
    /// The row's FPT entry is cached: it is quarantined at this slot.
    Hit(RqaSlot),
    /// Miss, but a same-group singleton entry proves the row is not
    /// quarantined — no DRAM lookup needed.
    SingletonMiss,
    /// Miss: the in-DRAM FPT must be consulted.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    row: u64,
    group: u64,
    slot: RqaSlot,
    rrpv: u8,
    singleton: bool,
}

/// The FPT-Cache (default: 4K entries, 16-way, 16 KB of SRAM).
#[derive(Debug, Clone)]
pub struct FptCache {
    sets: usize,
    ways: usize,
    slots: Vec<Option<CacheEntry>>,
}

impl FptCache {
    /// Creates a cache with `entries` total slots, 16-way set-associative.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 16`.
    pub fn new(entries: usize) -> Self {
        let ways = 16;
        assert!(entries >= ways, "FPT-Cache needs at least one 16-way set");
        let sets = (entries / ways).max(1);
        FptCache {
            sets,
            ways,
            slots: vec![None; sets * ways],
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    fn set_range(&self, group: u64) -> std::ops::Range<usize> {
        // Hash the group id into a set: all rows of a group share a set (the
        // singleton optimization depends on it), while power-of-two strides
        // in the physical layout — e.g. one hot region striped across every
        // bank — spread over all sets instead of colliding in a few.
        let mut x = group.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        let set = (x % self.sets as u64) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `row` (belonging to `group`), updating RRIP state on hit and
    /// applying the singleton-group optimization on miss.
    pub fn lookup(&mut self, row: u64, group: u64) -> CacheLookup {
        let range = self.set_range(group);
        // First pass: exact hit.
        for i in range.clone() {
            if let Some(e) = &mut self.slots[i] {
                if e.row == row {
                    e.rrpv = 0;
                    return CacheLookup::Hit(e.slot);
                }
            }
        }
        // Second pass: same-group singleton (section V-D's second lookup).
        for i in range {
            if let Some(e) = &self.slots[i] {
                if e.group == group && e.singleton {
                    return CacheLookup::SingletonMiss;
                }
            }
        }
        CacheLookup::Miss
    }

    /// Inserts the FPT entry for `row` (quarantined at `slot`), evicting an
    /// RRIP victim if the set is full.
    pub fn insert(&mut self, row: u64, group: u64, slot: RqaSlot, singleton: bool) {
        let range = self.set_range(group);
        // Update in place if already present.
        for i in range.clone() {
            if let Some(e) = &mut self.slots[i] {
                if e.row == row {
                    e.slot = slot;
                    e.singleton = singleton;
                    e.rrpv = 0;
                    return;
                }
            }
        }
        let entry = CacheEntry {
            row,
            group,
            slot,
            rrpv: RRPV_INSERT,
            singleton,
        };
        // Prefer an invalid way.
        for i in range.clone() {
            if self.slots[i].is_none() {
                self.slots[i] = Some(entry);
                return;
            }
        }
        // RRIP victim selection: find RRPV == max, ageing the set as needed.
        loop {
            for i in range.clone() {
                if self.slots[i].map(|e| e.rrpv) == Some(RRPV_MAX) {
                    self.slots[i] = Some(entry);
                    return;
                }
            }
            for i in range.clone() {
                if let Some(e) = &mut self.slots[i] {
                    e.rrpv = (e.rrpv + 1).min(RRPV_MAX);
                }
            }
        }
    }

    /// Invalidates the cached entry for `row`, if present.
    pub fn invalidate(&mut self, row: u64, group: u64) {
        for i in self.set_range(group) {
            if self.slots[i].map(|e| e.row) == Some(row) {
                self.slots[i] = None;
                return;
            }
        }
    }

    /// Drops every cached entry (audit rebuild after injected faults: any
    /// entry may be poisoned, so the cache is flushed and refills on demand
    /// from the in-DRAM FPT).
    pub fn purge(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// Updates the singleton bit on every cached entry of `group` (called
    /// when the group's valid-entry count changes between 1 and 2+).
    pub fn set_group_singleton(&mut self, group: u64, singleton: bool) {
        for i in self.set_range(group) {
            if let Some(e) = &mut self.slots[i] {
                if e.group == group {
                    e.singleton = singleton;
                }
            }
        }
    }

    /// SRAM bits: valid + 13-bit tag (21-bit row minus 8 set-index bits) +
    /// 15-bit pointer + 2 RRIP bits + singleton bit = 32 bits per entry,
    /// i.e. 16 KB for the 4K-entry default (section V-G).
    pub fn sram_bits(&self) -> u64 {
        self.capacity() as u64 * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: u64) -> RqaSlot {
        RqaSlot::new(i)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = FptCache::new(64);
        c.insert(100, 6, slot(9), true);
        assert_eq!(c.lookup(100, 6), CacheLookup::Hit(slot(9)));
    }

    #[test]
    fn singleton_miss_skips_dram() {
        let mut c = FptCache::new(64);
        // Row 100 of group 6 is quarantined and is the group's only entry.
        c.insert(100, 6, slot(9), true);
        // Row 101, same group, not cached: the singleton bit proves it is
        // not quarantined.
        assert_eq!(c.lookup(101, 6), CacheLookup::SingletonMiss);
    }

    #[test]
    fn non_singleton_group_must_go_to_dram() {
        let mut c = FptCache::new(64);
        c.insert(100, 6, slot(9), false); // group has 2+ quarantined rows
        assert_eq!(c.lookup(101, 6), CacheLookup::Miss);
    }

    #[test]
    fn different_group_is_plain_miss() {
        let mut c = FptCache::new(64);
        c.insert(100, 6, slot(9), true);
        assert_eq!(c.lookup(200, 7), CacheLookup::Miss);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = FptCache::new(64);
        c.insert(100, 6, slot(9), true);
        c.invalidate(100, 6);
        assert_eq!(c.lookup(100, 6), CacheLookup::Miss);
        assert!(c.is_empty());
    }

    #[test]
    fn rrip_evicts_cold_entries_first() {
        let mut c = FptCache::new(16); // single set
                                       // Fill the set; rows 0..16 in the same group-set.
        for r in 0..16u64 {
            c.insert(r, r, slot(r), true); // groups alias into one set
        }
        // Touch rows 0..8 to make them hot (RRPV 0).
        for r in 0..8u64 {
            assert!(matches!(c.lookup(r, r), CacheLookup::Hit(_)));
        }
        // Insert a new entry: a cold row (8..16, RRPV 2->3) must be evicted.
        c.insert(99, 99, slot(99), true);
        let hot_survivors = (0..8u64)
            .filter(|&r| matches!(c.lookup(r, r), CacheLookup::Hit(_)))
            .count();
        assert_eq!(hot_survivors, 8, "hot entries must survive RRIP eviction");
    }

    #[test]
    fn group_singleton_update_propagates() {
        let mut c = FptCache::new(64);
        c.insert(100, 6, slot(9), true);
        // A second row of the group gets quarantined: group no longer
        // singleton, so the cached entry must stop vouching for its group.
        c.set_group_singleton(6, false);
        assert_eq!(c.lookup(101, 6), CacheLookup::Miss);
        c.set_group_singleton(6, true);
        assert_eq!(c.lookup(101, 6), CacheLookup::SingletonMiss);
    }

    #[test]
    fn purge_empties_the_cache() {
        let mut c = FptCache::new(64);
        c.insert(100, 6, slot(9), true);
        c.insert(200, 7, slot(1), true);
        c.purge();
        assert!(c.is_empty());
        assert_eq!(c.lookup(100, 6), CacheLookup::Miss);
    }

    #[test]
    fn reinsert_updates_slot() {
        let mut c = FptCache::new(64);
        c.insert(100, 6, slot(9), true);
        c.insert(100, 6, slot(11), false);
        assert_eq!(c.lookup(100, 6), CacheLookup::Hit(slot(11)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn paper_sizing_is_16kb_class() {
        let c = FptCache::new(4 * 1024);
        let kb = c.sram_bits() / 8 / 1024;
        assert!((16..=24).contains(&kb), "FPT-Cache = {kb} KB");
    }
}
