//! Resettable bloom filter over FPT groups (section V-B).
//!
//! The filter holds a single bit per *group* of rows whose FPT entries share
//! one half of a 64-byte FPT cache line (16 rows per group for the baseline).
//! A clear bit proves none of the group's rows are quarantined, eliminating
//! the in-DRAM FPT lookup for ~92% of accesses. Unlike a classic bloom
//! filter, entries can be removed: the hardware clears the bit when an FPT
//! invalidation finds all other entries of the group invalid (it just read
//! that FPT line anyway). This model tracks a per-bit count of valid entries
//! to implement exactly that semantics in O(1); only the one bit per entry is
//! SRAM (a counting bloom filter would cost ~6x more, which the paper
//! explicitly avoids).

use serde::{Deserialize, Serialize};

/// Statistics for bloom-filter behaviour.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomStats {
    /// Queries answered "definitely not quarantined" (bit clear).
    pub clear_hits: u64,
    /// Queries answered "possibly quarantined" (bit set).
    pub set_hits: u64,
    /// Removes that found a zero count (insert/remove mismatch — only ever
    /// non-zero after injected filter faults).
    pub underflows: u64,
}

/// Single-bit-per-entry resettable bloom filter.
///
/// # Example
///
/// ```
/// use aqua::ResettableBloomFilter;
///
/// let mut bf = ResettableBloomFilter::new(1024, 16);
/// assert!(!bf.maybe_quarantined(5));
/// bf.insert(5);
/// assert!(bf.maybe_quarantined(5));
/// bf.remove(5);
/// assert!(!bf.maybe_quarantined(5)); // resettable, unlike a classic bloom
/// ```
#[derive(Debug, Clone)]
pub struct ResettableBloomFilter {
    /// Valid-entry count per filter bit (bit value = `count > 0`).
    counts: Vec<u32>,
    rows_per_group: u32,
    stats: BloomStats,
}

impl ResettableBloomFilter {
    /// Creates a filter with `bits` entries for groups of `rows_per_group`
    /// rows. When `bits` is smaller than the number of groups, multiple
    /// groups alias onto one bit (extra false positives, never false
    /// negatives) — this is how the 8 KB/32 KB sensitivity points work.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `rows_per_group` is zero.
    pub fn new(bits: usize, rows_per_group: u32) -> Self {
        assert!(bits > 0 && rows_per_group > 0);
        ResettableBloomFilter {
            counts: vec![0; bits],
            rows_per_group,
            stats: BloomStats::default(),
        }
    }

    /// Number of filter bits.
    pub fn bits(&self) -> usize {
        self.counts.len()
    }

    /// Rows per FPT group.
    pub fn rows_per_group(&self) -> u32 {
        self.rows_per_group
    }

    /// The group a row belongs to.
    pub fn group_of(&self, row: u64) -> u64 {
        row / self.rows_per_group as u64
    }

    /// The filter bit a group hashes to.
    pub fn bit_of(&self, group: u64) -> usize {
        (group % self.counts.len() as u64) as usize
    }

    /// Queries the filter: `false` means *definitely not quarantined*.
    pub fn maybe_quarantined(&mut self, group: u64) -> bool {
        let set = self.counts[self.bit_of(group)] > 0;
        if set {
            self.stats.set_hits += 1;
        } else {
            self.stats.clear_hits += 1;
        }
        set
    }

    /// Non-recording query (for assertions and diagnostics).
    pub fn peek(&self, group: u64) -> bool {
        self.counts[self.bit_of(group)] > 0
    }

    /// Records that a row of `group` gained a valid FPT entry.
    pub fn insert(&mut self, group: u64) {
        let bit = self.bit_of(group);
        self.counts[bit] += 1;
    }

    /// Records that a row of `group` lost its FPT entry; the bit resets when
    /// the last entry of all aliasing groups goes away.
    ///
    /// A remove that finds a zero count saturates (and bumps
    /// [`BloomStats::underflows`]) instead of panicking: injected filter
    /// faults can legitimately zero a count while entries still exist, and
    /// the end-of-epoch audit rebuilds the counts from the FPT afterwards.
    pub fn remove(&mut self, group: u64) {
        let bit = self.bit_of(group);
        if self.counts[bit] == 0 {
            self.stats.underflows += 1;
            return;
        }
        self.counts[bit] -= 1;
    }

    /// Injected fault: zeroes the first non-zero count scanning circularly
    /// from `entropy % bits`, creating false negatives for every aliasing
    /// group. Returns the cleared bit, or `None` if the filter is empty.
    pub fn fault_clear_bit(&mut self, entropy: u64) -> Option<usize> {
        let bits = self.counts.len();
        let start = (entropy % bits as u64) as usize;
        let bit = (0..bits)
            .map(|i| (start + i) % bits)
            .find(|&b| self.counts[b] > 0)?;
        self.counts[bit] = 0;
        Some(bit)
    }

    /// Rebuilds the count table from an iterator of `(group, valid_entries)`
    /// pairs (the audit's view of the FPT). Returns whether any count
    /// changed. Summation is order-independent, so callers may feed hash-map
    /// iteration order without hurting determinism.
    pub fn rebuild<I: IntoIterator<Item = (u64, u32)>>(&mut self, groups: I) -> bool {
        let mut counts = vec![0u32; self.counts.len()];
        for (group, valid) in groups {
            counts[self.bit_of(group)] += valid;
        }
        let changed = counts != self.counts;
        self.counts = counts;
        changed
    }

    /// Fraction of bits currently set.
    pub fn fill_fraction(&self) -> f64 {
        let set = self.counts.iter().filter(|&&c| c > 0).count();
        set as f64 / self.counts.len() as f64
    }

    /// Query statistics so far.
    pub fn stats(&self) -> BloomStats {
        self.stats
    }

    /// SRAM bits: one bit per entry.
    pub fn sram_bits(&self) -> u64 {
        self.counts.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = ResettableBloomFilter::new(64, 16);
        for g in [3u64, 70, 134] {
            bf.insert(g);
        }
        for g in [3u64, 70, 134] {
            assert!(bf.maybe_quarantined(g));
        }
    }

    #[test]
    fn aliasing_gives_false_positives_only() {
        let mut bf = ResettableBloomFilter::new(64, 16);
        bf.insert(3);
        // Group 67 aliases group 3 in a 64-bit filter.
        assert!(bf.maybe_quarantined(67));
        // A non-aliasing group stays clear.
        assert!(!bf.maybe_quarantined(4));
    }

    #[test]
    fn reset_when_last_entry_leaves() {
        let mut bf = ResettableBloomFilter::new(64, 16);
        bf.insert(5);
        bf.insert(5); // two quarantined rows in the group
        bf.remove(5);
        assert!(bf.peek(5), "bit must stay set while one entry remains");
        bf.remove(5);
        assert!(!bf.peek(5), "bit must reset when the group empties");
    }

    #[test]
    fn unbalanced_remove_saturates() {
        let mut bf = ResettableBloomFilter::new(64, 16);
        bf.remove(1);
        assert_eq!(bf.stats().underflows, 1);
        assert!(!bf.peek(1));
    }

    #[test]
    fn fault_clear_and_rebuild() {
        let mut bf = ResettableBloomFilter::new(64, 16);
        bf.insert(3);
        bf.insert(3);
        bf.insert(10);
        // Scan starts at bit 5, wraps, and lands on bit 10.
        assert_eq!(bf.fault_clear_bit(5), Some(10));
        assert!(!bf.peek(10), "cleared bit must read as a false negative");
        assert!(bf.peek(3));
        // Audit rebuild restores the counts from the (group, valid) view.
        assert!(bf.rebuild([(3u64, 2u32), (10, 1)]));
        assert!(bf.peek(10));
        bf.remove(3);
        assert!(bf.peek(3), "one of two entries remains");
        // Empty filter has nothing to clear.
        let mut empty = ResettableBloomFilter::new(8, 16);
        assert_eq!(empty.fault_clear_bit(0), None);
    }

    #[test]
    fn stats_track_query_outcomes() {
        let mut bf = ResettableBloomFilter::new(64, 16);
        bf.insert(1);
        bf.maybe_quarantined(1);
        bf.maybe_quarantined(2);
        let s = bf.stats();
        assert_eq!(s.set_hits, 1);
        assert_eq!(s.clear_hits, 1);
    }

    #[test]
    fn paper_sizing_is_16kb() {
        let bf = ResettableBloomFilter::new(128 * 1024, 16);
        assert_eq!(bf.sram_bits() / 8 / 1024, 16);
    }

    #[test]
    fn fill_fraction() {
        let mut bf = ResettableBloomFilter::new(4, 16);
        assert_eq!(bf.fill_fraction(), 0.0);
        bf.insert(0);
        bf.insert(1);
        assert_eq!(bf.fill_fraction(), 0.5);
    }
}
