//! AQUA error types.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring or operating the AQUA engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AquaError {
    /// The requested quarantine area does not fit in the configured DRAM.
    RqaTooLarge {
        /// Requested RQA rows.
        requested: u64,
        /// Rows available in the module.
        available: u64,
    },
    /// The forward-pointer table ran out of capacity (CAT overflow after
    /// bounded relocation). Indicates under-provisioning relative to the RQA.
    FptFull {
        /// Configured FPT entry count.
        capacity: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig(&'static str),
    /// A row id stored in a table fell outside the configured geometry
    /// (corrupted table state, or a workload row id out of range).
    RowOutOfGeometry {
        /// Offending flat row id.
        row: u64,
        /// Total rows in the module.
        rows: u64,
    },
    /// An RQA slot index fell outside the quarantine area (corrupted
    /// forward pointer).
    SlotOutOfRange {
        /// Offending slot index.
        slot: u64,
        /// Configured RQA slots.
        slots: u64,
    },
    /// The forward and reverse pointer tables disagree about a mapping.
    TableInconsistency {
        /// The row whose forward pointer is inconsistent.
        row: u64,
        /// The slot involved in the disagreement.
        slot: u64,
    },
}

impl fmt::Display for AquaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AquaError::RqaTooLarge {
                requested,
                available,
            } => write!(
                f,
                "quarantine area of {requested} rows exceeds the {available} rows available"
            ),
            AquaError::FptFull { capacity } => {
                write!(f, "forward-pointer table overflowed ({capacity} entries)")
            }
            AquaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AquaError::RowOutOfGeometry { row, rows } => {
                write!(f, "row {row} outside the {rows}-row module geometry")
            }
            AquaError::SlotOutOfRange { slot, slots } => {
                write!(f, "RQA slot {slot} out of range ({slots} slots)")
            }
            AquaError::TableInconsistency { row, slot } => {
                write!(f, "FPT/RPT inconsistency for row {row} at slot {slot}")
            }
        }
    }
}

impl Error for AquaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AquaError::RqaTooLarge {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(AquaError::FptFull { capacity: 4 }.to_string().contains('4'));
        assert!(AquaError::InvalidConfig("x").to_string().contains('x'));
        let e = AquaError::RowOutOfGeometry { row: 9, rows: 4 };
        assert!(e.to_string().contains("row 9"));
        let e = AquaError::SlotOutOfRange { slot: 7, slots: 2 };
        assert!(e.to_string().contains("slot 7"));
        let e = AquaError::TableInconsistency { row: 3, slot: 1 };
        assert!(e.to_string().contains("row 3") && e.to_string().contains("slot 1"));
    }
}
