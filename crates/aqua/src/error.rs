//! AQUA error types.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring or operating the AQUA engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AquaError {
    /// The requested quarantine area does not fit in the configured DRAM.
    RqaTooLarge {
        /// Requested RQA rows.
        requested: u64,
        /// Rows available in the module.
        available: u64,
    },
    /// The forward-pointer table ran out of capacity (CAT overflow after
    /// bounded relocation). Indicates under-provisioning relative to the RQA.
    FptFull {
        /// Configured FPT entry count.
        capacity: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig(&'static str),
}

impl fmt::Display for AquaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AquaError::RqaTooLarge {
                requested,
                available,
            } => write!(
                f,
                "quarantine area of {requested} rows exceeds the {available} rows available"
            ),
            AquaError::FptFull { capacity } => {
                write!(f, "forward-pointer table overflowed ({capacity} entries)")
            }
            AquaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for AquaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AquaError::RqaTooLarge {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(AquaError::FptFull { capacity: 4 }.to_string().contains('4'));
        assert!(AquaError::InvalidConfig("x").to_string().contains('x'));
    }
}
