//! Row Quarantine Area (RQA) allocation.
//!
//! The RQA is architected as a circular buffer (section IV-D): the incoming
//! row always lands at the slot under the head pointer, which then advances.
//! Correct sizing (Eq. 3) guarantees the head cannot lap itself within one
//! 64 ms epoch, so a slot installed this epoch is never reused this epoch —
//! the core of security property P3. The allocator verifies that invariant at
//! runtime instead of assuming it.

use serde::{Deserialize, Serialize};

/// Index of one slot (row) in the quarantine area.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RqaSlot(u64);

impl RqaSlot {
    /// Creates a slot index.
    pub const fn new(i: u64) -> Self {
        RqaSlot(i)
    }

    /// The slot index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

/// Result of allocating the next quarantine destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RqaAllocation {
    /// The slot to install into.
    pub slot: RqaSlot,
    /// `true` if this allocation reused a slot already written this epoch —
    /// a security violation meaning the RQA is undersized for the observed
    /// mitigation rate.
    pub reused_within_epoch: bool,
}

/// Circular-buffer allocator over the quarantine slots.
#[derive(Debug, Clone)]
pub struct QuarantineArea {
    slots: u64,
    head: u64,
    epoch: u64,
    /// Epoch in which each slot was last allocated (`u64::MAX` = never).
    last_alloc_epoch: Vec<u64>,
    installs_this_epoch: u64,
}

const NEVER: u64 = u64::MAX;

impl QuarantineArea {
    /// Creates an allocator over `slots` quarantine rows.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: u64) -> Self {
        assert!(slots > 0, "quarantine area must have at least one slot");
        QuarantineArea {
            slots,
            head: 0,
            epoch: 0,
            last_alloc_epoch: vec![NEVER; slots as usize],
            installs_this_epoch: 0,
        }
    }

    /// Number of quarantine slots.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The slot the next install will use.
    pub fn head(&self) -> RqaSlot {
        RqaSlot(self.head)
    }

    /// Installs performed in the current epoch.
    pub fn installs_this_epoch(&self) -> u64 {
        self.installs_this_epoch
    }

    /// Allocates the next quarantine destination and advances the head.
    ///
    /// The caller is responsible for evicting any stale (previous-epoch)
    /// occupant of the returned slot; the allocator only tracks reuse.
    pub fn allocate(&mut self) -> RqaAllocation {
        let slot = self.head;
        let reused = self.last_alloc_epoch[slot as usize] == self.epoch;
        self.last_alloc_epoch[slot as usize] = self.epoch;
        self.head = (self.head + 1) % self.slots;
        self.installs_this_epoch += 1;
        RqaAllocation {
            slot: RqaSlot(slot),
            reused_within_epoch: reused,
        }
    }

    /// Advances to the next epoch (64 ms boundary).
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        self.installs_this_epoch = 0;
    }

    /// Whether `slot` was allocated during the current epoch.
    pub fn allocated_this_epoch(&self, slot: RqaSlot) -> bool {
        self.last_alloc_epoch[slot.index() as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_circular() {
        let mut rqa = QuarantineArea::new(3);
        let s: Vec<u64> = (0..5).map(|_| rqa.allocate().slot.index()).collect();
        assert_eq!(s, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn reuse_within_epoch_is_flagged() {
        let mut rqa = QuarantineArea::new(2);
        assert!(!rqa.allocate().reused_within_epoch);
        assert!(!rqa.allocate().reused_within_epoch);
        // Head wrapped within the same epoch: violation.
        assert!(rqa.allocate().reused_within_epoch);
    }

    #[test]
    fn no_violation_across_epochs() {
        let mut rqa = QuarantineArea::new(2);
        rqa.allocate();
        rqa.allocate();
        rqa.advance_epoch();
        // Same slots, next epoch: legal (lazy drain handles the eviction).
        assert!(!rqa.allocate().reused_within_epoch);
        assert!(!rqa.allocate().reused_within_epoch);
        assert!(rqa.allocate().reused_within_epoch);
    }

    #[test]
    fn install_counter_resets_per_epoch() {
        let mut rqa = QuarantineArea::new(10);
        rqa.allocate();
        rqa.allocate();
        assert_eq!(rqa.installs_this_epoch(), 2);
        rqa.advance_epoch();
        assert_eq!(rqa.installs_this_epoch(), 0);
        assert_eq!(rqa.epoch(), 1);
    }

    #[test]
    fn allocated_this_epoch_tracks_slots() {
        let mut rqa = QuarantineArea::new(4);
        let a = rqa.allocate().slot;
        assert!(rqa.allocated_this_epoch(a));
        assert!(!rqa.allocated_this_epoch(RqaSlot::new(3)));
        rqa.advance_epoch();
        assert!(!rqa.allocated_this_epoch(a));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        QuarantineArea::new(0);
    }
}
