//! AQUA: scalable Rowhammer mitigation by quarantining aggressor rows.
//!
//! This crate implements the primary contribution of the MICRO 2022 paper
//! *AQUA: Scalable Rowhammer Mitigation by Quarantining Aggressor Rows at
//! Runtime*. AQUA breaks the spatial correlation between aggressor and victim
//! rows by migrating any row that crosses an activation threshold into a
//! dedicated, software-invisible *Row Quarantine Area* (RQA). Because the
//! security of AQUA rests on **isolation** rather than randomization, the
//! migration threshold can be `T_RH / 2` (instead of RRS's `T_RH / 6`),
//! yielding an order of magnitude fewer migrations and far smaller tables.
//!
//! # Architecture
//!
//! - [`ForwardPointerTable`] (FPT): maps quarantined row → RQA slot. The SRAM
//!   variant is an over-provisioned [`CollisionAvoidanceTable`] (CAT, adopted
//!   from MIRAGE) with 32K entries for 23K valid rows.
//! - [`ReversePointerTable`] (RPT): direct-mapped, one entry per RQA slot,
//!   identifying the original location of the quarantined row.
//! - [`QuarantineArea`] (RQA): a circular buffer of reserved DRAM rows sized
//!   by Eq. 3 of the paper so that no slot is ever reused within a 64 ms
//!   epoch; stale entries from past epochs are drained lazily on install.
//! - [`MappedTables`]: the section V design that moves FPT and RPT to DRAM,
//!   filtered by a [`ResettableBloomFilter`] and cached in a 16-way
//!   RRIP-managed [`FptCache`] with the *singleton-group* optimization.
//! - [`AquaEngine`]: ties the pieces together and implements the
//!   [`Mitigation`](aqua_dram::mitigation::Mitigation) trait consumed by the
//!   system simulator.
//!
//! # Security guarantee
//!
//! With a correctly sized RQA and a sound tracker, **no physical row receives
//! `T_RH` activations within a refresh window** (section VI-A, properties
//! P1–P3). The engine enforces the RQA never-reuse-within-epoch invariant at
//! runtime and reports any violation (tests deliberately undersize the RQA to
//! prove the check fires).
//!
//! # Example
//!
//! ```
//! use aqua::{AquaConfig, AquaEngine};
//! use aqua_dram::mitigation::Mitigation;
//! use aqua_dram::{BaselineConfig, GlobalRowId, Time};
//!
//! let base = BaselineConfig::paper_table1();
//! let cfg = AquaConfig::for_rowhammer_threshold(1000, &base);
//! let mut engine = AquaEngine::new(cfg)?;
//!
//! // Hammer one row: after 500 activations AQUA quarantines it.
//! let row = GlobalRowId::new(77);
//! let mut now = Time::ZERO;
//! for _ in 0..500 {
//!     let t = engine.translate(row, now);
//!     let actions = engine.on_activation(t.phys, now);
//!     now = now + aqua_dram::Duration::from_ns(45);
//!     if !actions.is_empty() {
//!         break;
//!     }
//! }
//! assert_eq!(engine.mitigation_stats().mitigations_triggered, 1);
//! // The row now translates to a quarantine-area location.
//! let t = engine.translate(row, now);
//! assert!(engine.config().rqa_region_contains(t.phys));
//! # Ok::<(), aqua::AquaError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Robustness: library code must degrade gracefully, never abort. Tests keep
// their unwraps (a failed unwrap there IS the test failing).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod bloom;
mod cat;
mod config;
mod engine;
mod error;
mod fpt;
mod fpt_cache;
mod mapped;
mod rpt;
mod rqa;
mod storage;

pub use bloom::ResettableBloomFilter;
pub use cat::CollisionAvoidanceTable;
pub use config::{required_rqa_rows, AquaConfig, TableMode, TrackerKind};
pub use engine::{AquaEngine, AquaStats};
pub use error::AquaError;
pub use fpt::ForwardPointerTable;
pub use fpt_cache::{CacheLookup, FptCache};
pub use mapped::{LookupBreakdown, LookupOutcome, MappedLookup, MappedTables};
pub use rpt::{ReversePointerTable, RptEntry};
pub use rqa::{QuarantineArea, RqaSlot};
pub use storage::StorageReport;
