//! The AQUA quarantine engine.

use crate::{
    AquaConfig, AquaError, ForwardPointerTable, LookupBreakdown, LookupOutcome, MappedTables,
    QuarantineArea, ReversePointerTable, RptEntry, RqaSlot, TableMode, TrackerKind,
};
use aqua_dram::mitigation::{
    DataMovement, DegradedMode, MigrationKind, Mitigation, MitigationAction, MitigationStats,
    Translation,
};
use aqua_dram::{BankId, Duration, GlobalRowId, RowAddr, Time};
use aqua_faults::{mix, FaultHealth, FaultKind, InjectOutcome};
use aqua_telemetry::{Counter, EventKind, Telemetry};
use aqua_tracker::{
    AggressorTracker, ExactTracker, HydraConfig, HydraTracker, MisraGriesTracker, TrackerConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// SRAM table-lookup latency on the access critical path (3–4 cycles at
/// 3 GHz, section IV-G).
const SRAM_LOOKUP: Duration = Duration::from_ps(1_300);

aqua_telemetry::stat_struct! {
    /// Cumulative AQUA event counts.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct AquaStats {
        /// Rows installed into the RQA from their original location.
        pub installs: u64,
        /// Quarantined rows moved to a new RQA slot (still hot while quarantined).
        pub internal_moves: u64,
        /// Stale rows moved back to their original location (lazy drain).
        pub evictions: u64,
        /// Stale rows drained in the background (`drain_per_refresh > 0`).
        pub background_drains: u64,
        /// RQA slots reused within one epoch (security violations; zero when the
        /// RQA is sized per Eq. 3).
        pub violations: u64,
        /// Mitigations signalled by the tracker.
        pub mitigations: u64,
    }
}

/// Registered telemetry counter handles (plain cells when the `telemetry`
/// feature is off).
#[derive(Debug, Clone, Default)]
struct AquaCounters {
    installs: Counter,
    internal_moves: Counter,
    evictions: Counter,
    background_drains: Counter,
    mitigations: Counter,
    fpt_cache_misses: Counter,
    faults_injected: Counter,
    faults_recovered: Counter,
}

impl AquaStats {
    /// Total row migrations (the unit of Figure 6): every install, internal
    /// move, eviction, and background drain moves exactly one row.
    pub fn row_migrations(&self) -> u64 {
        self.installs + self.internal_moves + self.evictions + self.background_drains
    }
}

/// Table backend: section IV (SRAM) or section V (memory-mapped).
#[derive(Debug, Clone)]
enum Backend {
    Sram(ForwardPointerTable),
    // Boxed: MappedTables (filter + cache + audit state) dwarfs the SRAM
    // variant, and one engine holds exactly one backend.
    Mapped(Box<MappedTables>),
}

impl Backend {
    fn lookup_slot(&mut self, row: GlobalRowId) -> (Option<RqaSlot>, u32, Option<LookupOutcome>) {
        match self {
            Backend::Sram(fpt) => (fpt.lookup(row), 0, None),
            Backend::Mapped(m) => {
                let l = m.lookup(row);
                (l.slot, l.dram_reads, Some(l.outcome))
            }
        }
    }

    /// Returns the number of in-DRAM table writes the update required.
    fn map(&mut self, row: GlobalRowId, slot: RqaSlot) -> Result<u32, AquaError> {
        match self {
            Backend::Sram(fpt) => {
                fpt.map(row, slot)?;
                Ok(0)
            }
            Backend::Mapped(m) => Ok(m.map(row, slot)),
        }
    }

    fn unmap(&mut self, row: GlobalRowId) -> u32 {
        match self {
            Backend::Sram(fpt) => {
                fpt.unmap(row);
                0
            }
            Backend::Mapped(m) => m.unmap(row).1,
        }
    }

    fn mappings(&self) -> Vec<(GlobalRowId, RqaSlot)> {
        match self {
            Backend::Sram(fpt) => fpt.iter().collect(),
            Backend::Mapped(m) => m.mappings(),
        }
    }

    /// Non-mutating forward lookup, bypassing the mapped-mode filter and
    /// cache (the audit's ground-truth view).
    fn peek(&self, row: GlobalRowId) -> Option<RqaSlot> {
        match self {
            Backend::Sram(fpt) => fpt.lookup(row),
            Backend::Mapped(m) => m.peek(row),
        }
    }

    /// Injected fault: rewrites an existing forward pointer to `slot`.
    /// Returns whether an entry was actually corrupted.
    fn fault_set_fpt(&mut self, row: GlobalRowId, slot: RqaSlot) -> bool {
        match self {
            Backend::Sram(fpt) => {
                if fpt.lookup(row).is_none() {
                    return false;
                }
                fpt.map(row, slot).is_ok()
            }
            Backend::Mapped(m) => m.fault_corrupt_fpt(row, slot),
        }
    }
}

/// The AQUA mitigation engine for one rank.
///
/// Owns the aggressor-row tracker, the quarantine-area allocator, and the
/// mapping tables (SRAM or memory-mapped), and implements the
/// [`Mitigation`] protocol the system simulator drives.
#[derive(Debug)]
pub struct AquaEngine {
    config: AquaConfig,
    tracker: Box<dyn AggressorTracker + Send>,
    rqa: QuarantineArea,
    rpt: ReversePointerTable,
    backend: Backend,
    migration_latency: Duration,
    /// Sweep position of the background drain (`drain_per_refresh > 0`).
    drain_cursor: u64,
    stats: AquaStats,
    telemetry: Telemetry,
    counters: AquaCounters,
    /// Lookup breakdown at the previous epoch boundary (drives the
    /// per-epoch FPT-cache hit-rate gauge).
    epoch_breakdown: LookupBreakdown,
    /// Set once any fault has been injected; gates the end-of-epoch table
    /// audit so fault-free runs stay bit-identical to the plain engine.
    faults_active: bool,
    /// An injected migration interrupt waiting to abort the next quarantine.
    pending_interrupt: bool,
    /// Banks whose tables went unrecoverably inconsistent; they run under
    /// the victim-refresh fallback instead of row migration.
    degraded: BTreeSet<u32>,
    health: FaultHealth,
    /// Victim-refresh rows issued by the degraded-bank fallback.
    victim_refreshes: u64,
    /// Latest simulated timestamp seen (ps); timestamps the end-of-epoch
    /// audit/degraded spans, since `end_epoch` carries no time.
    last_ps: u64,
}

impl AquaEngine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AquaError`] if the configuration is invalid.
    pub fn new(config: AquaConfig) -> Result<Self, AquaError> {
        config.validate()?;
        let tracker: Box<dyn AggressorTracker + Send> = match config.tracker {
            TrackerKind::MisraGries => {
                let cfg = TrackerConfig::with_mitigation_threshold(config.mitigation_threshold)
                    .entries_per_bank(config.tracker_entries_per_bank);
                Box::new(MisraGriesTracker::new(cfg, config.geometry.total_banks()))
            }
            TrackerKind::Hydra => {
                let mut cfg = HydraConfig::for_rowhammer_threshold(config.t_rh);
                cfg.mitigation_threshold = config.mitigation_threshold;
                cfg.group_threshold = (config.mitigation_threshold / 2).max(1);
                Box::new(HydraTracker::new(cfg, config.geometry.rows_per_bank))
            }
            TrackerKind::Cra => {
                let mut cfg = aqua_tracker::CraConfig::for_rowhammer_threshold(config.t_rh);
                cfg.mitigation_threshold = config.mitigation_threshold;
                Box::new(aqua_tracker::CraTracker::new(cfg))
            }
            TrackerKind::Exact => Box::new(ExactTracker::new(config.mitigation_threshold)),
        };
        let backend = match config.table_mode {
            TableMode::Sram => Backend::Sram(ForwardPointerTable::new(config.fpt_entries)),
            TableMode::Mapped {
                bloom_bits,
                cache_entries,
            } => {
                let mut m = MappedTables::new(bloom_bits, cache_entries, 16);
                // Pin the FPT entries of the table-storing rows in SRAM so a
                // table lookup never recurses (section VI-B).
                for addr in table_region_rows(&config) {
                    let Ok(gid) = config.geometry.flatten(addr) else {
                        return Err(AquaError::InvalidConfig(
                            "table region lies outside the module geometry",
                        ));
                    };
                    m.pin(gid);
                }
                Backend::Mapped(Box::new(m))
            }
        };
        let migration_latency = config.timing.row_migration_latency(&config.geometry);
        Ok(AquaEngine {
            tracker,
            rqa: QuarantineArea::new(config.rqa_rows),
            rpt: ReversePointerTable::new(config.rqa_rows),
            backend,
            migration_latency,
            drain_cursor: 0,
            config,
            stats: AquaStats::default(),
            telemetry: Telemetry::disabled(),
            counters: AquaCounters::default(),
            epoch_breakdown: LookupBreakdown::default(),
            faults_active: false,
            pending_interrupt: false,
            degraded: BTreeSet::new(),
            health: FaultHealth::default(),
            victim_refreshes: 0,
            last_ps: 0,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AquaConfig {
        &self.config
    }

    /// AQUA-specific statistics.
    pub fn stats(&self) -> AquaStats {
        self.stats
    }

    /// The tracker's statistics.
    pub fn tracker_stats(&self) -> aqua_tracker::TrackerStats {
        self.tracker.stats()
    }

    /// SRAM footprint of the configured tracker, in bits (Table VII input).
    pub fn tracker_sram_bits(&self) -> u64 {
        self.tracker.sram_bits()
    }

    /// Figure 10 lookup breakdown (memory-mapped mode only).
    pub fn lookup_breakdown(&self) -> Option<crate::LookupBreakdown> {
        match &self.backend {
            Backend::Sram(_) => None,
            Backend::Mapped(m) => Some(m.breakdown()),
        }
    }

    /// Number of rows currently quarantined.
    pub fn quarantined_rows(&self) -> usize {
        self.rpt.valid_count()
    }

    /// Verifies that the FPT and RPT are mutually consistent inverse maps.
    ///
    /// # Errors
    ///
    /// Returns [`AquaError::TableInconsistency`] naming the offending row
    /// and slot on any disagreement; used by property tests and by the
    /// fault-injection audit's self-checks.
    pub fn check_consistency(&self) -> Result<(), AquaError> {
        let mappings = self.backend.mappings();
        for (row, slot) in &mappings {
            match self.rpt.get(slot.index()) {
                Some(entry) if entry.original == *row => {}
                Some(_) | None => {
                    return Err(AquaError::TableInconsistency {
                        row: row.index(),
                        slot: slot.index(),
                    });
                }
            }
        }
        if mappings.len() != self.rpt.valid_count() {
            // Some occupied RPT slot has no forward pointer; name one.
            let mapped: BTreeSet<u64> = mappings.iter().map(|(_, s)| s.index()).collect();
            for slot in 0..self.rpt.slots() {
                if let Some(entry) = self.rpt.get(slot) {
                    if !mapped.contains(&slot) {
                        return Err(AquaError::TableInconsistency {
                            row: entry.original.index(),
                            slot,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Evicts the occupant of `slot` back to its original location, if any.
    /// Returns whether a row was actually moved out (the caller accounts it
    /// as an on-demand eviction or a background drain).
    fn evict_slot(
        &mut self,
        slot: RqaSlot,
        now: Time,
        actions: &mut Vec<MitigationAction>,
    ) -> bool {
        if let Some(entry) = self.rpt.clear(slot.index()) {
            let writes = self.backend.unmap(entry.original);
            let Ok(home) = self.config.geometry.expand(entry.original) else {
                // Corrupted back-pointer (AquaError::RowOutOfGeometry when
                // audited): the occupant has no home to return to, so its
                // data is untraceable. Degrade the slot's bank to the
                // victim-refresh fallback and keep simulating.
                let bank = self.config.rqa_slot_location(slot.index()).bank;
                self.degrade_bank(bank.index());
                self.stats.violations += 1;
                if writes > 0 {
                    actions.push(MitigationAction::TableWrites { count: writes });
                }
                return false;
            };
            actions.push(MitigationAction::BlockChannel {
                duration: self.migration_latency,
                kind: MigrationKind::QuarantineEvict,
                movement: DataMovement::Move {
                    from: self.config.rqa_slot_location(slot.index()),
                    to: home,
                },
            });
            if writes > 0 {
                actions.push(MitigationAction::TableWrites { count: writes });
            }
            self.telemetry
                .span_start("aqua.evict", now.as_ps())
                .end(now.as_ps());
            self.telemetry.record(
                now.as_ps(),
                EventKind::QuarantineOut {
                    row: entry.original.index(),
                    slot: slot.index(),
                },
            );
            true
        } else {
            false
        }
    }

    /// Quarantines `row` (currently residing at `from_slot` if already
    /// quarantined) into a fresh RQA slot.
    fn quarantine(
        &mut self,
        row: GlobalRowId,
        from_slot: Option<RqaSlot>,
        now: Time,
        actions: &mut Vec<MitigationAction>,
    ) {
        if self.pending_interrupt {
            // Injected fault: the migration is interrupted before any table
            // write or data movement is committed, so the row simply stays
            // where it is — fully recovered by construction.
            self.pending_interrupt = false;
            self.health.recovered += 1;
            self.counters.faults_recovered.inc();
            self.telemetry
                .span_start("aqua.fault_repair", now.as_ps())
                .end(now.as_ps());
            return;
        }
        let from = match from_slot {
            Some(old) => self.config.rqa_slot_location(old.index()),
            None => match self.config.geometry.expand(row) {
                Ok(addr) => addr,
                Err(_) => {
                    // AquaError::RowOutOfGeometry territory: a row id that
                    // is not a real row cannot be moved. Refuse the
                    // quarantine and count the inconsistency.
                    self.stats.violations += 1;
                    return;
                }
            },
        };
        // RQA enqueue: pick the destination slot in the quarantine area.
        let enqueue = self.telemetry.span_start("aqua.rqa_enqueue", now.as_ps());
        let alloc = self.rqa.allocate();
        enqueue.end(now.as_ps());
        if alloc.reused_within_epoch {
            self.stats.violations += 1;
        }
        // Lazy drain: the destination may hold a row quarantined in a past
        // epoch; move it home first (2.74 us total path, section IV-D).
        if self.evict_slot(alloc.slot, now, actions) {
            self.stats.evictions += 1;
            self.counters.evictions.inc();
        }
        actions.push(MitigationAction::BlockChannel {
            duration: self.migration_latency,
            kind: if from_slot.is_some() {
                MigrationKind::QuarantineInternal
            } else {
                MigrationKind::QuarantineInstall
            },
            movement: DataMovement::Move {
                from,
                to: self.config.rqa_slot_location(alloc.slot.index()),
            },
        });
        // FPT/RPT update: commit the new forward mapping.
        let table_update = self.telemetry.span_start("aqua.table_update", now.as_ps());
        let writes = match self.backend.map(row, alloc.slot) {
            Ok(w) => w,
            Err(_) => {
                // FPT exhaustion: refuse the quarantine rather than corrupt
                // state. Counted as a violation — with paper-sized tables
                // this is unreachable.
                self.stats.violations += 1;
                table_update.cancel();
                return;
            }
        };
        table_update.end(now.as_ps());
        if writes > 0 {
            actions.push(MitigationAction::TableWrites { count: writes });
        }
        if let Some(old) = from_slot {
            self.rpt.clear(old.index());
            self.stats.internal_moves += 1;
            self.counters.internal_moves.inc();
            self.telemetry.record(
                now.as_ps(),
                EventKind::QuarantineOut {
                    row: row.index(),
                    slot: old.index(),
                },
            );
        } else {
            self.stats.installs += 1;
            self.counters.installs.inc();
        }
        self.telemetry.record(
            now.as_ps(),
            EventKind::QuarantineIn {
                row: row.index(),
                slot: alloc.slot.index(),
            },
        );
        self.rpt.set(
            alloc.slot.index(),
            RptEntry {
                original: row,
                install_epoch: self.rqa.epoch(),
            },
        );
    }

    /// Background drain: evicts up to `drain_per_refresh` stale entries per
    /// sweep step (the paper's "periodically draining old entries"
    /// optimization that takes evictions off the critical path). Invoked via
    /// [`Mitigation::on_refresh_tick`] at every refresh command.
    fn background_drain(&mut self, now: Time, actions: &mut Vec<MitigationAction>) {
        let n = self.config.drain_per_refresh;
        if n == 0 {
            return;
        }
        let slots = self.rqa.slots();
        for _ in 0..n {
            let slot = RqaSlot::new(self.drain_cursor);
            self.drain_cursor = (self.drain_cursor + 1) % slots;
            if self.rqa.allocated_this_epoch(slot) {
                continue;
            }
            if self.evict_slot(slot, now, actions) {
                self.stats.background_drains += 1;
                self.counters.background_drains.inc();
            }
        }
    }

    /// Marks a bank's tables unrecoverable; it runs under victim refresh
    /// from now on.
    fn degrade_bank(&mut self, bank: u32) {
        if self.degraded.insert(bank) {
            self.health.unrecoverable += 1;
        }
        self.health.degraded_banks = self.degraded.len() as u64;
    }

    /// Accounts one successful audit repair.
    fn note_repair(&mut self) {
        self.health.repairs += 1;
        self.health.recovered += 1;
        self.counters.faults_recovered.inc();
        self.telemetry
            .span_start("aqua.fault_repair", self.last_ps)
            .end(self.last_ps);
    }

    /// Blast-radius neighbours (distance 1 and 2) of `phys`, for the
    /// victim-refresh fallback on degraded banks.
    fn victim_rows(&self, phys: RowAddr) -> Vec<RowAddr> {
        let rows = i64::from(self.config.geometry.rows_per_bank);
        [-2i64, -1, 1, 2]
            .iter()
            .map(|d| i64::from(phys.row) + d)
            .filter(|r| (0..rows).contains(r))
            .map(|r| RowAddr {
                bank: phys.bank,
                row: r as u32,
            })
            .collect()
    }

    /// Deterministically picks an occupied RQA slot, scanning circularly
    /// from a pseudo-random start. `None` when nothing is quarantined.
    fn pick_victim_slot(&self, entropy: u64) -> Option<u64> {
        let slots = self.rpt.slots();
        if slots == 0 {
            return None;
        }
        let start = entropy % slots;
        (0..slots)
            .map(|i| (start + i) % slots)
            .find(|&s| self.rpt.get(s).is_some())
    }

    /// A pseudo-random slot different from `avoid`; `None` if the RQA has
    /// fewer than two slots (no wrong value exists).
    fn wrong_slot(&self, entropy: u64, avoid: u64) -> Option<RqaSlot> {
        let slots = self.rpt.slots();
        if slots < 2 {
            return None;
        }
        let mut w = mix(entropy) % slots;
        if w == avoid {
            w = (w + 1) % slots;
        }
        Some(RqaSlot::new(w))
    }

    /// Forces one quarantined row's forward pointer to a wrong slot.
    fn fault_fpt_flip(&mut self, entropy: u64) -> InjectOutcome {
        let Some(slot) = self.pick_victim_slot(entropy) else {
            return InjectOutcome::Applied; // nothing quarantined: fault hit vacant state
        };
        let Some(entry) = self.rpt.get(slot) else {
            return InjectOutcome::Applied;
        };
        let Some(wrong) = self.wrong_slot(entropy, slot) else {
            return InjectOutcome::Applied;
        };
        if self.backend.fault_set_fpt(entry.original, wrong) {
            InjectOutcome::CorruptedTranslation {
                rows: vec![entry.original.index()],
            }
        } else {
            InjectOutcome::Applied
        }
    }

    /// Corrupts one RPT entry's back-pointer. The wrong row is drawn from
    /// twice the module's row range, so roughly half the flips point outside
    /// the geometry and exercise the unrecoverable/degrade path.
    fn fault_rpt_flip(&mut self, entropy: u64) -> InjectOutcome {
        let Some(slot) = self.pick_victim_slot(entropy) else {
            return InjectOutcome::Applied;
        };
        let Some(entry) = self.rpt.get(slot) else {
            return InjectOutcome::Applied;
        };
        let total = self.config.geometry.total_rows();
        let mut wrong = mix(entropy) % (total * 2);
        if wrong == entry.original.index() {
            wrong = (wrong + 1) % (total * 2);
        }
        self.rpt.set(
            slot,
            RptEntry {
                original: GlobalRowId::new(wrong),
                install_epoch: entry.install_epoch,
            },
        );
        let mut rows = vec![entry.original.index()];
        if wrong < total {
            rows.push(wrong);
        }
        rows.sort_unstable();
        rows.dedup();
        InjectOutcome::CorruptedTranslation { rows }
    }

    /// Drops one RPT entry, orphaning its forward pointer.
    fn fault_rpt_drop(&mut self, entropy: u64) -> InjectOutcome {
        let Some(slot) = self.pick_victim_slot(entropy) else {
            return InjectOutcome::Applied;
        };
        let Some(entry) = self.rpt.clear(slot) else {
            return InjectOutcome::Applied;
        };
        InjectOutcome::CorruptedTranslation {
            rows: vec![entry.original.index()],
        }
    }

    /// Zeroes one bloom count (mapped mode only): false negatives for every
    /// quarantined row whose group hashes to the cleared bit.
    fn fault_filter_clear(&mut self, entropy: u64) -> InjectOutcome {
        match &mut self.backend {
            Backend::Sram(_) => InjectOutcome::Unsupported,
            Backend::Mapped(m) => {
                let rows = m.fault_clear_filter(entropy);
                if rows.is_empty() {
                    InjectOutcome::Applied
                } else {
                    InjectOutcome::CorruptedTranslation { rows }
                }
            }
        }
    }

    /// Inserts a wrong-slot entry into the FPT-Cache (mapped mode only);
    /// the in-DRAM FPT stays correct.
    fn fault_cache_poison(&mut self, entropy: u64) -> InjectOutcome {
        if matches!(self.backend, Backend::Sram(_)) {
            return InjectOutcome::Unsupported;
        }
        let Some(slot) = self.pick_victim_slot(entropy) else {
            return InjectOutcome::Applied;
        };
        let Some(entry) = self.rpt.get(slot) else {
            return InjectOutcome::Applied;
        };
        let Some(wrong) = self.wrong_slot(entropy, slot) else {
            return InjectOutcome::Applied;
        };
        let Backend::Mapped(m) = &mut self.backend else {
            return InjectOutcome::Applied;
        };
        if m.fault_poison_cache(entry.original, wrong) {
            InjectOutcome::CorruptedTranslation {
                rows: vec![entry.original.index()],
            }
        } else {
            InjectOutcome::Applied // pinned row: lookups never consult the cache
        }
    }

    /// End-of-epoch table audit (runs only once a fault has been injected).
    ///
    /// Pass 1 treats the RPT as authoritative for occupied slots: a slot
    /// whose row's forward pointer disagrees is repaired by rewriting the
    /// FPT from the back-pointer; a slot whose back-pointer is not a real
    /// row is unrecoverable and degrades its bank. Pass 2 walks the forward
    /// pointers (sorted, so hash-map iteration order cannot leak into the
    /// outcome): orphans with a free slot get their RPT entry restored
    /// (the data is still in the slot); orphans whose slot belongs to
    /// another row are dropped. Pass 3 rebuilds the mapped-mode SRAM
    /// filter/cache state from the in-DRAM FPT.
    fn audit_tables(&mut self) {
        for slot in 0..self.rpt.slots() {
            let Some(entry) = self.rpt.get(slot) else {
                continue;
            };
            if self.config.geometry.expand(entry.original).is_err() {
                self.rpt.clear(slot);
                self.backend.unmap(entry.original);
                let bank = self.config.rqa_slot_location(slot).bank;
                self.degrade_bank(bank.index());
                continue;
            }
            if self.backend.peek(entry.original) != Some(RqaSlot::new(slot)) {
                match self.backend.map(entry.original, RqaSlot::new(slot)) {
                    Ok(_) => self.note_repair(),
                    Err(_) => {
                        self.rpt.clear(slot);
                        let bank = self.config.rqa_slot_location(slot).bank;
                        self.degrade_bank(bank.index());
                    }
                }
            }
        }
        let mut maps = self.backend.mappings();
        maps.sort_unstable_by_key(|(r, s)| (r.index(), s.index()));
        for (row, slot) in maps {
            if slot.index() >= self.rpt.slots() {
                self.backend.unmap(row);
                self.note_repair();
                continue;
            }
            match self.rpt.get(slot.index()) {
                Some(e) if e.original == row => {}
                Some(_) => {
                    self.backend.unmap(row);
                    self.note_repair();
                }
                None => {
                    self.rpt.set(
                        slot.index(),
                        RptEntry {
                            original: row,
                            install_epoch: self.rqa.epoch(),
                        },
                    );
                    self.note_repair();
                }
            }
        }
        if let Backend::Mapped(m) = &mut self.backend {
            m.fault_audit_rebuild();
        }
        self.health.degraded_banks = self.degraded.len() as u64;
    }
}

/// All physical rows of the in-DRAM table region (mapped mode).
fn table_region_rows(config: &AquaConfig) -> Vec<RowAddr> {
    let per_bank = config.table_rows_per_bank();
    let top = config.geometry.rows_per_bank - config.rqa_rows_per_bank();
    let mut rows = Vec::new();
    for bank in config.geometry.banks() {
        for r in (top - per_bank)..top {
            rows.push(RowAddr { bank, row: r });
        }
    }
    rows
}

impl Mitigation for AquaEngine {
    fn name(&self) -> &'static str {
        match self.config.table_mode {
            TableMode::Sram => "aqua-sram",
            TableMode::Mapped { .. } => "aqua-mapped",
        }
    }

    fn translate(&mut self, row: GlobalRowId, now: Time) -> Translation {
        self.last_ps = now.as_ps();
        let (slot, dram_reads, outcome) = self.backend.lookup_slot(row);
        match outcome {
            Some(LookupOutcome::SingletonSkip) => {
                self.counters.fpt_cache_misses.inc();
                self.telemetry.record(
                    now.as_ps(),
                    EventKind::FptCacheMiss {
                        row: row.index(),
                        singleton: true,
                    },
                );
            }
            Some(LookupOutcome::DramAccess) => {
                self.counters.fpt_cache_misses.inc();
                self.telemetry.record(
                    now.as_ps(),
                    EventKind::FptCacheMiss {
                        row: row.index(),
                        singleton: false,
                    },
                );
            }
            _ => {}
        }
        let identity = |cfg: &AquaConfig, violations: &mut u64| match cfg.geometry.expand(row) {
            Ok(addr) => addr,
            Err(_) => {
                // AquaError::RowOutOfGeometry: a row id that is not a real
                // row cannot be accessed; fall back to row 0 of bank 0 and
                // count the inconsistency rather than aborting.
                *violations += 1;
                RowAddr {
                    bank: BankId::new(0),
                    row: 0,
                }
            }
        };
        let phys = match slot {
            Some(s) if s.index() < self.config.rqa_rows => self.config.rqa_slot_location(s.index()),
            Some(_) => {
                // AquaError::SlotOutOfRange: a corrupted forward pointer
                // names a slot outside the quarantine area. Serve the
                // identity mapping until the epoch audit repairs the entry.
                self.stats.violations += 1;
                identity(&self.config, &mut self.stats.violations)
            }
            None => identity(&self.config, &mut self.stats.violations),
        };
        let table_row = if dram_reads > 0 {
            // The in-DRAM FPT line actually read; it may itself have been
            // quarantined, in which case the pinned entry redirects it.
            let addr = self.config.fpt_table_row_of(row);
            match self.config.geometry.flatten(addr) {
                Ok(gid) => {
                    let (tslot, _, _) = self.backend.lookup_slot(gid);
                    Some(match tslot {
                        Some(s) if s.index() < self.config.rqa_rows => {
                            self.config.rqa_slot_location(s.index())
                        }
                        _ => addr,
                    })
                }
                Err(_) => {
                    self.stats.violations += 1;
                    None
                }
            }
        } else {
            None
        };
        Translation {
            phys,
            lookup_latency: SRAM_LOOKUP,
            dram_table_reads: dram_reads,
            table_row,
        }
    }

    fn on_activation_into(
        &mut self,
        phys: RowAddr,
        now: Time,
        actions: &mut Vec<MitigationAction>,
    ) {
        self.last_ps = now.as_ps();
        if !self.tracker.on_activation(phys).mitigate() {
            return;
        }
        self.stats.mitigations += 1;
        self.counters.mitigations.inc();
        if self.degraded.contains(&phys.bank.index()) {
            // Fallback protection for a bank whose tables went
            // unrecoverable: refresh the blast-radius neighbours instead of
            // migrating (weaker against Half-Double, but data-safe).
            self.telemetry
                .span_start("aqua.degraded_refresh", now.as_ps())
                .end(now.as_ps());
            let rows = self.victim_rows(phys);
            self.victim_refreshes += rows.len() as u64;
            actions.push(MitigationAction::RefreshRows(rows));
            return;
        }
        let sp = self.telemetry.span_start("aqua.quarantine", now.as_ps());
        if let Some(slot) = self.config.rqa_slot_of(phys) {
            // A quarantined row is hot at its RQA location: move it within
            // the quarantine area (section IV-D internal migration).
            if let Some(entry) = self.rpt.get(slot) {
                self.quarantine(entry.original, Some(RqaSlot::new(slot)), now, actions);
            }
            // An RQA location with no valid occupant cannot be addressed by
            // software; stale tracker state is ignored.
        } else {
            // Normal row (or a table-storing row): quarantine it. The row id
            // is its physical location, which equals its OS-visible id here
            // because non-quarantined rows are identity-mapped.
            match self.config.geometry.flatten(phys) {
                Ok(row) => self.quarantine(row, None, now, actions),
                Err(_) => {
                    // Not a real row (only reachable through injected
                    // corruption); nothing to quarantine.
                    self.stats.violations += 1;
                }
            }
        }
        sp.end(now.as_ps());
    }

    fn end_epoch(&mut self) {
        // Host-time phase for the engine's end-of-epoch work (table audit,
        // tracker reset, RQA epoch advance); nests under the simulator's
        // `sim.epoch_end` phase on the shared hub.
        let _phase = self.telemetry.phase("aqua.end_epoch");
        if self.faults_active {
            let sp = self.telemetry.span_start("aqua.audit", self.last_ps);
            self.audit_tables();
            sp.end(self.last_ps);
            if !self.degraded.is_empty() {
                self.telemetry
                    .span_start("aqua.degraded_epoch", self.last_ps)
                    .end(self.last_ps);
            }
            self.health.degraded_epochs += self.degraded.len() as u64;
        }
        self.tracker.end_epoch();
        self.rqa.advance_epoch();
        if let Backend::Mapped(m) = &self.backend {
            self.epoch_breakdown = m.breakdown();
        }
    }

    fn on_refresh_tick_into(&mut self, now: Time, actions: &mut Vec<MitigationAction>) {
        self.background_drain(now, actions);
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.counters = AquaCounters {
            installs: telemetry.counter("aqua.installs"),
            internal_moves: telemetry.counter("aqua.internal_moves"),
            evictions: telemetry.counter("aqua.evictions"),
            background_drains: telemetry.counter("aqua.background_drains"),
            mitigations: telemetry.counter("aqua.mitigations"),
            fpt_cache_misses: telemetry.counter("aqua.fpt_cache_misses"),
            faults_injected: telemetry.counter("aqua.faults_injected"),
            faults_recovered: telemetry.counter("aqua.faults_recovered"),
        };
        self.telemetry = telemetry;
    }

    fn epoch_gauges(&self) -> Vec<(&'static str, f64)> {
        let mut gauges = vec![(
            "rqa_occupancy",
            self.rpt.valid_count() as f64 / self.config.rqa_rows.max(1) as f64,
        )];
        if let Backend::Mapped(m) = &self.backend {
            // Hit rate over the closing epoch, among lookups that consulted
            // the FPT-Cache (i.e. were not filtered out by the bloom filter).
            let d = m.breakdown().diff(&self.epoch_breakdown);
            let consulted = d.cache_hit + d.singleton_skip + d.dram_access;
            if consulted > 0 {
                gauges.push(("fpt_cache_hit_rate", d.cache_hit as f64 / consulted as f64));
            }
        }
        gauges
    }

    fn reserved_rows(&self) -> Vec<RowAddr> {
        (0..self.config.rqa_rows)
            .map(|slot| self.config.rqa_slot_location(slot))
            .collect()
    }

    fn mitigation_stats(&self) -> MitigationStats {
        MitigationStats {
            row_migrations: self.stats.row_migrations(),
            mitigations_triggered: self.stats.mitigations,
            victim_refreshes: self.victim_refreshes,
            throttled: 0,
            violations: self.stats.violations,
        }
    }

    fn inject_fault(&mut self, fault: &FaultKind, _now: Time) -> InjectOutcome {
        let outcome = match *fault {
            FaultKind::FptFlip { entropy } => self.fault_fpt_flip(entropy),
            FaultKind::RptFlip { entropy } => self.fault_rpt_flip(entropy),
            FaultKind::RptDrop { entropy } => self.fault_rpt_drop(entropy),
            FaultKind::FilterFalseClear { entropy } => self.fault_filter_clear(entropy),
            FaultKind::CachePoison { entropy } => self.fault_cache_poison(entropy),
            FaultKind::TrackerReset => {
                if self.tracker.inject_reset() {
                    InjectOutcome::Applied
                } else {
                    InjectOutcome::Unsupported
                }
            }
            FaultKind::TrackerSaturate => {
                if self.tracker.inject_saturate() {
                    InjectOutcome::Applied
                } else {
                    InjectOutcome::Unsupported
                }
            }
            FaultKind::MigrationInterrupt => {
                self.pending_interrupt = true;
                InjectOutcome::Applied
            }
            FaultKind::RqaWrapBurst { slots } => {
                // Burn allocations: ages the circular allocator without
                // moving data, so wrap pressure (and within-epoch reuse
                // violations) rise while translation stays intact.
                for _ in 0..slots {
                    if self.rqa.allocate().reused_within_epoch {
                        self.stats.violations += 1;
                    }
                }
                InjectOutcome::Applied
            }
            // Command faults live in the simulator's notification path, not
            // in the engine's tables.
            FaultKind::DramCommandFault => InjectOutcome::Unsupported,
        };
        if !matches!(outcome, InjectOutcome::Unsupported) {
            self.faults_active = true;
            self.health.injected += 1;
            self.counters.faults_injected.inc();
        }
        outcome
    }

    fn fault_health(&self) -> FaultHealth {
        self.health
    }

    fn degraded_mode(&self) -> DegradedMode {
        if self.degraded.is_empty() {
            DegradedMode::Normal
        } else {
            DegradedMode::VictimRefresh {
                banks: self.degraded.iter().copied().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BaselineConfig;

    fn small_config() -> AquaConfig {
        // A reduced configuration that still exercises every path quickly.
        let base = BaselineConfig::tiny();
        let mut c = AquaConfig::for_rowhammer_threshold(20, &base);
        c.tracker_entries_per_bank = 64;
        c.rqa_rows = 8;
        c.fpt_entries = 64;
        c
    }

    fn hammer(engine: &mut AquaEngine, row: GlobalRowId, times: u64) -> Vec<MitigationAction> {
        let mut all = Vec::new();
        for _ in 0..times {
            let t = engine.translate(row, Time::ZERO);
            all.extend(engine.on_activation(t.phys, Time::ZERO));
        }
        all
    }

    #[test]
    fn hot_row_is_quarantined_at_threshold() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        let actions = hammer(&mut e, row, 10);
        assert_eq!(e.stats().installs, 1);
        assert!(actions.iter().any(|a| matches!(
            a,
            MitigationAction::BlockChannel {
                kind: MigrationKind::QuarantineInstall,
                ..
            }
        )));
        // Row now resolves to the quarantine region.
        let t = e.translate(row, Time::ZERO);
        assert!(e.config().rqa_region_contains(t.phys));
        e.check_consistency().unwrap();
    }

    #[test]
    fn continued_hammering_moves_within_rqa() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10); // install
        let first = e.translate(row, Time::ZERO).phys;
        hammer(&mut e, row, 10); // internal move
        let second = e.translate(row, Time::ZERO).phys;
        assert_ne!(first, second, "internal migration must change the slot");
        assert!(e.config().rqa_region_contains(second));
        assert_eq!(e.stats().internal_moves, 1);
        e.check_consistency().unwrap();
    }

    #[test]
    fn lazy_drain_evicts_previous_epoch_rows() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        // Fill all 8 RQA slots in epoch 0.
        for r in 0..8u64 {
            hammer(&mut e, GlobalRowId::new(r * 3), 10);
        }
        assert_eq!(e.stats().installs, 8);
        assert_eq!(e.stats().violations, 0);
        e.end_epoch();
        // New install in epoch 1 reuses slot 0 and must first evict.
        hammer(&mut e, GlobalRowId::new(100), 10);
        assert_eq!(e.stats().evictions, 1);
        assert_eq!(e.stats().violations, 0);
        // The evicted row is identity-mapped again.
        let t = e.translate(GlobalRowId::new(0), Time::ZERO);
        assert!(!e.config().rqa_region_contains(t.phys));
        e.check_consistency().unwrap();
    }

    #[test]
    fn undersized_rqa_reports_violation() {
        let mut c = small_config();
        c.rqa_rows = 2;
        let mut e = AquaEngine::new(c).unwrap();
        for r in 0..3u64 {
            hammer(&mut e, GlobalRowId::new(r * 7), 10);
        }
        assert!(
            e.stats().violations > 0,
            "slot reuse within an epoch must be flagged"
        );
    }

    #[test]
    fn epoch_reset_requires_full_threshold_again() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(9);
        hammer(&mut e, row, 9); // threshold is 10; one short
        e.end_epoch();
        hammer(&mut e, row, 9);
        assert_eq!(e.stats().installs, 0, "tracker reset must forget counts");
    }

    #[test]
    fn mapped_mode_quarantines_and_redirects() {
        let mut c = small_config();
        c.table_mode = TableMode::Mapped {
            bloom_bits: 256,
            cache_entries: 32,
        };
        let mut e = AquaEngine::new(c).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        let t = e.translate(row, Time::ZERO);
        assert!(e.config().rqa_region_contains(t.phys));
        let b = e.lookup_breakdown().unwrap();
        assert!(b.total() > 0);
        e.check_consistency().unwrap();
    }

    #[test]
    fn mapped_mode_pins_table_rows() {
        let mut c = small_config();
        c.table_mode = TableMode::Mapped {
            bloom_bits: 256,
            cache_entries: 32,
        };
        let e = AquaEngine::new(c).unwrap();
        match &e.backend {
            Backend::Mapped(m) => assert!(m.pinned_count() > 0),
            Backend::Sram(_) => panic!("expected mapped backend"),
        }
    }

    #[test]
    fn pthammer_on_table_rows_is_quarantined_via_pinned_entries() {
        // Section VI-B: an attacker can hammer the DRAM rows storing the
        // FPT/RPT (PTHammer-style, via lookups it induces). Those rows are
        // quarantined like any other, with their mapping pinned in SRAM so
        // lookups never recurse.
        let mut c = small_config();
        c.table_mode = TableMode::Mapped {
            bloom_bits: 256,
            cache_entries: 32,
        };
        let mut e = AquaEngine::new(c).unwrap();
        // Physical location of the FPT line for row 0.
        let table_addr = e.config().fpt_table_row_of(GlobalRowId::new(0));
        let table_gid = e.config().geometry.flatten(table_addr).unwrap();
        assert!(e.config().is_table_row(table_addr));
        // Hammer the table row (as the simulator would on repeated induced
        // FPT reads): it must be quarantined at the threshold.
        let mut quarantined = false;
        for _ in 0..10 {
            let phys = match &e.backend {
                Backend::Mapped(m) => {
                    // Resolve through the pinned entry, as translate() does.
                    let mut m = m.clone();
                    match m.lookup(table_gid).slot {
                        Some(s) => e.config().rqa_slot_location(s.index()),
                        None => table_addr,
                    }
                }
                Backend::Sram(_) => unreachable!(),
            };
            if !e.on_activation(phys, Time::ZERO).is_empty() {
                quarantined = true;
            }
        }
        assert!(quarantined, "table row must be quarantined at threshold");
        // The engine now reports FPT reads for row 0 redirected to the RQA.
        let t = e.translate(GlobalRowId::new(0), Time::ZERO);
        if let Some(redirected) = t.table_row {
            assert!(
                e.config().rqa_region_contains(redirected) || e.config().is_table_row(redirected)
            );
        }
        e.check_consistency().unwrap();
    }

    #[test]
    fn background_drain_empties_stale_slots() {
        let mut c = small_config();
        c.drain_per_refresh = 4;
        let mut e = AquaEngine::new(c).unwrap();
        for r in 0..4u64 {
            hammer(&mut e, GlobalRowId::new(r * 3), 10);
        }
        e.end_epoch();
        let actions = e.on_refresh_tick(Time::ZERO);
        assert!(!actions.is_empty());
        assert_eq!(e.stats().background_drains, 4);
        // Subsequent installs need no on-demand eviction.
        hammer(&mut e, GlobalRowId::new(200), 10);
        assert_eq!(e.stats().evictions, 0);
        e.check_consistency().unwrap();
    }

    #[test]
    fn hydra_tracker_quarantines_like_misra_gries() {
        // Appendix B: AQUA is tracker-agnostic. The Hydra-backed engine must
        // quarantine a hammered row no later than the MG-backed one (Hydra's
        // conservative group-count inheritance can only fire earlier).
        let mut cfg = small_config().with_hydra_tracker();
        cfg.rqa_rows = 16;
        let mut e = AquaEngine::new(cfg).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        assert!(e.stats().installs >= 1);
        let t = e.translate(row, Time::ZERO);
        assert!(e.config().rqa_region_contains(t.phys));
        e.check_consistency().unwrap();
        // At paper scale, Hydra's SRAM footprint is far below MG's
        // (Table VII: ~30 KB vs ~396 KB).
        let paper = BaselineConfig::paper_table1();
        let mg = AquaEngine::new(AquaConfig::for_rowhammer_threshold(1000, &paper)).unwrap();
        let hydra =
            AquaEngine::new(AquaConfig::for_rowhammer_threshold(1000, &paper).with_hydra_tracker())
                .unwrap();
        assert!(hydra.tracker_sram_bits() * 4 < mg.tracker_sram_bits());
    }

    #[test]
    fn exact_tracker_fires_precisely_at_threshold() {
        let mut cfg = small_config();
        cfg.tracker = crate::TrackerKind::Exact;
        let mut e = AquaEngine::new(cfg).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 9);
        assert_eq!(e.stats().installs, 0);
        hammer(&mut e, row, 1);
        assert_eq!(e.stats().installs, 1);
    }

    #[test]
    fn fpt_flip_is_repaired_by_the_epoch_audit() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        let good = e.translate(row, Time::ZERO).phys;
        let out = e.inject_fault(&FaultKind::FptFlip { entropy: 3 }, Time::ZERO);
        assert_eq!(
            out,
            InjectOutcome::CorruptedTranslation {
                rows: vec![row.index()]
            }
        );
        assert!(e.check_consistency().is_err(), "corruption must be visible");
        assert_ne!(e.translate(row, Time::ZERO).phys, good);
        e.end_epoch();
        e.check_consistency().unwrap();
        assert_eq!(e.translate(row, Time::ZERO).phys, good);
        let h = e.fault_health();
        assert_eq!(h.injected, 1);
        assert!(h.repairs >= 1);
        assert_eq!(h.unrecoverable, 0);
    }

    #[test]
    fn rpt_drop_is_restored_by_the_epoch_audit() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        let out = e.inject_fault(&FaultKind::RptDrop { entropy: 0 }, Time::ZERO);
        assert!(matches!(out, InjectOutcome::CorruptedTranslation { .. }));
        assert_eq!(e.quarantined_rows(), 0);
        e.end_epoch();
        e.check_consistency().unwrap();
        assert_eq!(e.quarantined_rows(), 1, "audit must restore the RPT entry");
        let phys = e.translate(row, Time::ZERO).phys;
        assert!(e.config().rqa_region_contains(phys));
    }

    #[test]
    fn out_of_geometry_rpt_flip_degrades_the_bank() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        let slot = match e.backend.peek(row) {
            Some(s) => s,
            None => panic!("row must be quarantined"),
        };
        // Force a back-pointer that is not a real row.
        let total = e.config().geometry.total_rows();
        e.rpt.set(
            slot.index(),
            RptEntry {
                original: GlobalRowId::new(total + 7),
                install_epoch: 0,
            },
        );
        e.faults_active = true;
        e.end_epoch();
        e.check_consistency().unwrap();
        let h = e.fault_health();
        assert_eq!(h.unrecoverable, 1);
        assert!(h.degraded_banks >= 1);
        match e.degraded_mode() {
            DegradedMode::VictimRefresh { banks } => assert!(!banks.is_empty()),
            DegradedMode::Normal => panic!("bank must be degraded"),
        }
        // Mitigations on the degraded bank fall back to victim refresh.
        let bank = e.degraded.iter().next().copied().unwrap();
        let phys = RowAddr {
            bank: BankId::new(bank),
            row: 10,
        };
        let mut refreshed = false;
        for _ in 0..10 {
            for a in e.on_activation(phys, Time::ZERO) {
                if matches!(a, MitigationAction::RefreshRows(_)) {
                    refreshed = true;
                }
            }
        }
        assert!(refreshed, "degraded bank must use the refresh fallback");
        assert!(e.mitigation_stats().victim_refreshes > 0);
    }

    #[test]
    fn migration_interrupt_aborts_exactly_one_quarantine() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let out = e.inject_fault(&FaultKind::MigrationInterrupt, Time::ZERO);
        assert_eq!(out, InjectOutcome::Applied);
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        assert_eq!(e.stats().installs, 0, "interrupted migration must abort");
        assert_eq!(e.fault_health().recovered, 1);
        e.check_consistency().unwrap();
        // The next threshold crossing quarantines normally.
        hammer(&mut e, row, 10);
        assert_eq!(e.stats().installs, 1);
    }

    #[test]
    fn tracker_faults_apply_through_the_engine() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 9);
        assert_eq!(
            e.inject_fault(&FaultKind::TrackerReset, Time::ZERO),
            InjectOutcome::Applied
        );
        hammer(&mut e, row, 9);
        assert_eq!(e.stats().installs, 0, "reset tracker must forget counts");
        assert_eq!(
            e.inject_fault(&FaultKind::TrackerSaturate, Time::ZERO),
            InjectOutcome::Applied
        );
        hammer(&mut e, row, 1);
        assert_eq!(e.stats().installs, 1, "saturated counter fires on touch");
    }

    #[test]
    fn cache_poison_is_mapped_mode_only_and_audit_recovers() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        assert_eq!(
            e.inject_fault(&FaultKind::CachePoison { entropy: 1 }, Time::ZERO),
            InjectOutcome::Unsupported
        );
        let mut c = small_config();
        c.table_mode = TableMode::Mapped {
            bloom_bits: 256,
            cache_entries: 32,
        };
        let mut e = AquaEngine::new(c).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        let good = e.translate(row, Time::ZERO).phys;
        let out = e.inject_fault(&FaultKind::CachePoison { entropy: 1 }, Time::ZERO);
        assert!(matches!(out, InjectOutcome::CorruptedTranslation { .. }));
        assert_ne!(e.translate(row, Time::ZERO).phys, good);
        e.end_epoch();
        assert_eq!(e.translate(row, Time::ZERO).phys, good);
    }

    #[test]
    fn filter_clear_makes_false_negatives_until_audit() {
        let mut c = small_config();
        c.table_mode = TableMode::Mapped {
            bloom_bits: 256,
            cache_entries: 32,
        };
        let mut e = AquaEngine::new(c).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        let good = e.translate(row, Time::ZERO).phys;
        // Scan from the row's own bit so the cleared bit is its group's.
        let out = e.inject_fault(
            &FaultKind::FilterFalseClear {
                entropy: row.index() / 16,
            },
            Time::ZERO,
        );
        assert!(matches!(out, InjectOutcome::CorruptedTranslation { .. }));
        assert_ne!(
            e.translate(row, Time::ZERO).phys,
            good,
            "false negative must bypass the quarantine mapping"
        );
        e.end_epoch();
        assert_eq!(e.translate(row, Time::ZERO).phys, good);
        e.check_consistency().unwrap();
    }

    #[test]
    fn rqa_wrap_burst_raises_pressure_without_breaking_tables() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        let good = e.translate(row, Time::ZERO).phys;
        let out = e.inject_fault(&FaultKind::RqaWrapBurst { slots: 20 }, Time::ZERO);
        assert_eq!(out, InjectOutcome::Applied);
        assert!(
            e.stats().violations > 0,
            "burst past 8 slots wraps in-epoch"
        );
        assert_eq!(e.translate(row, Time::ZERO).phys, good);
        e.check_consistency().unwrap();
    }

    #[test]
    fn migration_latency_is_paper_value() {
        let base = BaselineConfig::paper_table1();
        let c = AquaConfig::for_rowhammer_threshold(1000, &base);
        let mut e = AquaEngine::new(c).unwrap();
        let actions = hammer(&mut e, GlobalRowId::new(42), 500);
        let dur = actions.iter().find_map(|a| match a {
            MitigationAction::BlockChannel { duration, .. } => Some(*duration),
            _ => None,
        });
        assert_eq!(dur.unwrap().as_ns(), 1_370);
    }
}
