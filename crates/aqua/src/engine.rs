//! The AQUA quarantine engine.

use crate::{
    AquaConfig, AquaError, ForwardPointerTable, LookupBreakdown, LookupOutcome, MappedTables,
    QuarantineArea, ReversePointerTable, RptEntry, RqaSlot, TableMode, TrackerKind,
};
use aqua_dram::mitigation::{
    DataMovement, MigrationKind, Mitigation, MitigationAction, MitigationStats, Translation,
};
use aqua_dram::{Duration, GlobalRowId, RowAddr, Time};
use aqua_telemetry::{Counter, EventKind, Telemetry};
use aqua_tracker::{
    AggressorTracker, ExactTracker, HydraConfig, HydraTracker, MisraGriesTracker, TrackerConfig,
};
use serde::{Deserialize, Serialize};

/// SRAM table-lookup latency on the access critical path (3–4 cycles at
/// 3 GHz, section IV-G).
const SRAM_LOOKUP: Duration = Duration::from_ps(1_300);

aqua_telemetry::stat_struct! {
    /// Cumulative AQUA event counts.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct AquaStats {
        /// Rows installed into the RQA from their original location.
        pub installs: u64,
        /// Quarantined rows moved to a new RQA slot (still hot while quarantined).
        pub internal_moves: u64,
        /// Stale rows moved back to their original location (lazy drain).
        pub evictions: u64,
        /// Stale rows drained in the background (`drain_per_refresh > 0`).
        pub background_drains: u64,
        /// RQA slots reused within one epoch (security violations; zero when the
        /// RQA is sized per Eq. 3).
        pub violations: u64,
        /// Mitigations signalled by the tracker.
        pub mitigations: u64,
    }
}

/// Registered telemetry counter handles (plain cells when the `telemetry`
/// feature is off).
#[derive(Debug, Clone, Default)]
struct AquaCounters {
    installs: Counter,
    internal_moves: Counter,
    evictions: Counter,
    background_drains: Counter,
    mitigations: Counter,
    fpt_cache_misses: Counter,
}

impl AquaStats {
    /// Total row migrations (the unit of Figure 6): every install, internal
    /// move, eviction, and background drain moves exactly one row.
    pub fn row_migrations(&self) -> u64 {
        self.installs + self.internal_moves + self.evictions + self.background_drains
    }
}

/// Table backend: section IV (SRAM) or section V (memory-mapped).
#[derive(Debug, Clone)]
enum Backend {
    Sram(ForwardPointerTable),
    Mapped(MappedTables),
}

impl Backend {
    fn lookup_slot(&mut self, row: GlobalRowId) -> (Option<RqaSlot>, u32, Option<LookupOutcome>) {
        match self {
            Backend::Sram(fpt) => (fpt.lookup(row), 0, None),
            Backend::Mapped(m) => {
                let l = m.lookup(row);
                (l.slot, l.dram_reads, Some(l.outcome))
            }
        }
    }

    /// Returns the number of in-DRAM table writes the update required.
    fn map(&mut self, row: GlobalRowId, slot: RqaSlot) -> Result<u32, AquaError> {
        match self {
            Backend::Sram(fpt) => {
                fpt.map(row, slot)?;
                Ok(0)
            }
            Backend::Mapped(m) => Ok(m.map(row, slot)),
        }
    }

    fn unmap(&mut self, row: GlobalRowId) -> u32 {
        match self {
            Backend::Sram(fpt) => {
                fpt.unmap(row);
                0
            }
            Backend::Mapped(m) => m.unmap(row).1,
        }
    }

    fn mappings(&self) -> Vec<(GlobalRowId, RqaSlot)> {
        match self {
            Backend::Sram(fpt) => fpt.iter().collect(),
            Backend::Mapped(m) => m.mappings(),
        }
    }
}

/// The AQUA mitigation engine for one rank.
///
/// Owns the aggressor-row tracker, the quarantine-area allocator, and the
/// mapping tables (SRAM or memory-mapped), and implements the
/// [`Mitigation`] protocol the system simulator drives.
#[derive(Debug)]
pub struct AquaEngine {
    config: AquaConfig,
    tracker: Box<dyn AggressorTracker + Send>,
    rqa: QuarantineArea,
    rpt: ReversePointerTable,
    backend: Backend,
    migration_latency: Duration,
    /// Sweep position of the background drain (`drain_per_refresh > 0`).
    drain_cursor: u64,
    stats: AquaStats,
    telemetry: Telemetry,
    counters: AquaCounters,
    /// Lookup breakdown at the previous epoch boundary (drives the
    /// per-epoch FPT-cache hit-rate gauge).
    epoch_breakdown: LookupBreakdown,
}

impl AquaEngine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AquaError`] if the configuration is invalid.
    pub fn new(config: AquaConfig) -> Result<Self, AquaError> {
        config.validate()?;
        let tracker: Box<dyn AggressorTracker + Send> = match config.tracker {
            TrackerKind::MisraGries => {
                let cfg = TrackerConfig::with_mitigation_threshold(config.mitigation_threshold)
                    .entries_per_bank(config.tracker_entries_per_bank);
                Box::new(MisraGriesTracker::new(cfg, config.geometry.total_banks()))
            }
            TrackerKind::Hydra => {
                let mut cfg = HydraConfig::for_rowhammer_threshold(config.t_rh);
                cfg.mitigation_threshold = config.mitigation_threshold;
                cfg.group_threshold = (config.mitigation_threshold / 2).max(1);
                Box::new(HydraTracker::new(cfg, config.geometry.rows_per_bank))
            }
            TrackerKind::Cra => {
                let mut cfg = aqua_tracker::CraConfig::for_rowhammer_threshold(config.t_rh);
                cfg.mitigation_threshold = config.mitigation_threshold;
                Box::new(aqua_tracker::CraTracker::new(cfg))
            }
            TrackerKind::Exact => Box::new(ExactTracker::new(config.mitigation_threshold)),
        };
        let backend = match config.table_mode {
            TableMode::Sram => Backend::Sram(ForwardPointerTable::new(config.fpt_entries)),
            TableMode::Mapped {
                bloom_bits,
                cache_entries,
            } => {
                let mut m = MappedTables::new(bloom_bits, cache_entries, 16);
                // Pin the FPT entries of the table-storing rows in SRAM so a
                // table lookup never recurses (section VI-B).
                for addr in table_region_rows(&config) {
                    let gid = config
                        .geometry
                        .flatten(addr)
                        .expect("table region lies within the module");
                    m.pin(gid);
                }
                Backend::Mapped(m)
            }
        };
        let migration_latency = config.timing.row_migration_latency(&config.geometry);
        Ok(AquaEngine {
            tracker,
            rqa: QuarantineArea::new(config.rqa_rows),
            rpt: ReversePointerTable::new(config.rqa_rows),
            backend,
            migration_latency,
            drain_cursor: 0,
            config,
            stats: AquaStats::default(),
            telemetry: Telemetry::disabled(),
            counters: AquaCounters::default(),
            epoch_breakdown: LookupBreakdown::default(),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AquaConfig {
        &self.config
    }

    /// AQUA-specific statistics.
    pub fn stats(&self) -> AquaStats {
        self.stats
    }

    /// The tracker's statistics.
    pub fn tracker_stats(&self) -> aqua_tracker::TrackerStats {
        self.tracker.stats()
    }

    /// SRAM footprint of the configured tracker, in bits (Table VII input).
    pub fn tracker_sram_bits(&self) -> u64 {
        self.tracker.sram_bits()
    }

    /// Figure 10 lookup breakdown (memory-mapped mode only).
    pub fn lookup_breakdown(&self) -> Option<crate::LookupBreakdown> {
        match &self.backend {
            Backend::Sram(_) => None,
            Backend::Mapped(m) => Some(m.breakdown()),
        }
    }

    /// Number of rows currently quarantined.
    pub fn quarantined_rows(&self) -> usize {
        self.rpt.valid_count()
    }

    /// Verifies that the FPT and RPT are mutually consistent inverse maps.
    ///
    /// # Panics
    ///
    /// Panics (with a description) on any inconsistency; used by property
    /// tests and debug assertions.
    pub fn check_consistency(&self) {
        let mappings = self.backend.mappings();
        for (row, slot) in &mappings {
            let entry = self.rpt.get(slot.index()).unwrap_or_else(|| {
                panic!("FPT maps {row} -> slot {} but RPT is empty", slot.index())
            });
            assert_eq!(
                entry.original,
                *row,
                "FPT/RPT disagree at slot {}",
                slot.index()
            );
        }
        assert_eq!(
            mappings.len(),
            self.rpt.valid_count(),
            "FPT and RPT track different numbers of quarantined rows"
        );
    }

    /// Evicts the occupant of `slot` back to its original location, if any.
    /// Returns whether a row was actually moved out (the caller accounts it
    /// as an on-demand eviction or a background drain).
    fn evict_slot(
        &mut self,
        slot: RqaSlot,
        now: Time,
        actions: &mut Vec<MitigationAction>,
    ) -> bool {
        if let Some(entry) = self.rpt.clear(slot.index()) {
            let writes = self.backend.unmap(entry.original);
            actions.push(MitigationAction::BlockChannel {
                duration: self.migration_latency,
                kind: MigrationKind::QuarantineEvict,
                movement: DataMovement::Move {
                    from: self.config.rqa_slot_location(slot.index()),
                    to: self
                        .config
                        .geometry
                        .expand(entry.original)
                        .expect("quarantined rows originate within geometry"),
                },
            });
            if writes > 0 {
                actions.push(MitigationAction::TableWrites { count: writes });
            }
            self.telemetry.record(
                now.as_ps(),
                EventKind::QuarantineOut {
                    row: entry.original.index(),
                    slot: slot.index(),
                },
            );
            true
        } else {
            false
        }
    }

    /// Quarantines `row` (currently residing at `from_slot` if already
    /// quarantined) into a fresh RQA slot.
    fn quarantine(
        &mut self,
        row: GlobalRowId,
        from_slot: Option<RqaSlot>,
        now: Time,
        actions: &mut Vec<MitigationAction>,
    ) {
        let alloc = self.rqa.allocate();
        if alloc.reused_within_epoch {
            self.stats.violations += 1;
        }
        // Lazy drain: the destination may hold a row quarantined in a past
        // epoch; move it home first (2.74 us total path, section IV-D).
        if self.evict_slot(alloc.slot, now, actions) {
            self.stats.evictions += 1;
            self.counters.evictions.inc();
        }
        let from = match from_slot {
            Some(old) => self.config.rqa_slot_location(old.index()),
            None => self
                .config
                .geometry
                .expand(row)
                .expect("rows to quarantine lie within geometry"),
        };
        actions.push(MitigationAction::BlockChannel {
            duration: self.migration_latency,
            kind: if from_slot.is_some() {
                MigrationKind::QuarantineInternal
            } else {
                MigrationKind::QuarantineInstall
            },
            movement: DataMovement::Move {
                from,
                to: self.config.rqa_slot_location(alloc.slot.index()),
            },
        });
        let writes = match self.backend.map(row, alloc.slot) {
            Ok(w) => w,
            Err(_) => {
                // FPT exhaustion: refuse the quarantine rather than corrupt
                // state. Counted as a violation — with paper-sized tables
                // this is unreachable.
                self.stats.violations += 1;
                return;
            }
        };
        if writes > 0 {
            actions.push(MitigationAction::TableWrites { count: writes });
        }
        if let Some(old) = from_slot {
            self.rpt.clear(old.index());
            self.stats.internal_moves += 1;
            self.counters.internal_moves.inc();
            self.telemetry.record(
                now.as_ps(),
                EventKind::QuarantineOut {
                    row: row.index(),
                    slot: old.index(),
                },
            );
        } else {
            self.stats.installs += 1;
            self.counters.installs.inc();
        }
        self.telemetry.record(
            now.as_ps(),
            EventKind::QuarantineIn {
                row: row.index(),
                slot: alloc.slot.index(),
            },
        );
        self.rpt.set(
            alloc.slot.index(),
            RptEntry {
                original: row,
                install_epoch: self.rqa.epoch(),
            },
        );
    }

    /// Background drain: evicts up to `drain_per_refresh` stale entries per
    /// sweep step (the paper's "periodically draining old entries"
    /// optimization that takes evictions off the critical path). Invoked via
    /// [`Mitigation::on_refresh_tick`] at every refresh command.
    fn background_drain(&mut self, now: Time) -> Vec<MitigationAction> {
        let n = self.config.drain_per_refresh;
        if n == 0 {
            return Vec::new();
        }
        let mut actions = Vec::new();
        let slots = self.rqa.slots();
        for _ in 0..n {
            let slot = RqaSlot::new(self.drain_cursor);
            self.drain_cursor = (self.drain_cursor + 1) % slots;
            if self.rqa.allocated_this_epoch(slot) {
                continue;
            }
            if self.evict_slot(slot, now, &mut actions) {
                self.stats.background_drains += 1;
                self.counters.background_drains.inc();
            }
        }
        actions
    }
}

/// All physical rows of the in-DRAM table region (mapped mode).
fn table_region_rows(config: &AquaConfig) -> Vec<RowAddr> {
    let per_bank = config.table_rows_per_bank();
    let top = config.geometry.rows_per_bank - config.rqa_rows_per_bank();
    let mut rows = Vec::new();
    for bank in config.geometry.banks() {
        for r in (top - per_bank)..top {
            rows.push(RowAddr { bank, row: r });
        }
    }
    rows
}

impl Mitigation for AquaEngine {
    fn name(&self) -> &'static str {
        match self.config.table_mode {
            TableMode::Sram => "aqua-sram",
            TableMode::Mapped { .. } => "aqua-mapped",
        }
    }

    fn translate(&mut self, row: GlobalRowId, now: Time) -> Translation {
        let (slot, dram_reads, outcome) = self.backend.lookup_slot(row);
        match outcome {
            Some(LookupOutcome::SingletonSkip) => {
                self.counters.fpt_cache_misses.inc();
                self.telemetry.record(
                    now.as_ps(),
                    EventKind::FptCacheMiss {
                        row: row.index(),
                        singleton: true,
                    },
                );
            }
            Some(LookupOutcome::DramAccess) => {
                self.counters.fpt_cache_misses.inc();
                self.telemetry.record(
                    now.as_ps(),
                    EventKind::FptCacheMiss {
                        row: row.index(),
                        singleton: false,
                    },
                );
            }
            _ => {}
        }
        let phys = match slot {
            Some(s) => self.config.rqa_slot_location(s.index()),
            None => self
                .config
                .geometry
                .expand(row)
                .expect("workload row ids must be within geometry"),
        };
        let table_row = if dram_reads > 0 {
            // The in-DRAM FPT line actually read; it may itself have been
            // quarantined, in which case the pinned entry redirects it.
            let addr = self.config.fpt_table_row_of(row);
            let gid = self
                .config
                .geometry
                .flatten(addr)
                .expect("table rows lie within geometry");
            let (tslot, _, _) = self.backend.lookup_slot(gid);
            Some(match tslot {
                Some(s) => self.config.rqa_slot_location(s.index()),
                None => addr,
            })
        } else {
            None
        };
        Translation {
            phys,
            lookup_latency: SRAM_LOOKUP,
            dram_table_reads: dram_reads,
            table_row,
        }
    }

    fn on_activation(&mut self, phys: RowAddr, now: Time) -> Vec<MitigationAction> {
        if !self.tracker.on_activation(phys).mitigate() {
            return Vec::new();
        }
        self.stats.mitigations += 1;
        self.counters.mitigations.inc();
        let mut actions = Vec::new();
        if let Some(slot) = self.config.rqa_slot_of(phys) {
            // A quarantined row is hot at its RQA location: move it within
            // the quarantine area (section IV-D internal migration).
            if let Some(entry) = self.rpt.get(slot) {
                self.quarantine(entry.original, Some(RqaSlot::new(slot)), now, &mut actions);
            }
            // An RQA location with no valid occupant cannot be addressed by
            // software; stale tracker state is ignored.
        } else {
            // Normal row (or a table-storing row): quarantine it. The row id
            // is its physical location, which equals its OS-visible id here
            // because non-quarantined rows are identity-mapped.
            let row = self
                .config
                .geometry
                .flatten(phys)
                .expect("physical address within geometry");
            self.quarantine(row, None, now, &mut actions);
        }
        actions
    }

    fn end_epoch(&mut self) {
        self.tracker.end_epoch();
        self.rqa.advance_epoch();
        if let Backend::Mapped(m) = &self.backend {
            self.epoch_breakdown = m.breakdown();
        }
    }

    fn on_refresh_tick(&mut self, now: Time) -> Vec<MitigationAction> {
        self.background_drain(now)
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.counters = AquaCounters {
            installs: telemetry.counter("aqua.installs"),
            internal_moves: telemetry.counter("aqua.internal_moves"),
            evictions: telemetry.counter("aqua.evictions"),
            background_drains: telemetry.counter("aqua.background_drains"),
            mitigations: telemetry.counter("aqua.mitigations"),
            fpt_cache_misses: telemetry.counter("aqua.fpt_cache_misses"),
        };
        self.telemetry = telemetry;
    }

    fn epoch_gauges(&self) -> Vec<(&'static str, f64)> {
        let mut gauges = vec![(
            "rqa_occupancy",
            self.rpt.valid_count() as f64 / self.config.rqa_rows.max(1) as f64,
        )];
        if let Backend::Mapped(m) = &self.backend {
            // Hit rate over the closing epoch, among lookups that consulted
            // the FPT-Cache (i.e. were not filtered out by the bloom filter).
            let d = m.breakdown().diff(&self.epoch_breakdown);
            let consulted = d.cache_hit + d.singleton_skip + d.dram_access;
            if consulted > 0 {
                gauges.push(("fpt_cache_hit_rate", d.cache_hit as f64 / consulted as f64));
            }
        }
        gauges
    }

    fn reserved_rows(&self) -> Vec<RowAddr> {
        (0..self.config.rqa_rows)
            .map(|slot| self.config.rqa_slot_location(slot))
            .collect()
    }

    fn mitigation_stats(&self) -> MitigationStats {
        MitigationStats {
            row_migrations: self.stats.row_migrations(),
            mitigations_triggered: self.stats.mitigations,
            victim_refreshes: 0,
            throttled: 0,
            violations: self.stats.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BaselineConfig;

    fn small_config() -> AquaConfig {
        // A reduced configuration that still exercises every path quickly.
        let base = BaselineConfig::tiny();
        let mut c = AquaConfig::for_rowhammer_threshold(20, &base);
        c.tracker_entries_per_bank = 64;
        c.rqa_rows = 8;
        c.fpt_entries = 64;
        c
    }

    fn hammer(engine: &mut AquaEngine, row: GlobalRowId, times: u64) -> Vec<MitigationAction> {
        let mut all = Vec::new();
        for _ in 0..times {
            let t = engine.translate(row, Time::ZERO);
            all.extend(engine.on_activation(t.phys, Time::ZERO));
        }
        all
    }

    #[test]
    fn hot_row_is_quarantined_at_threshold() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        let actions = hammer(&mut e, row, 10);
        assert_eq!(e.stats().installs, 1);
        assert!(actions.iter().any(|a| matches!(
            a,
            MitigationAction::BlockChannel {
                kind: MigrationKind::QuarantineInstall,
                ..
            }
        )));
        // Row now resolves to the quarantine region.
        let t = e.translate(row, Time::ZERO);
        assert!(e.config().rqa_region_contains(t.phys));
        e.check_consistency();
    }

    #[test]
    fn continued_hammering_moves_within_rqa() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10); // install
        let first = e.translate(row, Time::ZERO).phys;
        hammer(&mut e, row, 10); // internal move
        let second = e.translate(row, Time::ZERO).phys;
        assert_ne!(first, second, "internal migration must change the slot");
        assert!(e.config().rqa_region_contains(second));
        assert_eq!(e.stats().internal_moves, 1);
        e.check_consistency();
    }

    #[test]
    fn lazy_drain_evicts_previous_epoch_rows() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        // Fill all 8 RQA slots in epoch 0.
        for r in 0..8u64 {
            hammer(&mut e, GlobalRowId::new(r * 3), 10);
        }
        assert_eq!(e.stats().installs, 8);
        assert_eq!(e.stats().violations, 0);
        e.end_epoch();
        // New install in epoch 1 reuses slot 0 and must first evict.
        hammer(&mut e, GlobalRowId::new(100), 10);
        assert_eq!(e.stats().evictions, 1);
        assert_eq!(e.stats().violations, 0);
        // The evicted row is identity-mapped again.
        let t = e.translate(GlobalRowId::new(0), Time::ZERO);
        assert!(!e.config().rqa_region_contains(t.phys));
        e.check_consistency();
    }

    #[test]
    fn undersized_rqa_reports_violation() {
        let mut c = small_config();
        c.rqa_rows = 2;
        let mut e = AquaEngine::new(c).unwrap();
        for r in 0..3u64 {
            hammer(&mut e, GlobalRowId::new(r * 7), 10);
        }
        assert!(
            e.stats().violations > 0,
            "slot reuse within an epoch must be flagged"
        );
    }

    #[test]
    fn epoch_reset_requires_full_threshold_again() {
        let mut e = AquaEngine::new(small_config()).unwrap();
        let row = GlobalRowId::new(9);
        hammer(&mut e, row, 9); // threshold is 10; one short
        e.end_epoch();
        hammer(&mut e, row, 9);
        assert_eq!(e.stats().installs, 0, "tracker reset must forget counts");
    }

    #[test]
    fn mapped_mode_quarantines_and_redirects() {
        let mut c = small_config();
        c.table_mode = TableMode::Mapped {
            bloom_bits: 256,
            cache_entries: 32,
        };
        let mut e = AquaEngine::new(c).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        let t = e.translate(row, Time::ZERO);
        assert!(e.config().rqa_region_contains(t.phys));
        let b = e.lookup_breakdown().unwrap();
        assert!(b.total() > 0);
        e.check_consistency();
    }

    #[test]
    fn mapped_mode_pins_table_rows() {
        let mut c = small_config();
        c.table_mode = TableMode::Mapped {
            bloom_bits: 256,
            cache_entries: 32,
        };
        let e = AquaEngine::new(c).unwrap();
        match &e.backend {
            Backend::Mapped(m) => assert!(m.pinned_count() > 0),
            Backend::Sram(_) => panic!("expected mapped backend"),
        }
    }

    #[test]
    fn pthammer_on_table_rows_is_quarantined_via_pinned_entries() {
        // Section VI-B: an attacker can hammer the DRAM rows storing the
        // FPT/RPT (PTHammer-style, via lookups it induces). Those rows are
        // quarantined like any other, with their mapping pinned in SRAM so
        // lookups never recurse.
        let mut c = small_config();
        c.table_mode = TableMode::Mapped {
            bloom_bits: 256,
            cache_entries: 32,
        };
        let mut e = AquaEngine::new(c).unwrap();
        // Physical location of the FPT line for row 0.
        let table_addr = e.config().fpt_table_row_of(GlobalRowId::new(0));
        let table_gid = e.config().geometry.flatten(table_addr).unwrap();
        assert!(e.config().is_table_row(table_addr));
        // Hammer the table row (as the simulator would on repeated induced
        // FPT reads): it must be quarantined at the threshold.
        let mut quarantined = false;
        for _ in 0..10 {
            let phys = match &e.backend {
                Backend::Mapped(m) => {
                    // Resolve through the pinned entry, as translate() does.
                    let mut m = m.clone();
                    match m.lookup(table_gid).slot {
                        Some(s) => e.config().rqa_slot_location(s.index()),
                        None => table_addr,
                    }
                }
                Backend::Sram(_) => unreachable!(),
            };
            if !e.on_activation(phys, Time::ZERO).is_empty() {
                quarantined = true;
            }
        }
        assert!(quarantined, "table row must be quarantined at threshold");
        // The engine now reports FPT reads for row 0 redirected to the RQA.
        let t = e.translate(GlobalRowId::new(0), Time::ZERO);
        if let Some(redirected) = t.table_row {
            assert!(
                e.config().rqa_region_contains(redirected) || e.config().is_table_row(redirected)
            );
        }
        e.check_consistency();
    }

    #[test]
    fn background_drain_empties_stale_slots() {
        let mut c = small_config();
        c.drain_per_refresh = 4;
        let mut e = AquaEngine::new(c).unwrap();
        for r in 0..4u64 {
            hammer(&mut e, GlobalRowId::new(r * 3), 10);
        }
        e.end_epoch();
        let actions = e.on_refresh_tick(Time::ZERO);
        assert!(!actions.is_empty());
        assert_eq!(e.stats().background_drains, 4);
        // Subsequent installs need no on-demand eviction.
        hammer(&mut e, GlobalRowId::new(200), 10);
        assert_eq!(e.stats().evictions, 0);
        e.check_consistency();
    }

    #[test]
    fn hydra_tracker_quarantines_like_misra_gries() {
        // Appendix B: AQUA is tracker-agnostic. The Hydra-backed engine must
        // quarantine a hammered row no later than the MG-backed one (Hydra's
        // conservative group-count inheritance can only fire earlier).
        let mut cfg = small_config().with_hydra_tracker();
        cfg.rqa_rows = 16;
        let mut e = AquaEngine::new(cfg).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 10);
        assert!(e.stats().installs >= 1);
        let t = e.translate(row, Time::ZERO);
        assert!(e.config().rqa_region_contains(t.phys));
        e.check_consistency();
        // At paper scale, Hydra's SRAM footprint is far below MG's
        // (Table VII: ~30 KB vs ~396 KB).
        let paper = BaselineConfig::paper_table1();
        let mg = AquaEngine::new(AquaConfig::for_rowhammer_threshold(1000, &paper)).unwrap();
        let hydra =
            AquaEngine::new(AquaConfig::for_rowhammer_threshold(1000, &paper).with_hydra_tracker())
                .unwrap();
        assert!(hydra.tracker_sram_bits() * 4 < mg.tracker_sram_bits());
    }

    #[test]
    fn exact_tracker_fires_precisely_at_threshold() {
        let mut cfg = small_config();
        cfg.tracker = crate::TrackerKind::Exact;
        let mut e = AquaEngine::new(cfg).unwrap();
        let row = GlobalRowId::new(5);
        hammer(&mut e, row, 9);
        assert_eq!(e.stats().installs, 0);
        hammer(&mut e, row, 1);
        assert_eq!(e.stats().installs, 1);
    }

    #[test]
    fn migration_latency_is_paper_value() {
        let base = BaselineConfig::paper_table1();
        let c = AquaConfig::for_rowhammer_threshold(1000, &base);
        let mut e = AquaEngine::new(c).unwrap();
        let actions = hammer(&mut e, GlobalRowId::new(42), 500);
        let dur = actions.iter().find_map(|a| match a {
            MitigationAction::BlockChannel { duration, .. } => Some(*duration),
            _ => None,
        });
        assert_eq!(dur.unwrap().as_ns(), 1_370);
    }
}
