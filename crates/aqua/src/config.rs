//! AQUA configuration and memory-region layout.

use crate::AquaError;
use aqua_dram::{BankId, BaselineConfig, DdrTiming, DramGeometry, GlobalRowId, RowAddr};
use serde::{Deserialize, Serialize};

/// Which aggressor-row tracker (ART) drives the mitigations.
///
/// The tracker choice is orthogonal to AQUA's design (section IV-B); the
/// paper's default is the Misra-Gries tracker, with the storage-optimized
/// Hydra tracker evaluated in Appendix B (Table VII: AQUA-MG 437 KB vs
/// AQUA-Hydra 71 KB of SRAM per rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackerKind {
    /// Per-bank Misra-Gries summary (Graphene-style; the paper default).
    MisraGries,
    /// Hydra-style hybrid SRAM/DRAM tracker (Appendix B).
    Hydra,
    /// CRA-style exact in-DRAM counters behind an SRAM counter cache
    /// (reference [14] of the paper).
    Cra,
    /// Idealized exact per-row counters (for analysis and tests).
    Exact,
}

/// Where the FPT/RPT mapping tables live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableMode {
    /// Tables in SRAM (section IV): CAT-based FPT, direct-mapped RPT.
    /// 172 KB per rank at `T_RH` = 1K.
    Sram,
    /// Memory-mapped tables (section V): flat FPT/RPT in DRAM, filtered by a
    /// resettable bloom filter and cached in the FPT-Cache. 32 KB per rank.
    Mapped {
        /// Bloom-filter bits (paper default: 128K bits = 16 KB).
        bloom_bits: usize,
        /// FPT-Cache entries (paper default: 4K entries = 16 KB).
        cache_entries: usize,
    },
}

impl TableMode {
    /// The paper's default memory-mapped configuration (16 KB bloom filter,
    /// 4K-entry FPT-Cache).
    pub const fn mapped_default() -> Self {
        TableMode::Mapped {
            bloom_bits: 128 * 1024,
            cache_entries: 4 * 1024,
        }
    }
}

/// Complete configuration of one AQUA instance (one rank).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AquaConfig {
    /// DRAM geometry.
    pub geometry: DramGeometry,
    /// DDR4 timing.
    pub timing: DdrTiming,
    /// The Rowhammer threshold `T_RH` being defended against.
    pub t_rh: u64,
    /// Per-epoch mitigation threshold `A` (`T_RH / 2`, section IV-B).
    pub mitigation_threshold: u64,
    /// Rows reserved for the quarantine area (Eq. 3).
    pub rqa_rows: u64,
    /// FPT entries (SRAM mode): over-provisioned ~1.4x beyond `rqa_rows`.
    pub fpt_entries: usize,
    /// Table placement.
    pub table_mode: TableMode,
    /// Misra-Gries tracker entries per bank.
    pub tracker_entries_per_bank: usize,
    /// Which aggressor-row tracker to use.
    pub tracker: TrackerKind,
    /// Stale RQA entries drained in the background per refresh command
    /// (0 = evictions happen lazily on install, the paper's default).
    pub drain_per_refresh: u32,
}

/// Minimum quarantine-area rows for security at mitigation threshold `a`
/// (Eq. 3 of the paper).
///
/// `R_max = tREFW * B / (t_AGG + B * t_mov)` where `t_AGG = a * tRC` (Eq. 1)
/// and `t_mov` is the 1.37 us row-migration latency. The result is rounded up.
///
/// ```
/// use aqua::required_rqa_rows;
/// use aqua_dram::{DdrTiming, DramGeometry};
///
/// let rows = required_rqa_rows(&DdrTiming::ddr4_2400(), &DramGeometry::paper_table1(), 500);
/// assert_eq!(rows, 23_053); // paper section IV-E
/// ```
pub fn required_rqa_rows(timing: &DdrTiming, geometry: &DramGeometry, a: u64) -> u64 {
    let banks = geometry.total_banks() as u64;
    let t_agg = timing.aggressor_time(a).as_ps();
    let t_mov = timing.row_migration_latency(geometry).as_ps();
    let denom = t_agg + banks * t_mov;
    let numer = timing.t_refw.as_ps() * banks;
    numer.div_ceil(denom)
}

impl AquaConfig {
    /// Builds the paper's default AQUA configuration for a Rowhammer
    /// threshold `t_rh` on the given baseline system: mitigation threshold
    /// `t_rh / 2`, RQA sized by Eq. 3, SRAM tables.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh < 2`.
    pub fn for_rowhammer_threshold(t_rh: u64, base: &BaselineConfig) -> Self {
        assert!(t_rh >= 2, "Rowhammer threshold must be at least 2");
        let a = t_rh / 2;
        let rqa_rows = required_rqa_rows(&base.timing, &base.geometry, a);
        // FPT over-provisioning mirrors the paper: 32K entries for 23K rows.
        let fpt_entries = (rqa_rows as usize * 32).div_ceil(23).next_power_of_two();
        const ACT_MAX: u64 = 1_360_000;
        AquaConfig {
            geometry: base.geometry,
            timing: base.timing,
            t_rh,
            mitigation_threshold: a,
            rqa_rows,
            fpt_entries,
            table_mode: TableMode::Sram,
            tracker_entries_per_bank: (ACT_MAX / a).max(1) as usize,
            tracker: TrackerKind::MisraGries,
            drain_per_refresh: 0,
        }
    }

    /// Switches to the Hydra-style hybrid tracker (Appendix B).
    pub fn with_hydra_tracker(mut self) -> Self {
        self.tracker = TrackerKind::Hydra;
        self
    }

    /// Switches to memory-mapped tables with the paper's default filter and
    /// cache sizes.
    pub fn with_mapped_tables(mut self) -> Self {
        self.table_mode = TableMode::mapped_default();
        self
    }

    /// Overrides the RQA size (used by tests that deliberately undersize the
    /// quarantine area to demonstrate the security check).
    pub fn with_rqa_rows(mut self, rows: u64) -> Self {
        self.rqa_rows = rows;
        self
    }

    /// Enables background draining of `n` stale RQA entries per refresh tick.
    pub fn with_drain_per_refresh(mut self, n: u32) -> Self {
        self.drain_per_refresh = n;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AquaError`] if the reserved regions exceed the module or a
    /// parameter is degenerate.
    pub fn validate(&self) -> Result<(), AquaError> {
        if self.mitigation_threshold == 0 {
            return Err(AquaError::InvalidConfig("mitigation threshold is zero"));
        }
        if self.rqa_rows == 0 {
            return Err(AquaError::InvalidConfig("quarantine area is empty"));
        }
        let reserved = self.rqa_rows_per_bank() as u64 + self.table_rows_per_bank() as u64;
        if reserved >= self.geometry.rows_per_bank as u64 {
            return Err(AquaError::RqaTooLarge {
                requested: self.rqa_rows,
                available: self.geometry.total_rows(),
            });
        }
        Ok(())
    }

    /// RQA rows reserved in each bank (slots round-robin across banks).
    pub fn rqa_rows_per_bank(&self) -> u32 {
        self.rqa_rows.div_ceil(self.geometry.total_banks() as u64) as u32
    }

    /// Rows per bank reserved for in-DRAM mapping tables (mapped mode only).
    pub fn table_rows_per_bank(&self) -> u32 {
        match self.table_mode {
            TableMode::Sram => 0,
            TableMode::Mapped { .. } => (self.fpt_table_rows() + self.rpt_table_rows())
                .div_ceil(self.geometry.total_banks() as u64)
                as u32,
        }
    }

    /// Total DRAM rows holding the flat in-DRAM FPT (2 bytes per memory row;
    /// 4 MB = 512 rows for the 16 GB baseline).
    pub fn fpt_table_rows(&self) -> u64 {
        let bytes = self.geometry.total_rows() * 2;
        bytes.div_ceil(self.geometry.row_bytes as u64)
    }

    /// Total DRAM rows holding the in-DRAM RPT (3 bytes per RQA slot).
    pub fn rpt_table_rows(&self) -> u64 {
        (self.rqa_rows * 3).div_ceil(self.geometry.row_bytes as u64)
    }

    /// Physical location of RQA slot `slot`.
    ///
    /// Slots stripe round-robin across banks, occupying the highest row
    /// indices of each bank (invisible to the OS address range).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= rqa_rows`.
    pub fn rqa_slot_location(&self, slot: u64) -> RowAddr {
        assert!(slot < self.rqa_rows, "RQA slot {slot} out of range");
        let banks = self.geometry.total_banks() as u64;
        RowAddr {
            bank: BankId::new((slot % banks) as u32),
            row: self.geometry.rows_per_bank - 1 - (slot / banks) as u32,
        }
    }

    /// Whether `addr` lies inside the reserved quarantine region.
    pub fn rqa_region_contains(&self, addr: RowAddr) -> bool {
        addr.row >= self.geometry.rows_per_bank - self.rqa_rows_per_bank()
            && self.rqa_slot_of(addr).is_some()
    }

    /// The RQA slot stored at physical address `addr`, if any.
    pub fn rqa_slot_of(&self, addr: RowAddr) -> Option<u64> {
        let banks = self.geometry.total_banks() as u64;
        let depth = (self.geometry.rows_per_bank - 1).checked_sub(addr.row)? as u64;
        let slot = depth * banks + addr.bank.index() as u64;
        (slot < self.rqa_rows).then_some(slot)
    }

    /// Physical row holding the in-DRAM FPT entry for `row` (mapped mode).
    ///
    /// FPT table rows sit directly below the RQA region, striped across banks.
    pub fn fpt_table_row_of(&self, row: GlobalRowId) -> RowAddr {
        let entries_per_row = (self.geometry.row_bytes / 2) as u64;
        let table_row = row.index() / entries_per_row;
        let banks = self.geometry.total_banks() as u64;
        RowAddr {
            bank: BankId::new((table_row % banks) as u32),
            row: self.geometry.rows_per_bank
                - 1
                - self.rqa_rows_per_bank()
                - (table_row / banks) as u32,
        }
    }

    /// Whether `addr` holds in-DRAM mapping-table contents (mapped mode).
    pub fn is_table_row(&self, addr: RowAddr) -> bool {
        if matches!(self.table_mode, TableMode::Sram) {
            return false;
        }
        let top = self.geometry.rows_per_bank - self.rqa_rows_per_bank();
        let bottom = top - self.table_rows_per_bank();
        addr.row >= bottom && addr.row < top
    }

    /// Number of OS-visible rows (total minus quarantine and table regions).
    pub fn visible_rows(&self) -> u64 {
        let reserved_per_bank = (self.rqa_rows_per_bank() + self.table_rows_per_bank()) as u64;
        self.geometry.total_rows() - reserved_per_bank * self.geometry.total_banks() as u64
    }

    /// DRAM overhead of AQUA as a fraction of module capacity (paper: ~1.1%
    /// for the quarantine area alone, 1.13% including the in-DRAM tables).
    pub fn dram_overhead(&self) -> f64 {
        let table_rows = match self.table_mode {
            TableMode::Sram => 0,
            TableMode::Mapped { .. } => self.fpt_table_rows() + self.rpt_table_rows(),
        };
        (self.rqa_rows + table_rows) as f64 / self.geometry.total_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BaselineConfig;

    fn base() -> BaselineConfig {
        BaselineConfig::paper_table1()
    }

    #[test]
    fn eq3_matches_paper_table3() {
        // Table III of the paper.
        let t = DdrTiming::ddr4_2400();
        let g = DramGeometry::paper_table1();
        assert_eq!(required_rqa_rows(&t, &g, 1000), 15_302);
        assert_eq!(required_rqa_rows(&t, &g, 500), 23_053);
        assert_eq!(required_rqa_rows(&t, &g, 250), 30_872);
        assert_eq!(required_rqa_rows(&t, &g, 125), 37_176);
        assert_eq!(required_rqa_rows(&t, &g, 50), 42_367);
        assert_eq!(required_rqa_rows(&t, &g, 1), 46_620);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = AquaConfig::for_rowhammer_threshold(1000, &base());
        assert_eq!(c.mitigation_threshold, 500);
        assert_eq!(c.rqa_rows, 23_053);
        assert_eq!(c.fpt_entries, 32 * 1024);
        // DRAM overhead ~1.1% (quarantine only, SRAM tables).
        assert!((c.dram_overhead() - 0.011).abs() < 0.001);
        c.validate().unwrap();
    }

    #[test]
    fn mapped_overhead_is_1_13_percent() {
        let c = AquaConfig::for_rowhammer_threshold(1000, &base()).with_mapped_tables();
        assert_eq!(c.fpt_table_rows(), 512); // 4 MB / 8 KB
        assert!((c.dram_overhead() - 0.0113).abs() < 0.0005);
        c.validate().unwrap();
    }

    #[test]
    fn rqa_slot_roundtrip() {
        let c = AquaConfig::for_rowhammer_threshold(1000, &base());
        for slot in [0, 1, 15, 16, 17, 12345, c.rqa_rows - 1] {
            let loc = c.rqa_slot_location(slot);
            assert!(c.rqa_region_contains(loc), "slot {slot} at {loc}");
            assert_eq!(c.rqa_slot_of(loc), Some(slot));
        }
    }

    #[test]
    fn visible_rows_exclude_reserved() {
        let c = AquaConfig::for_rowhammer_threshold(1000, &base());
        let visible = c.visible_rows();
        assert!(visible < c.geometry.total_rows());
        assert!(visible > c.geometry.total_rows() * 98 / 100);
    }

    #[test]
    fn table_region_is_below_rqa() {
        let c = AquaConfig::for_rowhammer_threshold(1000, &base()).with_mapped_tables();
        let t = c.fpt_table_row_of(GlobalRowId::new(0));
        assert!(c.is_table_row(t));
        assert!(!c.rqa_region_contains(t));
        let last = c.fpt_table_row_of(GlobalRowId::new(c.geometry.total_rows() - 1));
        assert!(c.is_table_row(last));
    }

    #[test]
    fn validate_rejects_oversized_rqa() {
        let c = AquaConfig::for_rowhammer_threshold(1000, &base())
            .with_rqa_rows(BaselineConfig::paper_table1().geometry.total_rows());
        assert!(matches!(c.validate(), Err(AquaError::RqaTooLarge { .. })));
    }

    #[test]
    fn rqa_region_boundary_is_exact() {
        let c = AquaConfig::for_rowhammer_threshold(1000, &base());
        // A row just below the RQA region must not be classified as RQA.
        let below = RowAddr {
            bank: BankId::new(0),
            row: c.geometry.rows_per_bank - c.rqa_rows_per_bank() - 1,
        };
        assert!(!c.rqa_region_contains(below));
    }
}
