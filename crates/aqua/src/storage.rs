//! Storage-overhead accounting (sections IV-C, V-G; Tables VI and VII).

use crate::{AquaConfig, TableMode};
use serde::{Deserialize, Serialize};

/// Breakdown of the SRAM and DRAM storage an AQUA instance requires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageReport {
    /// SRAM for the mapping tables (FPT+RPT, or bloom+cache+pins), bytes.
    pub mapping_sram_bytes: u64,
    /// SRAM for the copy-buffer (one row, 8 KB), bytes.
    pub copy_buffer_bytes: u64,
    /// DRAM for the quarantine area, bytes.
    pub rqa_dram_bytes: u64,
    /// DRAM for in-DRAM tables (mapped mode), bytes.
    pub table_dram_bytes: u64,
}

impl StorageReport {
    /// Computes the report for a configuration.
    pub fn for_config(config: &AquaConfig) -> Self {
        let row_bytes = config.geometry.row_bytes as u64;
        let mapping_sram_bits = match config.table_mode {
            TableMode::Sram => {
                // FPT: 27 bits x fpt_entries (108 KB at the paper's 32K);
                // RPT: 23 bits x rqa_rows (~64 KB at 23K).
                config.fpt_entries as u64 * 27 + config.rqa_rows * 23
            }
            TableMode::Mapped {
                bloom_bits,
                cache_entries,
            } => {
                // Bloom (1 bit/entry) + FPT-Cache (32 bits/entry) + pinned
                // FPT entries for table-storing rows (16 bits each).
                let pins = config.fpt_table_rows() + config.rpt_table_rows();
                bloom_bits as u64 + cache_entries as u64 * 32 + pins * 16
            }
        };
        let table_dram_bytes = match config.table_mode {
            TableMode::Sram => 0,
            TableMode::Mapped { .. } => {
                (config.fpt_table_rows() + config.rpt_table_rows()) * row_bytes
            }
        };
        StorageReport {
            mapping_sram_bytes: mapping_sram_bits / 8,
            copy_buffer_bytes: row_bytes,
            rqa_dram_bytes: config.rqa_rows * row_bytes,
            table_dram_bytes,
        }
    }

    /// Total SRAM (mapping structures + copy buffer), bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        self.mapping_sram_bytes + self.copy_buffer_bytes
    }

    /// Total DRAM reserved, bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.rqa_dram_bytes + self.table_dram_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BaselineConfig;

    #[test]
    fn sram_tables_cost_172kb() {
        // Section IV-C: FPT 108 KB + RPT ~64 KB = 172 KB.
        let c = AquaConfig::for_rowhammer_threshold(1000, &BaselineConfig::paper_table1());
        let r = StorageReport::for_config(&c);
        let kb = r.mapping_sram_bytes / 1024;
        assert!((168..=176).contains(&kb), "SRAM tables = {kb} KB");
    }

    #[test]
    fn mapped_tables_cost_about_41kb_total() {
        // Section V-G: 16 KB bloom + 16 KB cache + 8 KB copy-buffer +
        // ~0.6 KB pins ~= 41 KB.
        let c = AquaConfig::for_rowhammer_threshold(1000, &BaselineConfig::paper_table1())
            .with_mapped_tables();
        let r = StorageReport::for_config(&c);
        let kb = r.total_sram_bytes() as f64 / 1024.0;
        assert!((40.0..=44.0).contains(&kb), "mapped SRAM = {kb} KB");
    }

    #[test]
    fn rqa_is_180mb() {
        // Section IV-E: 23K rows x 8 KB ~= 180 MB per rank.
        let c = AquaConfig::for_rowhammer_threshold(1000, &BaselineConfig::paper_table1());
        let r = StorageReport::for_config(&c);
        let mb = r.rqa_dram_bytes / (1024 * 1024);
        assert!((178..=182).contains(&mb), "RQA = {mb} MB");
    }

    #[test]
    fn mapped_dram_tables_are_about_4mb() {
        let c = AquaConfig::for_rowhammer_threshold(1000, &BaselineConfig::paper_table1())
            .with_mapped_tables();
        let r = StorageReport::for_config(&c);
        let mb = r.table_dram_bytes as f64 / (1024.0 * 1024.0);
        assert!((4.0..=4.5).contains(&mb), "in-DRAM tables = {mb} MB");
    }
}
