//! Forward-Pointer Table (FPT), SRAM variant.

use crate::{AquaError, CollisionAvoidanceTable, RqaSlot};
use aqua_dram::GlobalRowId;

/// SRAM forward-pointer table: quarantined row → RQA slot.
///
/// Built on the over-provisioned [`CollisionAvoidanceTable`] so that entries
/// from arbitrary memory addresses never suffer set conflicts (section IV-C:
/// 32K entries for 23K valid rows, 108 KB of SRAM).
#[derive(Debug, Clone)]
pub struct ForwardPointerTable {
    table: CollisionAvoidanceTable<RqaSlot>,
}

impl ForwardPointerTable {
    /// Creates an FPT with `entries` slots.
    pub fn new(entries: usize) -> Self {
        ForwardPointerTable {
            table: CollisionAvoidanceTable::new(entries),
        }
    }

    /// Looks up the quarantine slot of `row`, if quarantined.
    pub fn lookup(&self, row: GlobalRowId) -> Option<RqaSlot> {
        self.table.get(row.index()).copied()
    }

    /// Maps `row` to `slot` (insert or update).
    ///
    /// # Errors
    ///
    /// Returns [`AquaError::FptFull`] on capacity exhaustion.
    pub fn map(&mut self, row: GlobalRowId, slot: RqaSlot) -> Result<(), AquaError> {
        self.table.insert(row.index(), slot)
    }

    /// Removes the mapping for `row`, returning its slot if present.
    pub fn unmap(&mut self, row: GlobalRowId) -> Option<RqaSlot> {
        self.table.remove(row.index())
    }

    /// Number of quarantined rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no rows are quarantined.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over `(row, slot)` mappings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (GlobalRowId, RqaSlot)> + '_ {
        self.table.iter().map(|(k, v)| (GlobalRowId::new(k), *v))
    }

    /// SRAM bits: 27 bits per entry (valid + tag + 15-bit forward pointer),
    /// matching the paper's 108 KB for 32K entries.
    pub fn sram_bits(&self) -> u64 {
        self.table.capacity() as u64 * 27
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut fpt = ForwardPointerTable::new(64);
        let row = GlobalRowId::new(1234);
        assert_eq!(fpt.lookup(row), None);
        fpt.map(row, RqaSlot::new(7)).unwrap();
        assert_eq!(fpt.lookup(row), Some(RqaSlot::new(7)));
        assert_eq!(fpt.unmap(row), Some(RqaSlot::new(7)));
        assert_eq!(fpt.lookup(row), None);
        assert!(fpt.is_empty());
    }

    #[test]
    fn remap_moves_slot() {
        let mut fpt = ForwardPointerTable::new(64);
        let row = GlobalRowId::new(5);
        fpt.map(row, RqaSlot::new(1)).unwrap();
        fpt.map(row, RqaSlot::new(2)).unwrap();
        assert_eq!(fpt.len(), 1);
        assert_eq!(fpt.lookup(row), Some(RqaSlot::new(2)));
    }

    #[test]
    fn paper_sizing_is_108kb() {
        let fpt = ForwardPointerTable::new(32 * 1024);
        assert_eq!(fpt.sram_bits(), 32 * 1024 * 27);
        assert_eq!(fpt.sram_bits() / 8 / 1024, 108);
    }

    #[test]
    fn iter_roundtrips() {
        let mut fpt = ForwardPointerTable::new(64);
        for i in 0..10 {
            fpt.map(GlobalRowId::new(i * 100), RqaSlot::new(i)).unwrap();
        }
        let mut pairs: Vec<_> = fpt.iter().map(|(r, s)| (r.index(), s.index())).collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[3], (300, 3));
    }
}
