//! Reverse-Pointer Table (RPT).

use aqua_dram::GlobalRowId;
use serde::{Deserialize, Serialize};

/// One RPT entry: which memory row currently occupies an RQA slot, and in
/// which epoch it was installed (the epoch tag drives lazy draining and the
/// never-reuse-within-epoch security check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RptEntry {
    /// Original (OS-visible) location of the quarantined row.
    pub original: GlobalRowId,
    /// Epoch in which the row was installed into this slot.
    pub install_epoch: u64,
}

/// Direct-mapped reverse-pointer table: one entry per RQA slot.
///
/// Section IV-C: each entry holds a valid bit and a 21-bit reverse pointer;
/// 23K entries occupy ~64 KB of SRAM (or 0.1 MB of DRAM in mapped mode).
#[derive(Debug, Clone)]
pub struct ReversePointerTable {
    entries: Vec<Option<RptEntry>>,
}

impl ReversePointerTable {
    /// Creates an empty RPT with `slots` entries.
    pub fn new(slots: u64) -> Self {
        ReversePointerTable {
            entries: vec![None; slots as usize],
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Number of valid entries.
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// The entry at `slot`, if valid.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn get(&self, slot: u64) -> Option<RptEntry> {
        self.entries[slot as usize]
    }

    /// Sets the entry at `slot`, returning the previous occupant.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn set(&mut self, slot: u64, entry: RptEntry) -> Option<RptEntry> {
        self.entries[slot as usize].replace(entry)
    }

    /// Invalidates `slot`, returning the previous occupant.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn clear(&mut self, slot: u64) -> Option<RptEntry> {
        self.entries[slot as usize].take()
    }

    /// SRAM bits for this table: valid bit + 21-bit pointer + epoch parity
    /// bit per entry (the full epoch counter is controller state, not SRAM).
    pub fn sram_bits(&self) -> u64 {
        self.entries.len() as u64 * (1 + 21 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut rpt = ReversePointerTable::new(8);
        assert_eq!(rpt.get(3), None);
        let e = RptEntry {
            original: GlobalRowId::new(99),
            install_epoch: 2,
        };
        assert_eq!(rpt.set(3, e), None);
        assert_eq!(rpt.get(3), Some(e));
        assert_eq!(rpt.valid_count(), 1);
        assert_eq!(rpt.clear(3), Some(e));
        assert_eq!(rpt.get(3), None);
        assert_eq!(rpt.valid_count(), 0);
    }

    #[test]
    fn set_returns_previous_occupant() {
        let mut rpt = ReversePointerTable::new(4);
        let a = RptEntry {
            original: GlobalRowId::new(1),
            install_epoch: 0,
        };
        let b = RptEntry {
            original: GlobalRowId::new(2),
            install_epoch: 1,
        };
        rpt.set(0, a);
        assert_eq!(rpt.set(0, b), Some(a));
        assert_eq!(rpt.get(0), Some(b));
    }

    #[test]
    fn sram_size_matches_paper_scale() {
        // 23K entries -> ~64 KB in the paper (22-bit entries plus overhead).
        let rpt = ReversePointerTable::new(23_053);
        let kb = rpt.sram_bits() as f64 / 8.0 / 1024.0;
        assert!((60.0..70.0).contains(&kb), "RPT = {kb} KB");
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let rpt = ReversePointerTable::new(4);
        rpt.get(4);
    }
}
