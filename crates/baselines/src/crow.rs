//! Analytical model of CROW's copy-row provisioning (paper section VII-B,
//! Table V).
//!
//! CROW migrates victim (or aggressor) rows to spare *copy rows* using
//! Row-Clone, which can only copy **within a subarray** (512 rows). An
//! attacker can focus every aggressor on one subarray, so each subarray must
//! reserve enough copy rows for all concurrent aggressors. With `c` copy rows
//! a subarray tolerates `c / 2` aggressors (each double-sided aggressor pair
//! consumes two copy rows), so the tolerated Rowhammer threshold is
//! `ACTmax / (c / 2)` — 340K at CROW's default of 8 copy rows, and still
//! 5.3K even when copy rows double the DRAM (Table V).

use serde::{Deserialize, Serialize};

/// Per-bank activation budget in one refresh window (section II-B).
pub const ACT_MAX: u64 = 1_360_000;

/// Rows per subarray in the CROW design.
pub const SUBARRAY_ROWS: u64 = 512;

/// One row of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowDesignPoint {
    /// Copy rows provisioned per 512-row subarray.
    pub copy_rows: u64,
    /// DRAM overhead as a fraction (copy rows / subarray rows).
    pub dram_overhead: f64,
    /// Concurrent aggressors the subarray can absorb.
    pub aggressors_tolerated: u64,
    /// Minimum Rowhammer threshold at which the design is secure.
    pub t_rh_tolerated: u64,
}

/// Evaluates a CROW design point with `copy_rows` per subarray.
///
/// # Panics
///
/// Panics if `copy_rows` is zero or odd (aggressor pairs need two rows).
pub fn design_point(copy_rows: u64) -> CrowDesignPoint {
    assert!(
        copy_rows >= 2 && copy_rows.is_multiple_of(2),
        "copy rows come in pairs"
    );
    let aggressors = copy_rows / 2;
    CrowDesignPoint {
        copy_rows,
        dram_overhead: copy_rows as f64 / SUBARRAY_ROWS as f64,
        aggressors_tolerated: aggressors,
        t_rh_tolerated: ACT_MAX / aggressors,
    }
}

/// The four design points of Table V (8, 32, 128, 512 copy rows).
pub fn table5() -> Vec<CrowDesignPoint> {
    [8, 32, 128, 512].into_iter().map(design_point).collect()
}

/// Which row CROW migrates on a mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrowVariant {
    /// Original CROW: move the *victims* (two copy rows per aggressor).
    Victim,
    /// CROW-Agg (the paper's aggressor-focused variant with AQUA-style
    /// mapped tables): move the aggressor (one copy row per aggressor).
    Aggressor,
}

/// DRAM overhead CROW needs to be secure at threshold `t_rh`, accounting for
/// the tracker-reset halving of the effective threshold (Table VI: 1060% for
/// CROW and 530% for CROW-Agg at `T_RH` = 1K).
pub fn overhead_for_threshold(t_rh: u64, variant: CrowVariant) -> f64 {
    assert!(t_rh >= 2);
    let aggressors = ACT_MAX.div_ceil(t_rh / 2);
    let rows_per_aggressor = match variant {
        CrowVariant::Victim => 2,
        CrowVariant::Aggressor => 1,
    };
    (aggressors * rows_per_aggressor) as f64 / SUBARRAY_ROWS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper() {
        let t = table5();
        assert_eq!(t[0].aggressors_tolerated, 4);
        assert_eq!(t[0].t_rh_tolerated, 340_000);
        assert!((t[0].dram_overhead - 0.0156).abs() < 0.001); // 1.6%
        assert_eq!(t[1].t_rh_tolerated, 85_000);
        assert_eq!(t[2].t_rh_tolerated, 21_250);
        assert_eq!(t[3].t_rh_tolerated, 5_312); // ~5.3K
        assert!((t[3].dram_overhead - 1.0).abs() < 1e-9); // 100%
    }

    #[test]
    fn overhead_at_1k_matches_table6() {
        // Table VI: CROW 1060%, CROW-Agg 530% at T_RH = 1K.
        let victim = overhead_for_threshold(1000, CrowVariant::Victim);
        let agg = overhead_for_threshold(1000, CrowVariant::Aggressor);
        assert!((10.0..=11.0).contains(&victim), "CROW = {victim}");
        assert!((5.0..=5.5).contains(&agg), "CROW-Agg = {agg}");
    }

    #[test]
    fn overhead_shrinks_with_threshold() {
        assert!(overhead_for_threshold(680_000, CrowVariant::Victim) <= 0.016);
        assert!(
            overhead_for_threshold(1000, CrowVariant::Victim)
                > overhead_for_threshold(4000, CrowVariant::Victim)
        );
    }

    #[test]
    #[should_panic(expected = "pairs")]
    fn odd_copy_rows_rejected() {
        design_point(7);
    }
}
