//! Baseline Rowhammer mitigations AQUA is evaluated against.
//!
//! - [`VictimRefresh`] — the classic mitigation: refresh the rows adjacent to
//!   a flagged aggressor. Cheap, but it *preserves* the spatial correlation
//!   between aggressor and victims, which the Half-Double attack exploits:
//!   the mitigative refreshes of rows at distance 1 act as activations that
//!   disturb rows at distance 2 (paper section II-D, Table IV). The system
//!   simulator's oracle counts refreshes as activations, so Half-Double
//!   emerges naturally from this model.
//! - [`Blockhammer`] — rate-limits activations so no row can exceed its
//!   budget within a refresh window. Secure, but at `T_RH` = 1K a
//!   row-conflict pattern that would run at one round per ~100 ns is limited
//!   to 500 activations per 64 ms: a worst-case slowdown of 1280x
//!   (section VII-B).
//! - [`crow`] — an analytical model of CROW's copy-row provisioning: because
//!   Row-Clone can only copy within a subarray, every subarray must reserve
//!   enough copy rows for all concurrent aggressors, which makes CROW secure
//!   only above `T_RH` ~= 340K at its default 8 copy rows (Table V).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod blockhammer;
pub mod crow;
mod victim_refresh;

pub use blockhammer::{Blockhammer, BlockhammerConfig};
pub use victim_refresh::{VictimRefresh, VictimRefreshConfig};
