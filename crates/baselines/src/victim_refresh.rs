//! Victim-refresh mitigation (and its Half-Double weakness).

use aqua_dram::mitigation::{Mitigation, MitigationAction, MitigationStats, Translation};
use aqua_dram::{DramGeometry, GlobalRowId, RowAddr, Time};
use aqua_telemetry::{Counter, Telemetry};
use aqua_tracker::{AggressorTracker, MisraGriesTracker, TrackerConfig};
use serde::{Deserialize, Serialize};

/// Victim-refresh configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimRefreshConfig {
    /// Refresh neighbours up to this distance (1 = classic; 2 also refreshes
    /// distance-2 rows, which merely *moves* the Half-Double frontier out by
    /// one row — it does not close it).
    pub blast_radius: u32,
    /// Refresh the victims every `threshold` activations of the aggressor
    /// (`T_RH / 2` accounts for tracker reset, like AQUA).
    pub threshold: u64,
    /// Misra-Gries entries per bank.
    pub tracker_entries_per_bank: usize,
}

impl VictimRefreshConfig {
    /// Classic distance-1 victim refresh for a Rowhammer threshold.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh < 2`.
    pub fn for_rowhammer_threshold(t_rh: u64) -> Self {
        assert!(t_rh >= 2, "Rowhammer threshold must be at least 2");
        let a = t_rh / 2;
        const ACT_MAX: u64 = 1_360_000;
        VictimRefreshConfig {
            blast_radius: 1,
            threshold: a,
            tracker_entries_per_bank: (ACT_MAX / a).max(1) as usize,
        }
    }

    /// Extends the refresh radius (distance-2 victim refresh).
    pub fn with_blast_radius(mut self, radius: u32) -> Self {
        self.blast_radius = radius;
        self
    }
}

/// The victim-refresh mitigation engine.
///
/// Identity address translation (no indirection tables at all); the only
/// mitigative action is refreshing the aggressor's neighbours. The refreshes
/// are *row activations* of the victims — the simulator's disturbance oracle
/// therefore observes the Half-Double amplification without any special
/// modelling.
#[derive(Debug)]
pub struct VictimRefresh {
    config: VictimRefreshConfig,
    geometry: DramGeometry,
    tracker: MisraGriesTracker,
    stats: MitigationStats,
    refresh_counter: Counter,
}

impl VictimRefresh {
    /// Creates the engine for a module geometry.
    pub fn new(config: VictimRefreshConfig, geometry: DramGeometry) -> Self {
        let tracker_cfg = TrackerConfig::with_mitigation_threshold(config.threshold)
            .entries_per_bank(config.tracker_entries_per_bank);
        VictimRefresh {
            config,
            geometry,
            tracker: MisraGriesTracker::new(tracker_cfg, geometry.total_banks()),
            stats: MitigationStats::default(),
            refresh_counter: Counter::default(),
        }
    }

    /// The neighbours refreshed when `phys` is flagged.
    pub fn victims_of(&self, phys: RowAddr) -> Vec<RowAddr> {
        let mut rows = Vec::new();
        for d in 1..=self.config.blast_radius {
            if let Some(below) = phys.row.checked_sub(d) {
                rows.push(RowAddr {
                    bank: phys.bank,
                    row: below,
                });
            }
            let above = phys.row + d;
            if above < self.geometry.rows_per_bank {
                rows.push(RowAddr {
                    bank: phys.bank,
                    row: above,
                });
            }
        }
        rows
    }
}

impl Mitigation for VictimRefresh {
    fn name(&self) -> &'static str {
        "victim-refresh"
    }

    fn translate(&mut self, row: GlobalRowId, _now: Time) -> Translation {
        Translation::identity(
            self.geometry
                .expand(row)
                .expect("workload row ids must be within geometry"),
        )
    }

    fn on_activation_into(
        &mut self,
        phys: RowAddr,
        _now: Time,
        actions: &mut Vec<MitigationAction>,
    ) {
        if !self.tracker.on_activation(phys).mitigate() {
            return;
        }
        self.stats.mitigations_triggered += 1;
        let victims = self.victims_of(phys);
        self.stats.victim_refreshes += victims.len() as u64;
        self.refresh_counter.add(victims.len() as u64);
        actions.push(MitigationAction::RefreshRows(victims));
    }

    fn end_epoch(&mut self) {
        self.tracker.end_epoch();
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.refresh_counter = telemetry.counter("victim_refresh.rows_refreshed");
    }

    fn mitigation_stats(&self) -> MitigationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn engine(radius: u32) -> VictimRefresh {
        let mut cfg = VictimRefreshConfig::for_rowhammer_threshold(20);
        cfg.tracker_entries_per_bank = 32;
        VictimRefresh::new(cfg.with_blast_radius(radius), DramGeometry::tiny())
    }

    fn addr(row: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(0),
            row,
        }
    }

    #[test]
    fn refreshes_both_neighbours_at_threshold() {
        let mut e = engine(1);
        let mut actions = Vec::new();
        for _ in 0..10 {
            actions.extend(e.on_activation(addr(100), Time::ZERO));
        }
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            MitigationAction::RefreshRows(rows) => {
                assert_eq!(rows.as_slice(), &[addr(99), addr(101)]);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(e.mitigation_stats().victim_refreshes, 2);
    }

    #[test]
    fn blast_radius_two_covers_four_rows() {
        let e = engine(2);
        let v = e.victims_of(addr(100));
        assert_eq!(v.len(), 4);
        assert!(v.contains(&addr(98)) && v.contains(&addr(102)));
    }

    #[test]
    fn edge_rows_clip_victims() {
        let e = engine(1);
        assert_eq!(e.victims_of(addr(0)), vec![addr(1)]);
        let last = DramGeometry::tiny().rows_per_bank - 1;
        assert_eq!(e.victims_of(addr(last)), vec![addr(last - 1)]);
    }

    #[test]
    fn translation_is_identity() {
        let mut e = engine(1);
        let g = DramGeometry::tiny();
        let t = e.translate(GlobalRowId::new(77), Time::ZERO);
        assert_eq!(g.flatten(t.phys).unwrap(), GlobalRowId::new(77));
    }
}
