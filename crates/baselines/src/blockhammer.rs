//! Blockhammer-style activation rate limiting.

use aqua_dram::mitigation::{Mitigation, MitigationAction, MitigationStats, Translation};
use aqua_dram::{DramGeometry, Duration, GlobalRowId, RowAddr, Time};
use aqua_fastmap::FxHashMap;
use aqua_telemetry::{EventKind, Telemetry};
use serde::{Deserialize, Serialize};

/// Blockhammer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockhammerConfig {
    /// A row is blacklisted once it reaches this many activations in the
    /// current window (the paper's comparison uses 256).
    pub blacklist_threshold: u64,
    /// Total activations a row may receive per refresh window (`T_RH / 2`).
    pub quota: u64,
    /// The refresh window over which the quota applies.
    pub window: Duration,
}

impl BlockhammerConfig {
    /// The section VII-B comparison point: blacklist at 256, quota
    /// `t_rh / 2` per 64 ms window.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh < 2`.
    pub fn for_rowhammer_threshold(t_rh: u64) -> Self {
        assert!(t_rh >= 2, "Rowhammer threshold must be at least 2");
        BlockhammerConfig {
            blacklist_threshold: 256.min(t_rh / 2),
            quota: t_rh / 2,
            window: Duration::from_ms(64),
        }
    }

    /// The minimum spacing between activations of a blacklisted row that
    /// keeps it within quota: `window / quota`.
    pub fn throttle_interval(&self) -> Duration {
        self.window / self.quota
    }
}

/// Blockhammer-style mitigation: identity translation plus per-row
/// activation throttling (an idealized exact tracker, as in the paper's
/// comparison).
///
/// Secure by construction — a row physically cannot exceed its quota — but
/// the delay injected on blacklisted rows reaches `window / quota` per
/// activation, a worst-case slowdown of ~1280x at `T_RH` = 1K for a
/// row-conflict pattern (section VII-B).
#[derive(Debug)]
pub struct Blockhammer {
    config: BlockhammerConfig,
    geometry: DramGeometry,
    counts: FxHashMap<RowAddr, u64>,
    /// Earliest time each blacklisted row's next activation may take effect.
    /// Cumulative scheduling: each activation books the next slot, so the
    /// quota holds even when several requests are in flight concurrently.
    next_allowed: FxHashMap<RowAddr, Time>,
    stats: MitigationStats,
    telemetry: Telemetry,
}

impl Blockhammer {
    /// Creates the engine for a module geometry.
    pub fn new(config: BlockhammerConfig, geometry: DramGeometry) -> Self {
        Blockhammer {
            config,
            geometry,
            counts: FxHashMap::default(),
            next_allowed: FxHashMap::default(),
            stats: MitigationStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BlockhammerConfig {
        &self.config
    }

    /// Current activation count of `row` in this window.
    pub fn count(&self, row: RowAddr) -> u64 {
        self.counts.get(&row).copied().unwrap_or(0)
    }
}

impl Mitigation for Blockhammer {
    fn name(&self) -> &'static str {
        "blockhammer"
    }

    fn translate(&mut self, row: GlobalRowId, _now: Time) -> Translation {
        Translation::identity(
            self.geometry
                .expand(row)
                .expect("workload row ids must be within geometry"),
        )
    }

    fn on_activation_into(
        &mut self,
        phys: RowAddr,
        now: Time,
        actions: &mut Vec<MitigationAction>,
    ) {
        let count = self.counts.entry(phys).or_insert(0);
        *count += 1;
        let count = *count;
        if count <= self.config.blacklist_threshold {
            return;
        }
        // Blacklisted: book the next allowed slot on the row's schedule.
        let interval = self.config.throttle_interval();
        let slot = self.next_allowed.entry(phys).or_insert(now);
        let delay = slot.saturating_since(now);
        *slot = (*slot).max(now) + interval;
        if delay > Duration::ZERO {
            self.stats.throttled += 1;
            self.stats.mitigations_triggered += 1;
            self.telemetry.record(
                now.as_ps(),
                EventKind::ThrottleStall {
                    row: self
                        .geometry
                        .flatten(phys)
                        .map(|g| g.index())
                        .unwrap_or(u64::MAX),
                    delay_ps: delay.as_ps(),
                },
            );
            actions.push(MitigationAction::Throttle { delay });
        }
    }

    fn end_epoch(&mut self) {
        self.counts.clear();
        self.next_allowed.clear();
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn mitigation_stats(&self) -> MitigationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn addr(row: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(0),
            row,
        }
    }

    fn engine(t_rh: u64) -> Blockhammer {
        Blockhammer::new(
            BlockhammerConfig::for_rowhammer_threshold(t_rh),
            DramGeometry::tiny(),
        )
    }

    #[test]
    fn below_blacklist_runs_free() {
        let mut e = engine(1000);
        let mut now = Time::ZERO;
        for _ in 0..256 {
            assert!(e.on_activation(addr(1), now).is_empty());
            now += Duration::from_ns(45);
        }
        assert_eq!(e.mitigation_stats().throttled, 0);
    }

    #[test]
    fn blacklisted_row_is_throttled() {
        let mut e = engine(1000);
        let mut now = Time::ZERO;
        for _ in 0..257 {
            e.on_activation(addr(1), now);
            now += Duration::from_ns(45);
        }
        let actions = e.on_activation(addr(1), now);
        match actions.as_slice() {
            [MitigationAction::Throttle { delay }] => {
                // Delay approaches window / quota = 64 ms / 500 = 128 us.
                assert!(delay.as_us_f64() > 100.0, "delay = {delay}");
            }
            other => panic!("expected throttle, got {other:?}"),
        }
    }

    #[test]
    fn worst_case_slowdown_is_1280x() {
        // Section VII-B: a two-row conflict pattern takes ~100 ns per round
        // unthrottled, but only quota rounds fit in the window.
        let cfg = BlockhammerConfig::for_rowhammer_threshold(1000);
        let unthrottled_round = Duration::from_ns(100);
        let rounds_possible = cfg.window.div_duration(unthrottled_round); // 640K
        let rounds_allowed = cfg.quota; // 500
        let slowdown = rounds_possible as f64 / rounds_allowed as f64;
        assert!((1275.0..=1285.0).contains(&slowdown), "slowdown {slowdown}");
        // The per-activation throttle interval implies the same bound.
        assert_eq!(cfg.throttle_interval().as_us_f64(), 128.0);
    }

    #[test]
    fn quota_is_enforced_within_window() {
        // Even a maximally aggressive pattern cannot exceed quota effective
        // activations within the window.
        let cfg = BlockhammerConfig {
            blacklist_threshold: 4,
            quota: 8,
            window: Duration::from_us(100),
        };
        let mut e = Blockhammer::new(cfg, DramGeometry::tiny());
        let mut now = Time::ZERO;
        let mut effective_acts_in_window = 0u64;
        while now < Time::ZERO + cfg.window {
            let actions = e.on_activation(addr(1), now);
            let delay = actions
                .iter()
                .map(|a| match a {
                    MitigationAction::Throttle { delay } => *delay,
                    _ => Duration::ZERO,
                })
                .max()
                .unwrap_or(Duration::ZERO);
            now = now + delay + Duration::from_ns(45);
            if now < Time::ZERO + cfg.window {
                effective_acts_in_window += 1;
            }
        }
        assert!(
            effective_acts_in_window <= cfg.quota + cfg.blacklist_threshold,
            "{effective_acts_in_window} activations exceeded the quota"
        );
    }

    #[test]
    fn window_reset_clears_blacklist() {
        let mut e = engine(1000);
        let mut now = Time::ZERO;
        for _ in 0..300 {
            e.on_activation(addr(1), now);
            now += Duration::from_ns(45);
        }
        e.end_epoch();
        assert_eq!(e.count(addr(1)), 0);
        assert!(e.on_activation(addr(1), now).is_empty());
    }
}
