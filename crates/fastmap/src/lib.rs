//! Deterministic fast hashing for the simulator's hot paths.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds SipHash from
//! process-local entropy, which costs two things the simulator cares about:
//!
//! - **Speed.** SipHash-1-3 is a keyed cryptographic PRF; on the per-access
//!   hot loop (tracker row counters, mapped-table lookups) its full
//!   permutation rounds dominate the probe itself for 4-8 byte keys.
//! - **Determinism.** The random seed makes *iteration order* differ from
//!   process to process, so any code that observes iteration order (bloom
//!   rebuilds, eviction tie-breaks, debug dumps) silently becomes
//!   nondeterministic across runs even with identical inputs.
//!
//! [`FxHasher`] is a hand-rolled reimplementation of the Firefox/rustc
//! "FxHash" multiply-rotate scheme: one rotate, one xor, and one multiply by
//! a Fibonacci-style constant per 8-byte word, with no per-instance state.
//! Two processes hashing the same keys always agree, so [`FxHashMap`] /
//! [`FxHashSet`] iterate identically for identical insertion histories.
//!
//! HashDoS resistance is deliberately traded away: every key hashed here is
//! a simulator-internal row id or slot index, never attacker-controlled
//! input from outside the process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Multiplier from the FxHash scheme: `2^64 / phi`, an odd constant whose
/// high bits diffuse well under wrapping multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Bits to rotate between words, spreading consecutive small keys across
/// the table's index bits.
const ROTATE: u32 = 5;

/// The deterministic multiply-rotate hasher.
///
/// Implements the classic FxHash mixing step
/// `hash = (hash <<< 5 ^ word) * SEED` over the input words. It is *not*
/// collision-resistant against adversarial keys — use it only for trusted,
/// simulator-internal keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Creates a hasher with the (fixed, seedless) initial state.
    pub const fn new() -> Self {
        FxHasher { hash: 0 }
    }

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the byte count in so "ab" and "ab\0" hash differently.
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Stateless [`BuildHasher`] producing [`FxHasher`]s.
///
/// Unlike `RandomState` there is no per-instance seed: every build site in
/// every process yields the same hash function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::new()
    }
}

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Creates an empty [`FxHashMap`] (const-friendly alternative to
/// `FxHashMap::default()` at call sites that want the intent spelled out).
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Creates an empty [`FxHashSet`].
pub fn fx_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::new();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn identical_inputs_hash_identically() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"aggressor row"), hash_of(&"aggressor row"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn known_vector_pins_the_algorithm() {
        // The exact FxHash mixing step for one u64 word from state zero:
        // (0 <<< 5 ^ w) * SEED = w * SEED. A change to the scheme (seed,
        // rotation, byte order) breaks this vector and must be deliberate,
        // because it silently re-orders every map in the simulator.
        assert_eq!(hash_of(&1u64), SEED);
        assert_eq!(hash_of(&2u64), SEED.wrapping_mul(2));
    }

    #[test]
    fn byte_stream_matches_word_boundary_behaviour() {
        let mut a = FxHasher::new();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::new();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn trailing_bytes_are_length_disambiguated() {
        let mut a = FxHasher::new();
        a.write(b"ab");
        let mut b = FxHasher::new();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn maps_with_identical_histories_iterate_identically() {
        let build = |keys: &[u64]| -> Vec<(u64, u64)> {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for &k in keys {
                m.insert(k, k * 10);
            }
            m.iter().map(|(&k, &v)| (k, v)).collect()
        };
        let keys: Vec<u64> = (0..500).map(|i| i * 37 % 1009).collect();
        assert_eq!(build(&keys), build(&keys));
    }

    #[test]
    fn set_membership_round_trips() {
        let mut s: FxHashSet<u32> = fx_set();
        for i in 0..100u32 {
            s.insert(i * 3);
        }
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
        assert!(s.remove(&99));
        assert!(!s.contains(&99));
        assert_eq!(s.len(), 99);
    }

    #[test]
    fn fx_map_helper_infers_types() {
        let mut m = fx_map::<u64, &str>();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
    }
}
