//! Property tests: the fast-hash containers must agree with
//! `std::collections` reference behaviour for any operation interleaving.

use aqua_fastmap::{FxHashMap, FxHashSet};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Insert/remove interleavings leave the FxHashMap with exactly the
    /// reference map's contents, length, and per-key values.
    #[test]
    fn map_matches_reference(ops in prop::collection::vec((0u64..200, any::<bool>()), 1..300)) {
        let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for (key, insert) in ops {
            if insert {
                prop_assert_eq!(fx.insert(key, key * 7), reference.insert(key, key * 7));
            } else {
                prop_assert_eq!(fx.remove(&key), reference.remove(&key));
            }
            prop_assert_eq!(fx.len(), reference.len());
        }
        for (k, v) in &reference {
            prop_assert_eq!(fx.get(k), Some(v));
        }
        for (k, v) in &fx {
            prop_assert_eq!(reference.get(k), Some(v));
        }
    }

    /// Counting through an FxHashMap entry API matches a reference counter.
    #[test]
    fn occurrence_counts_match_reference(rows in prop::collection::vec(0u32..64, 1..500)) {
        let mut fx: FxHashMap<u32, u64> = FxHashMap::default();
        let mut reference: HashMap<u32, u64> = HashMap::new();
        for r in &rows {
            *fx.entry(*r).or_insert(0) += 1;
            *reference.entry(*r).or_insert(0) += 1;
        }
        prop_assert_eq!(fx.len(), reference.len());
        let total_fx: u64 = fx.values().sum();
        let total_ref: u64 = reference.values().sum();
        prop_assert_eq!(total_fx, total_ref);
        for (k, v) in &reference {
            prop_assert_eq!(fx.get(k), Some(v));
        }
    }

    /// Set membership after arbitrary insert/remove matches the reference.
    #[test]
    fn set_matches_reference(ops in prop::collection::vec((0u64..200, any::<bool>()), 1..300)) {
        let mut fx: FxHashSet<u64> = FxHashSet::default();
        let mut reference: HashSet<u64> = HashSet::new();
        for (key, insert) in ops {
            if insert {
                prop_assert_eq!(fx.insert(key), reference.insert(key));
            } else {
                prop_assert_eq!(fx.remove(&key), reference.remove(&key));
            }
            prop_assert_eq!(fx.len(), reference.len());
        }
        for k in &reference {
            prop_assert!(fx.contains(k));
        }
    }

    /// Two maps fed the same history iterate in the same order — the
    /// determinism property the RandomState default does not provide.
    #[test]
    fn iteration_order_is_reproducible(keys in prop::collection::vec(0u64..10_000, 1..200)) {
        let build = |ks: &[u64]| -> Vec<u64> {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for &k in ks {
                m.insert(k, k);
            }
            m.keys().copied().collect()
        };
        prop_assert_eq!(build(&keys), build(&keys));
    }
}
