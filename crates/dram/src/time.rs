//! Integer time types with picosecond resolution.
//!
//! DDR4 timing parameters include fractional nanoseconds (`tRCD` = 14.2 ns in
//! the paper's Table I), so the crate represents all times as integer
//! picoseconds. A `u64` picosecond counter wraps after ~213 days of simulated
//! time, far beyond any simulation in this repository.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp, in picoseconds since simulation start.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Time(u64);

/// A span of simulated time, in picoseconds.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Time {
    /// The simulation epoch origin (t = 0).
    pub const ZERO: Time = Time(0);

    /// Creates a timestamp from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a timestamp from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a timestamp from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000_000)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * 1_000)
    }

    /// Creates a duration from tenths of a nanosecond (100 ps units).
    ///
    /// DDR4 datasheets quote parameters such as `tRCD` = 14.2 ns; this
    /// constructor keeps them exact: `Duration::from_ns_tenths(142)`.
    pub const fn from_ns_tenths(tenths: u64) -> Self {
        Duration(tenths * 100)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000_000)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in (truncated) nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// How many whole times `other` fits into `self`.
    pub const fn div_duration(self, other: Duration) -> u64 {
        self.0 / other.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by an integer factor, checking for overflow.
    ///
    /// # Panics
    ///
    /// Panics on overflow (which would indicate a mis-scaled simulation).
    pub fn checked_scale(self, factor: u64) -> Duration {
        Duration(
            self.0
                .checked_mul(factor)
                .expect("duration arithmetic overflow"),
        )
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} us", self.0 as f64 / 1e6)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us_f64())
        } else {
            write!(f, "{:.3} ns", self.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_ns(1).as_ps(), 1_000);
        assert_eq!(Time::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Time::from_ms(64).as_ps(), 64_000_000_000);
        assert_eq!(Duration::from_ns_tenths(142).as_ps(), 14_200);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_ns(100) + Duration::from_ns(50);
        assert_eq!(t.as_ns(), 150);
        assert_eq!((t - Time::from_ns(100)).as_ns(), 50);
        assert_eq!(t.max(Time::from_ns(200)).as_ns(), 200);
        assert_eq!(t.min(Time::from_ns(200)).as_ns(), 150);
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_ns(45) * 500;
        assert_eq!(d.as_us_f64(), 22.5);
        assert_eq!(d / 500, Duration::from_ns(45));
        assert_eq!(
            Duration::from_ms(64).div_duration(Duration::from_ns(45)),
            1_422_222
        );
    }

    #[test]
    fn saturating_behaviour() {
        let early = Time::from_ns(5);
        let late = Time::from_ns(10);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_ns(5));
        assert_eq!(
            Duration::from_ns(3).saturating_sub(Duration::from_ns(9)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_units_scale() {
        assert_eq!(format!("{}", Duration::from_ns(5)), "5.000 ns");
        assert_eq!(format!("{}", Duration::from_us(5)), "5.000 us");
        assert_eq!(format!("{}", Duration::from_ms(5)), "5.000 ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (0..4).map(|_| Duration::from_ns(10)).sum();
        assert_eq!(total, Duration::from_ns(40));
    }
}
