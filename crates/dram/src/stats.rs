//! Command-count statistics used by the power model and experiment reports.

use serde::{Deserialize, Serialize};

aqua_telemetry::stat_struct! {
    /// Counts of DRAM commands issued, per bank or aggregated module-wide.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct CommandStats {
        /// Row activations (ACT commands).
        pub activations: u64,
        /// Column reads (includes writes for this model's purposes).
        pub reads: u64,
        /// Precharge commands.
        pub precharges: u64,
        /// Periodic refresh commands applied to this bank.
        pub refreshes: u64,
        /// Mitigative victim-refresh row activations.
        pub victim_refreshes: u64,
        /// Whole-row streaming transfers (row-migration halves).
        pub streamed_rows: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_sums_fields() {
        let a = CommandStats {
            activations: 1,
            reads: 2,
            precharges: 3,
            refreshes: 4,
            victim_refreshes: 5,
            streamed_rows: 6,
        };
        let total = CommandStats::aggregate([&a, &a]);
        assert_eq!(total.activations, 2);
        assert_eq!(total.reads, 4);
        assert_eq!(total.streamed_rows, 12);
    }
}
