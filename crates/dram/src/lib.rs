//! Bank-level DDR4 DRAM timing model.
//!
//! This crate is the memory-device substrate for the AQUA Rowhammer-mitigation
//! reproduction. It models the parts of a DDR4 memory system that matter for
//! row-migration mitigation studies:
//!
//! - [`DramGeometry`]: channels / ranks / banks / rows / row size (Table I of the
//!   paper: 16 banks x 1 rank x 1 channel, 128K rows per bank, 8 KB rows).
//! - [`DdrTiming`]: the JEDEC timing parameters (`tRC`, `tRCD`, `tCL`, `tRP`,
//!   `tREFI`, `tRFC`, `tREFW`, `tCCD`) and derived quantities such as the maximum
//!   activation budget per bank per refresh window ([`DdrTiming::act_max`]) and
//!   the row-migration latency ([`DdrTiming::row_migration_latency`]).
//! - [`Bank`]: a per-bank state machine with an open-row (row-buffer) model that
//!   reports, for each access, whether an activation happened and when the data
//!   transfer completes.
//! - [`Channel`]: shared-channel accounting, used to model the channel-blocking
//!   cost of row migrations (the dominant slowdown source in the paper).
//! - [`RefreshScheduler`]: periodic refresh windows (`tREFI`/`tRFC`) that make
//!   banks unavailable.
//!
//! Time is represented in integer picoseconds ([`Time`], [`Duration`]) so that
//! fractional-nanosecond DDR4 parameters (e.g. `tRCD` = 14.2 ns) stay exact.
//!
//! # Example
//!
//! ```
//! use aqua_dram::{BaselineConfig, Bank, Time};
//!
//! let cfg = BaselineConfig::paper_table1();
//! let mut bank = Bank::new(cfg.timing);
//! let first = bank.access(5, Time::ZERO);
//! assert!(first.activated); // empty row buffer: the access opens the row
//! let second = bank.access(5, first.data_ready);
//! assert!(!second.activated); // row-buffer hit
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod address;
mod bank;
mod channel;
mod config;
mod error;
mod geometry;
pub mod mitigation;
mod refresh;
mod stats;
mod time;
mod timing;
mod topology;

pub use address::{BankId, GlobalRowId, RowAddr};
pub use bank::{AccessResult, Bank, PagePolicy};
pub use channel::{Channel, ChannelStats};
pub use config::BaselineConfig;
pub use error::{AddressError, DramError};
pub use geometry::DramGeometry;
pub use refresh::RefreshScheduler;
pub use stats::CommandStats;
pub use time::{Duration, Time};
pub use timing::DdrTiming;
pub use topology::{DecodedRow, TopologyConfig};
