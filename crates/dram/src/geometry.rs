//! DRAM module geometry: channels, ranks, banks, rows.

use crate::error::AddressError;
use crate::{BankId, GlobalRowId, RowAddr};
use serde::{Deserialize, Serialize};

/// Logical organization of one DRAM channel.
///
/// The paper's baseline (Table I) is a single-channel, single-rank, 16-bank
/// 16 GB module with 128K rows per bank and 8 KB rows; see
/// [`DramGeometry::paper_table1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of ranks on the channel.
    pub ranks: u32,
    /// Number of banks per rank.
    pub banks_per_rank: u32,
    /// Number of rows in each bank.
    pub rows_per_bank: u32,
    /// Bytes per DRAM row (the unit moved by one row migration).
    pub row_bytes: u32,
    /// Bytes per cache-line data burst.
    pub line_bytes: u32,
}

impl DramGeometry {
    /// Geometry of the paper's Table I baseline: 1 rank x 16 banks x 128K rows
    /// of 8 KB each (16 GB total).
    pub const fn paper_table1() -> Self {
        DramGeometry {
            ranks: 1,
            banks_per_rank: 16,
            rows_per_bank: 128 * 1024,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        }
    }

    /// A small geometry for fast unit tests: 1 rank x 4 banks x 1024 rows.
    pub const fn tiny() -> Self {
        DramGeometry {
            ranks: 1,
            banks_per_rank: 4,
            rows_per_bank: 1024,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        }
    }

    /// Total banks across all ranks.
    pub const fn total_banks(&self) -> u32 {
        self.ranks * self.banks_per_rank
    }

    /// Total rows across the module.
    pub const fn total_rows(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank as u64
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        self.total_rows() * self.row_bytes as u64
    }

    /// Cache lines per row (burst transfers needed to stream one row).
    pub const fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.line_bytes
    }

    /// Flattens a `(bank, row)` address into a module-wide row id.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] if the bank or row index exceeds the geometry.
    pub fn flatten(&self, addr: RowAddr) -> Result<GlobalRowId, AddressError> {
        if addr.bank.index() >= self.total_banks() {
            return Err(AddressError::BankOutOfRange {
                bank: addr.bank.index(),
                banks: self.total_banks(),
            });
        }
        if addr.row >= self.rows_per_bank {
            return Err(AddressError::RowOutOfRange {
                row: addr.row,
                rows: self.rows_per_bank,
            });
        }
        Ok(GlobalRowId::new(
            addr.bank.index() as u64 * self.rows_per_bank as u64 + addr.row as u64,
        ))
    }

    /// Expands a module-wide row id into a `(bank, row)` address.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] if the id exceeds the module's row count.
    pub fn expand(&self, id: GlobalRowId) -> Result<RowAddr, AddressError> {
        if id.index() >= self.total_rows() {
            return Err(AddressError::GlobalRowOutOfRange {
                id: id.index(),
                rows: self.total_rows(),
            });
        }
        Ok(RowAddr {
            bank: BankId::new((id.index() / self.rows_per_bank as u64) as u32),
            row: (id.index() % self.rows_per_bank as u64) as u32,
        })
    }

    /// Iterates over all bank ids in the module.
    pub fn banks(&self) -> impl Iterator<Item = BankId> {
        (0..self.total_banks()).map(BankId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_is_16gb() {
        let g = DramGeometry::paper_table1();
        assert_eq!(g.total_banks(), 16);
        assert_eq!(g.total_rows(), 2 * 1024 * 1024);
        assert_eq!(g.capacity_bytes(), 16 * 1024 * 1024 * 1024);
        assert_eq!(g.lines_per_row(), 128);
    }

    #[test]
    fn flatten_expand_roundtrip() {
        let g = DramGeometry::paper_table1();
        let addr = RowAddr {
            bank: BankId::new(7),
            row: 12345,
        };
        let id = g.flatten(addr).unwrap();
        assert_eq!(g.expand(id).unwrap(), addr);
    }

    #[test]
    fn flatten_rejects_out_of_range() {
        let g = DramGeometry::tiny();
        assert!(g
            .flatten(RowAddr {
                bank: BankId::new(4),
                row: 0
            })
            .is_err());
        assert!(g
            .flatten(RowAddr {
                bank: BankId::new(0),
                row: 1024
            })
            .is_err());
        assert!(g.expand(GlobalRowId::new(4 * 1024)).is_err());
    }

    #[test]
    fn flatten_is_bank_major() {
        let g = DramGeometry::tiny();
        let id0 = g
            .flatten(RowAddr {
                bank: BankId::new(0),
                row: 1023,
            })
            .unwrap();
        let id1 = g
            .flatten(RowAddr {
                bank: BankId::new(1),
                row: 0,
            })
            .unwrap();
        assert_eq!(id0.index() + 1, id1.index());
    }

    #[test]
    fn banks_iterator_counts() {
        let g = DramGeometry::tiny();
        assert_eq!(g.banks().count(), 4);
    }
}
