//! Shared-channel accounting.
//!
//! Two distinct resources are modelled:
//!
//! - the **data bus**: every 64-byte burst occupies it for one slot
//!   (`tCCD_S` = 3.3 ns at DDR4-2400); bursts from different banks pipeline
//!   behind each other but do not block bank-internal work;
//! - **exclusive blocking**: a row migration streams a whole row through the
//!   controller's copy-buffer and makes the channel unavailable for anything
//!   else until it completes (paper section IV-G) — this is the dominant
//!   slowdown source for both AQUA and RRS.

use crate::{Duration, Time};
use serde::{Deserialize, Serialize};

/// Cumulative channel-occupancy accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Bus time from ordinary data bursts.
    pub data_busy: Duration,
    /// Exclusive-blocking time from row migrations.
    pub migration_busy: Duration,
    /// Bus time from extra table accesses (memory-mapped FPT/RPT).
    pub table_busy: Duration,
    /// Number of exclusive migration reservations.
    pub migrations: u64,
}

/// The shared command/data channel of one memory channel.
#[derive(Debug, Clone)]
pub struct Channel {
    /// End of the current exclusive (migration) reservation.
    blocked_until: Time,
    /// When the data bus frees up.
    bus_free_at: Time,
    stats: ChannelStats,
}

impl Channel {
    /// Creates an idle channel.
    pub fn new() -> Self {
        Channel {
            blocked_until: Time::ZERO,
            bus_free_at: Time::ZERO,
            stats: ChannelStats::default(),
        }
    }

    /// Earliest time a new bank access may start (end of any exclusive
    /// migration in progress). Ordinary bursts do **not** move this.
    pub fn blocked_until(&self) -> Time {
        self.blocked_until
    }

    /// When the data bus next frees up.
    pub fn bus_free_at(&self) -> Time {
        self.bus_free_at
    }

    /// Occupancy statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Schedules one data burst whose data is ready at `ready`; returns the
    /// burst's start time (bursts pipeline behind each other on the bus).
    pub fn reserve_burst(&mut self, ready: Time, burst: Duration) -> Time {
        let start = ready.max(self.bus_free_at).max(self.blocked_until);
        self.bus_free_at = start + burst;
        self.stats.data_busy += burst;
        start
    }

    /// Reserves the channel exclusively for a row migration of length `dur`
    /// starting at or after `now`; returns the migration start time.
    pub fn reserve_migration(&mut self, now: Time, dur: Duration) -> Time {
        let start = now.max(self.bus_free_at).max(self.blocked_until);
        self.blocked_until = start + dur;
        self.bus_free_at = start + dur;
        self.stats.migration_busy += dur;
        self.stats.migrations += 1;
        start
    }

    /// Schedules a bus slot for an extra in-DRAM table access (memory-mapped
    /// FPT / RPT reads and writes); returns the slot start.
    pub fn reserve_table_access(&mut self, ready: Time, dur: Duration) -> Time {
        let start = ready.max(self.bus_free_at).max(self.blocked_until);
        self.bus_free_at = start + dur;
        self.stats.table_busy += dur;
        start
    }
}

impl Default for Channel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_pipeline_on_the_bus() {
        let mut ch = Channel::new();
        let burst = Duration::from_ns_tenths(33);
        let s1 = ch.reserve_burst(Time::ZERO, burst);
        let s2 = ch.reserve_burst(Time::ZERO, burst);
        assert_eq!(s1, Time::ZERO);
        assert_eq!(s2, Time::ZERO + burst);
        assert_eq!(ch.stats().data_busy, burst * 2);
        // Bursts never block bank-access starts.
        assert_eq!(ch.blocked_until(), Time::ZERO);
    }

    #[test]
    fn migration_blocks_subsequent_traffic() {
        let mut ch = Channel::new();
        let mig = Duration::from_ns(1370);
        ch.reserve_migration(Time::ZERO, mig);
        assert_eq!(ch.blocked_until(), Time::ZERO + mig);
        let s = ch.reserve_burst(Time::ZERO, Duration::from_ns(5));
        assert_eq!(s, Time::ZERO + mig);
        assert_eq!(ch.stats().migrations, 1);
        assert_eq!(ch.stats().migration_busy, mig);
    }

    #[test]
    fn migration_waits_for_bus_drain() {
        let mut ch = Channel::new();
        ch.reserve_burst(Time::ZERO, Duration::from_ns(5));
        let start = ch.reserve_migration(Time::ZERO, Duration::from_ns(1370));
        assert_eq!(start, Time::from_ns(5));
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut ch = Channel::new();
        ch.reserve_burst(Time::from_us(100), Duration::from_ns(5));
        assert_eq!(ch.stats().data_busy, Duration::from_ns(5));
        assert_eq!(ch.bus_free_at(), Time::from_us(100) + Duration::from_ns(5));
    }

    #[test]
    fn table_access_is_tracked_separately() {
        let mut ch = Channel::new();
        ch.reserve_table_access(Time::ZERO, Duration::from_ns(50));
        assert_eq!(ch.stats().table_busy, Duration::from_ns(50));
        assert_eq!(ch.stats().data_busy, Duration::ZERO);
    }

    #[test]
    fn back_to_back_migrations_serialize() {
        let mut ch = Channel::new();
        let mig = Duration::from_ns(1370);
        let s1 = ch.reserve_migration(Time::ZERO, mig);
        let s2 = ch.reserve_migration(Time::ZERO, mig);
        assert_eq!(s1, Time::ZERO);
        assert_eq!(s2, Time::ZERO + mig);
    }
}
