//! Per-bank row-buffer state machine.

use crate::stats::CommandStats;
use crate::{DdrTiming, Duration, Time};
use serde::{Deserialize, Serialize};

/// Row-buffer management policy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep the row open after an access (the paper's baseline): subsequent
    /// accesses to the same row are fast row-buffer hits.
    #[default]
    Open,
    /// Precharge immediately after every access: every access activates.
    /// Raises activation counts — and therefore Rowhammer pressure — at the
    /// cost of losing row-buffer hits.
    Closed,
}

/// Outcome of one bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access caused a row activation (row-buffer miss or empty).
    pub activated: bool,
    /// When the requested data burst completes.
    pub data_ready: Time,
    /// Total service latency from the request time.
    pub latency: Duration,
}

/// One DRAM bank with an open-page row-buffer policy.
///
/// The bank tracks the currently open row and the earliest time the next
/// activation may issue (`tRC` window). Accesses to the open row are
/// row-buffer hits; anything else precharges and activates, which is what the
/// Rowhammer trackers count.
///
/// # Example
///
/// ```
/// use aqua_dram::{Bank, DdrTiming, Time};
///
/// let mut bank = Bank::new(DdrTiming::ddr4_2400());
/// let r = bank.access(42, Time::ZERO);
/// assert!(r.activated);
/// assert_eq!(bank.open_row(), Some(42));
/// ```
#[derive(Debug, Clone)]
pub struct Bank {
    timing: DdrTiming,
    policy: PagePolicy,
    open_row: Option<u32>,
    /// Earliest time the next ACT may issue (enforces tRC).
    next_act_at: Time,
    /// Earliest time the bank is usable at all (refresh blocking).
    blocked_until: Time,
    stats: CommandStats,
}

impl Bank {
    /// Creates an idle bank (all rows closed) with the open-page policy.
    pub fn new(timing: DdrTiming) -> Self {
        Self::with_policy(timing, PagePolicy::Open)
    }

    /// Creates an idle bank with an explicit row-buffer policy.
    pub fn with_policy(timing: DdrTiming, policy: PagePolicy) -> Self {
        Bank {
            timing,
            policy,
            open_row: None,
            next_act_at: Time::ZERO,
            blocked_until: Time::ZERO,
            stats: CommandStats::default(),
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Command counts issued by this bank so far.
    pub fn stats(&self) -> &CommandStats {
        &self.stats
    }

    /// Blocks the bank until `until` (used by the refresh scheduler).
    ///
    /// A refresh closes the row buffer.
    pub fn block_until(&mut self, until: Time) {
        self.blocked_until = self.blocked_until.max(until);
        self.next_act_at = self.next_act_at.max(until);
        self.open_row = None;
        self.stats.refreshes += 1;
    }

    /// Services one access to `row` arriving at `now`; returns when data is
    /// ready and whether an activation occurred.
    pub fn access(&mut self, row: u32, now: Time) -> AccessResult {
        let start = now.max(self.blocked_until);
        if self.open_row == Some(row) {
            let ready = start + self.timing.hit_latency();
            self.stats.reads += 1;
            return AccessResult {
                activated: false,
                data_ready: ready,
                latency: ready.saturating_since(now),
            };
        }
        // Row-buffer miss (or empty): precharge if needed, then activate.
        let mut t = start;
        if self.open_row.is_some() {
            t += self.timing.t_rp;
            self.stats.precharges += 1;
        }
        // Honour the tRC window between consecutive activations.
        t = t.max(self.next_act_at);
        self.next_act_at = t + self.timing.t_rc;
        self.open_row = match self.policy {
            PagePolicy::Open => Some(row),
            PagePolicy::Closed => None, // auto-precharge after the access
        };
        self.stats.activations += 1;
        self.stats.reads += 1;
        let ready = t + self.timing.t_rcd + self.timing.t_cl + self.timing.t_ccd_s;
        AccessResult {
            activated: true,
            data_ready: ready,
            latency: ready.saturating_since(now),
        }
    }

    /// Performs a whole-row streaming transfer (for row migration): activates
    /// `row` and streams every line. Returns the transfer completion time.
    ///
    /// Section IV-D: ~685 ns per direction for an 8 KB row.
    pub fn stream_row(&mut self, row: u32, now: Time, lines: u32) -> Time {
        let start = now.max(self.blocked_until).max(self.next_act_at);
        self.next_act_at = start + self.timing.t_rc;
        self.open_row = Some(row);
        self.stats.activations += 1;
        self.stats.streamed_rows += 1;
        start + self.timing.t_rc + self.timing.t_ccd_l * lines as u64
    }

    /// Explicitly refresh-activates `row` (victim refresh). Counts as an
    /// activation for disturbance purposes, which is exactly the mechanism the
    /// Half-Double attack exploits.
    pub fn refresh_row(&mut self, _row: u32, now: Time) -> Time {
        let start = now.max(self.blocked_until).max(self.next_act_at);
        self.next_act_at = start + self.timing.t_rc;
        self.open_row = None; // refresh closes the bank
        self.stats.victim_refreshes += 1;
        start + self.timing.t_rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Bank {
        Bank::new(DdrTiming::ddr4_2400())
    }

    #[test]
    fn first_access_activates() {
        let mut b = bank();
        let r = b.access(1, Time::ZERO);
        assert!(r.activated);
        assert_eq!(b.stats().activations, 1);
    }

    #[test]
    fn same_row_hits() {
        let mut b = bank();
        let r1 = b.access(1, Time::ZERO);
        let r2 = b.access(1, r1.data_ready);
        assert!(!r2.activated);
        assert_eq!(r2.latency, DdrTiming::ddr4_2400().hit_latency());
        assert_eq!(b.stats().activations, 1);
        assert_eq!(b.stats().reads, 2);
    }

    #[test]
    fn conflict_precharges_and_activates() {
        let mut b = bank();
        let r1 = b.access(1, Time::ZERO);
        let r2 = b.access(2, r1.data_ready);
        assert!(r2.activated);
        assert_eq!(b.stats().precharges, 1);
        assert_eq!(b.stats().activations, 2);
    }

    #[test]
    fn trc_limits_activation_rate() {
        let mut b = bank();
        // Ping-pong between two rows as fast as possible.
        let mut now = Time::ZERO;
        for i in 0..10u32 {
            let r = b.access(i % 2, now);
            now = r.data_ready;
        }
        // 10 activations need at least 9 * tRC of elapsed time.
        assert!(now >= Time::ZERO + Duration::from_ns(45) * 9);
        assert_eq!(b.stats().activations, 10);
    }

    #[test]
    fn refresh_blocks_and_closes() {
        let mut b = bank();
        b.access(1, Time::ZERO);
        b.block_until(Time::from_ns(1000));
        assert_eq!(b.open_row(), None);
        let r = b.access(1, Time::from_ns(500));
        assert!(r.activated);
        assert!(r.data_ready > Time::from_ns(1000));
    }

    #[test]
    fn stream_row_takes_transfer_time() {
        let mut b = bank();
        let done = b.stream_row(3, Time::ZERO, 128);
        // 45 ns ACT window + 128 * 5 ns streaming = 685 ns.
        assert_eq!(done, Time::from_ns(685));
        assert_eq!(b.stats().streamed_rows, 1);
    }

    #[test]
    fn closed_page_activates_every_access() {
        let mut b = Bank::with_policy(DdrTiming::ddr4_2400(), PagePolicy::Closed);
        let mut now = Time::ZERO;
        for _ in 0..5 {
            let r = b.access(1, now);
            assert!(r.activated, "closed page never hits");
            now = r.data_ready;
        }
        assert_eq!(b.stats().activations, 5);
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn refresh_row_counts_as_victim_refresh() {
        let mut b = bank();
        let done = b.refresh_row(9, Time::ZERO);
        assert_eq!(done, Time::from_ns(45));
        assert_eq!(b.stats().victim_refreshes, 1);
        assert_eq!(b.open_row(), None);
    }
}
