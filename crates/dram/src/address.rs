//! Row-address newtypes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one bank within one channel.
///
/// Ranks are flattened into the bank index: bank `b` of rank `r` has index
/// `r * banks_per_rank + b`. Use
/// [`DramGeometry::rank_of`](crate::DramGeometry::rank_of) /
/// [`DramGeometry::bank_in_rank`](crate::DramGeometry::bank_in_rank) to
/// recover the rank coordinates, and
/// [`TopologyConfig`](crate::TopologyConfig) to decode full
/// channel/rank/bank/row system addresses.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BankId(u32);

impl BankId {
    /// Creates a bank id from a flat index.
    pub const fn new(index: u32) -> Self {
        BankId(index)
    }

    /// The flat bank index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// A physical row location: a bank plus a row index within that bank.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RowAddr {
    /// The bank holding the row.
    pub bank: BankId,
    /// Row index within the bank.
    pub row: u32,
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:row{}", self.bank, self.row)
    }
}

/// A channel-wide flat row id (`bank * rows_per_bank + row`).
///
/// Mitigation schemes index their tables with this id; use
/// [`DramGeometry::flatten`](crate::DramGeometry::flatten) /
/// [`DramGeometry::expand`](crate::DramGeometry::expand) to convert. In a
/// multi-channel system each channel has its own independent id space;
/// [`TopologyConfig::split`](crate::TopologyConfig::split) routes a
/// system-wide row id to its `(channel, GlobalRowId)` pair.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct GlobalRowId(u64);

impl GlobalRowId {
    /// Creates a flat row id.
    pub const fn new(index: u64) -> Self {
        GlobalRowId(index)
    }

    /// The flat row index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for GlobalRowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grow{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", BankId::new(3)), "bank3");
        assert_eq!(
            format!(
                "{}",
                RowAddr {
                    bank: BankId::new(3),
                    row: 9
                }
            ),
            "bank3:row9"
        );
        assert_eq!(format!("{}", GlobalRowId::new(42)), "grow42");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(BankId::new(1) < BankId::new(2));
        assert!(GlobalRowId::new(1) < GlobalRowId::new(2));
    }
}
