//! Shared mitigation-interface types.
//!
//! Every Rowhammer mitigation scheme in this repository (AQUA, RRS,
//! victim-refresh, Blockhammer, and the no-op baseline) plugs into the system
//! simulator through the [`Mitigation`] trait. The trait lives here — in the
//! substrate crate all schemes already depend on — so the scheme crates do not
//! need to depend on the simulator or on each other.
//!
//! The protocol per memory request is:
//!
//! 1. The simulator calls [`Mitigation::translate`] with the *install-time*
//!    (OS-visible) row id. The scheme consults its indirection state and
//!    returns the physical row to access plus any extra lookup cost
//!    (in-DRAM table reads for AQUA's memory-mapped tables).
//! 2. The simulator performs the bank access. If it caused a row activation,
//!    it calls [`Mitigation::on_activation`] with the *physical* location
//!    (paper property P3: the tracker is indexed post-translation).
//! 3. The scheme returns zero or more [`MitigationAction`]s — channel-blocking
//!    row migrations, victim refreshes, or request throttling — which the
//!    simulator applies to the channel/bank/oracle state.
//! 4. At each 64 ms boundary the simulator calls [`Mitigation::end_epoch`].

use crate::{Duration, GlobalRowId, RowAddr, Time};
use aqua_faults::{FaultHealth, FaultKind, InjectOutcome};
use serde::{Deserialize, Serialize};

/// How degraded a scheme currently is, as a structured outcome the simulator
/// can report instead of aborting the run.
///
/// When a fault leaves a mitigation's tables unrecoverably inconsistent for
/// some bank, the engine stops relying on indirection there and falls back to
/// victim-refresh-style protection — weaker against Half-Double-class
/// attacks, but it preserves data integrity and keeps the run alive.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DegradedMode {
    /// All tables consistent; the scheme operates as designed.
    #[default]
    Normal,
    /// The listed banks (sorted global bank indices) run under the
    /// victim-refresh fallback instead of row migration.
    VictimRefresh {
        /// Degraded bank indices, ascending.
        banks: Vec<u32>,
    },
}

/// Why a channel-blocking row transfer happened (for per-kind accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationKind {
    /// AQUA: a row moved from its original location into the quarantine area.
    QuarantineInstall,
    /// AQUA: a quarantined row moved to a new slot within the quarantine area.
    QuarantineInternal,
    /// AQUA: a stale quarantined row moved back to its original location.
    QuarantineEvict,
    /// RRS: half of a swap (each swap is two migrations: two reads, two writes).
    Swap,
    /// RRS: half of an unswap (restoring a previously swapped pair).
    Unswap,
}

/// The data movement carried by a channel-blocking transfer, so the
/// simulator's shadow memory can track where every row's contents live and
/// verify that translation always resolves to the owning physical row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMovement {
    /// Timing-only reservation (its data movement is carried by a sibling
    /// action of the same mitigation).
    None,
    /// Contents of `from` move to `to` (`to` must be vacant).
    Move {
        /// Source physical row.
        from: RowAddr,
        /// Destination physical row (vacant before the move).
        to: RowAddr,
    },
    /// Contents of `a` and `b` are exchanged through the copy-buffer.
    Swap {
        /// First physical row.
        a: RowAddr,
        /// Second physical row.
        b: RowAddr,
    },
}

/// An action the mitigation scheme asks the memory controller to perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MitigationAction {
    /// Reserve the channel exclusively for a row transfer of `duration`
    /// (row migrations block all other requests; paper section IV-G).
    BlockChannel {
        /// Transfer length (1.37 us per migration at Table I parameters).
        duration: Duration,
        /// What the transfer was for.
        kind: MigrationKind,
        /// The data movement this transfer performs.
        movement: DataMovement,
    },
    /// Refresh (activate) the given physical rows — victim refresh. These
    /// count as activations for disturbance purposes, which is the mechanism
    /// the Half-Double attack exploits.
    RefreshRows(Vec<RowAddr>),
    /// Delay the triggering request by `delay` (Blockhammer-style throttling).
    Throttle {
        /// How long the request must wait before its activation may issue.
        delay: Duration,
    },
    /// Perform `count` extra in-DRAM mapping-table writes (memory-mapped FPT
    /// and RPT updates accompanying a migration).
    TableWrites {
        /// Number of table-write accesses on the channel.
        count: u32,
    },
}

/// Result of an address translation through the scheme's indirection tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical row to access.
    pub phys: RowAddr,
    /// Latency added on the critical path of this access by table lookups
    /// (SRAM lookups are a few cycles; in-DRAM FPT reads are a full access).
    pub lookup_latency: Duration,
    /// Number of extra in-DRAM table reads this lookup required (they also
    /// consume channel bandwidth).
    pub dram_table_reads: u32,
    /// The physical DRAM row holding the table entry that was read, if the
    /// lookup went to DRAM. The simulator accesses this row for real, so
    /// mapping-table rows are themselves hammerable (and protected — the
    /// PTHammer defence of section VI-B).
    pub table_row: Option<RowAddr>,
}

impl Translation {
    /// A translation that found the row at its original location with no
    /// extra cost (identity mapping).
    pub fn identity(phys: RowAddr) -> Self {
        Translation {
            phys,
            lookup_latency: Duration::ZERO,
            dram_table_reads: 0,
            table_row: None,
        }
    }
}

aqua_telemetry::stat_struct! {
    /// Per-scheme migration statistics reported to the experiment harness.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub struct MitigationStats {
        /// Total row transfers (each 1.37 us). An RRS swap counts 2; an AQUA
        /// install counts 1 (plus 1 more if it required an eviction).
        pub row_migrations: u64,
        /// Mitigations triggered by the tracker.
        pub mitigations_triggered: u64,
        /// Victim-refresh rows issued.
        pub victim_refreshes: u64,
        /// Requests throttled (Blockhammer).
        pub throttled: u64,
        /// Security violations detected (e.g. RQA slot reuse within an epoch).
        pub violations: u64,
    }
}

/// A Rowhammer mitigation scheme, as seen by the memory controller.
///
/// `Send` is a supertrait so a whole `Simulation<M>` can be handed to a
/// worker thread: the bench harness fans the scheme × workload experiment
/// matrix out across a thread pool, constructing and running one engine per
/// job. Schemes hold only owned state (tables, RNGs, telemetry handles), so
/// the bound costs implementors nothing.
pub trait Mitigation: Send {
    /// Short scheme name for reports (e.g. `"aqua-sram"`).
    fn name(&self) -> &'static str;

    /// Translates an OS-visible row id to the physical row to access.
    fn translate(&mut self, row: GlobalRowId, now: Time) -> Translation;

    /// Notifies the scheme that `phys` was activated at `now`, appending the
    /// mitigative actions to apply onto `actions`.
    ///
    /// This is the hot-path entry point: the simulator calls it once per row
    /// activation with a reused scratch buffer, so implementations must only
    /// *push* onto `actions` (never clear it) and should not allocate on the
    /// no-action path. The allocating [`on_activation`](Self::on_activation)
    /// wrapper exists for tests and one-shot callers.
    fn on_activation_into(&mut self, phys: RowAddr, now: Time, actions: &mut Vec<MitigationAction>);

    /// Allocating convenience wrapper around
    /// [`on_activation_into`](Self::on_activation_into): returns the actions
    /// as a fresh `Vec`. Prefer the `_into` form anywhere called per access.
    fn on_activation(&mut self, phys: RowAddr, now: Time) -> Vec<MitigationAction> {
        let mut actions = Vec::new();
        self.on_activation_into(phys, now, &mut actions);
        actions
    }

    /// Called at every 64 ms epoch boundary (tracker reset point).
    fn end_epoch(&mut self);

    /// Called at every refresh command (`tREFI`); schemes may piggyback
    /// background work (AQUA's optional stale-entry draining), pushing the
    /// actions to apply at the tick time `now` onto `actions`. Like
    /// [`on_activation_into`](Self::on_activation_into) this runs with a
    /// reused scratch buffer — push, don't clear.
    fn on_refresh_tick_into(&mut self, now: Time, actions: &mut Vec<MitigationAction>) {
        let _ = (now, actions);
    }

    /// Allocating convenience wrapper around
    /// [`on_refresh_tick_into`](Self::on_refresh_tick_into).
    fn on_refresh_tick(&mut self, now: Time) -> Vec<MitigationAction> {
        let mut actions = Vec::new();
        self.on_refresh_tick_into(now, &mut actions);
        actions
    }

    /// Hands the scheme a telemetry hub so it can register its counters and
    /// emit trace events. The default keeps schemes telemetry-free.
    fn attach_telemetry(&mut self, telemetry: aqua_telemetry::Telemetry) {
        let _ = telemetry;
    }

    /// Scheme-specific gauges sampled at each epoch boundary (before
    /// [`Mitigation::end_epoch`] resets per-epoch state), e.g. AQUA's RQA
    /// occupancy or its FPT-cache hit rate over the closing epoch.
    fn epoch_gauges(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    /// Physical rows the scheme reserves for itself (invisible to software
    /// and initially holding no program data), e.g. AQUA's quarantine area.
    /// The simulator's shadow memory marks them vacant at start-up.
    fn reserved_rows(&self) -> Vec<RowAddr> {
        Vec::new()
    }

    /// Cumulative mitigation statistics.
    fn mitigation_stats(&self) -> MitigationStats;

    /// Applies one injected fault to the scheme's internal state and reports
    /// what happened. Schemes without state of the given kind return
    /// [`InjectOutcome::Unsupported`]; schemes that accept the fault must
    /// keep simulating afterwards — a fault may degrade protection, but it
    /// must never panic the process.
    fn inject_fault(&mut self, fault: &FaultKind, now: Time) -> InjectOutcome {
        let _ = (fault, now);
        InjectOutcome::Unsupported
    }

    /// Cumulative fault-handling counters (injections accepted, recoveries,
    /// audit repairs, degraded bank-epochs).
    fn fault_health(&self) -> FaultHealth {
        FaultHealth::default()
    }

    /// The scheme's current degradation state.
    fn degraded_mode(&self) -> DegradedMode {
        DegradedMode::Normal
    }
}

/// The no-mitigation baseline: identity translation, no actions.
#[derive(Debug, Clone)]
pub struct NoMitigation {
    geometry: crate::DramGeometry,
}

impl NoMitigation {
    /// Creates the baseline for a given geometry.
    pub fn new(geometry: crate::DramGeometry) -> Self {
        NoMitigation { geometry }
    }
}

impl Mitigation for NoMitigation {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn translate(&mut self, row: GlobalRowId, _now: Time) -> Translation {
        Translation::identity(
            self.geometry
                .expand(row)
                .expect("workload row ids must be within geometry"),
        )
    }

    fn on_activation_into(
        &mut self,
        _phys: RowAddr,
        _now: Time,
        _actions: &mut Vec<MitigationAction>,
    ) {
    }

    fn end_epoch(&mut self) {}

    fn mitigation_stats(&self) -> MitigationStats {
        MitigationStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramGeometry;

    #[test]
    fn no_mitigation_is_identity() {
        let g = DramGeometry::tiny();
        let mut m = NoMitigation::new(g);
        let row = GlobalRowId::new(1025);
        let t = m.translate(row, Time::ZERO);
        assert_eq!(g.flatten(t.phys).unwrap(), row);
        assert_eq!(t.lookup_latency, Duration::ZERO);
        assert!(m.on_activation(t.phys, Time::ZERO).is_empty());
        assert_eq!(m.mitigation_stats(), MitigationStats::default());
    }
}
