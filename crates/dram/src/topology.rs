//! System-level memory topology: channels × ranks × banks × rows.
//!
//! [`DramGeometry`] describes **one channel**; [`TopologyConfig`] lifts it
//! to the full module by adding the channel count. The sharded simulator
//! gives every channel its own banks, channel bus, and mitigation-engine
//! instance, so all cross-channel coordinates live here: a *system row id*
//! is channel-major (`channel * rows_per_channel + local_row`), and the
//! per-channel remainder is exactly the [`GlobalRowId`] every mitigation
//! scheme already indexes its tables with.

use crate::error::AddressError;
use crate::{BankId, DramGeometry, GlobalRowId};
use serde::{Deserialize, Serialize};

/// Channel/rank/bank shape of the whole memory system.
///
/// Built from a [`BaselineConfig`](crate::BaselineConfig) via
/// [`BaselineConfig::topology`](crate::BaselineConfig::topology); every
/// channel replicates the same per-channel geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Independent channels (each is one simulation shard).
    pub channels: u32,
    /// Ranks on each channel.
    pub ranks_per_channel: u32,
    /// Banks in each rank.
    pub banks_per_rank: u32,
    /// Rows in each bank (needed to split the row bits of a system row id).
    pub rows_per_bank: u32,
}

/// A fully decoded system row: channel, rank, bank-within-rank, row.
///
/// The flattened encodings in between are documented on
/// [`TopologyConfig::encode`]: `bank = rank * banks_per_rank +
/// bank_in_rank` (the [`BankId`] flattening), `local = bank *
/// rows_per_bank + row` (the [`GlobalRowId`] flattening), and `system =
/// channel * rows_per_channel + local`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DecodedRow {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank (not the flattened [`BankId`]).
    pub bank_in_rank: u32,
    /// Row index within the bank.
    pub row: u32,
}

impl TopologyConfig {
    /// Builds the topology of `channels` identical channels of `geometry`.
    pub const fn new(channels: u32, geometry: &DramGeometry) -> Self {
        TopologyConfig {
            channels,
            ranks_per_channel: geometry.ranks,
            banks_per_rank: geometry.banks_per_rank,
            rows_per_bank: geometry.rows_per_bank,
        }
    }

    /// Flattened banks per channel (`ranks_per_channel * banks_per_rank`).
    pub const fn banks_per_channel(&self) -> u32 {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// Rows per channel (the size of one shard's address space).
    pub const fn rows_per_channel(&self) -> u64 {
        self.banks_per_channel() as u64 * self.rows_per_bank as u64
    }

    /// Total rows across every channel.
    pub const fn total_rows(&self) -> u64 {
        self.channels as u64 * self.rows_per_channel()
    }

    /// Encodes a decoded row into its system row id.
    ///
    /// The bit layout is a pure mixed-radix flattening, most-significant
    /// first: channel, then rank, then bank-in-rank, then row. The middle
    /// two digits together are the flattened [`BankId`] (`rank *
    /// banks_per_rank + bank_in_rank`), so the per-channel remainder of a
    /// system row id is bit-compatible with the single-channel
    /// [`GlobalRowId`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError`] if any coordinate exceeds the topology.
    pub fn encode(&self, d: DecodedRow) -> Result<u64, AddressError> {
        if d.channel >= self.channels {
            return Err(AddressError::ChannelOutOfRange {
                channel: d.channel,
                channels: self.channels,
            });
        }
        if d.rank >= self.ranks_per_channel {
            return Err(AddressError::RankOutOfRange {
                rank: d.rank,
                ranks: self.ranks_per_channel,
            });
        }
        if d.bank_in_rank >= self.banks_per_rank {
            return Err(AddressError::BankOutOfRange {
                bank: d.bank_in_rank,
                banks: self.banks_per_rank,
            });
        }
        if d.row >= self.rows_per_bank {
            return Err(AddressError::RowOutOfRange {
                row: d.row,
                rows: self.rows_per_bank,
            });
        }
        let bank = d.rank as u64 * self.banks_per_rank as u64 + d.bank_in_rank as u64;
        let local = bank * self.rows_per_bank as u64 + d.row as u64;
        Ok(d.channel as u64 * self.rows_per_channel() + local)
    }

    /// Decodes a system row id into channel/rank/bank/row coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError::GlobalRowOutOfRange`] if the id exceeds
    /// [`TopologyConfig::total_rows`].
    pub fn decode(&self, system_row: u64) -> Result<DecodedRow, AddressError> {
        if system_row >= self.total_rows() {
            return Err(AddressError::GlobalRowOutOfRange {
                id: system_row,
                rows: self.total_rows(),
            });
        }
        let channel = (system_row / self.rows_per_channel()) as u32;
        let local = system_row % self.rows_per_channel();
        let bank = (local / self.rows_per_bank as u64) as u32;
        let row = (local % self.rows_per_bank as u64) as u32;
        Ok(DecodedRow {
            channel,
            rank: bank / self.banks_per_rank,
            bank_in_rank: bank % self.banks_per_rank,
            row,
        })
    }

    /// The channel a system row id belongs to.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError::GlobalRowOutOfRange`] if the id exceeds
    /// [`TopologyConfig::total_rows`].
    pub fn channel_of(&self, system_row: u64) -> Result<u32, AddressError> {
        if system_row >= self.total_rows() {
            return Err(AddressError::GlobalRowOutOfRange {
                id: system_row,
                rows: self.total_rows(),
            });
        }
        Ok((system_row / self.rows_per_channel()) as u32)
    }

    /// Splits a system row id into `(channel, local GlobalRowId)` — the
    /// shard routing step of the sharded simulator.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError::GlobalRowOutOfRange`] if the id exceeds
    /// [`TopologyConfig::total_rows`].
    pub fn split(&self, system_row: u64) -> Result<(u32, GlobalRowId), AddressError> {
        let channel = self.channel_of(system_row)?;
        Ok((
            channel,
            GlobalRowId::new(system_row % self.rows_per_channel()),
        ))
    }
}

impl DramGeometry {
    /// The rank a flattened [`BankId`] belongs to (`bank / banks_per_rank`;
    /// see the flattening documented on [`BankId`]).
    pub const fn rank_of(&self, bank: BankId) -> u32 {
        bank.index() / self.banks_per_rank
    }

    /// The bank index within its rank (`bank % banks_per_rank`).
    pub const fn bank_in_rank(&self, bank: BankId) -> u32 {
        bank.index() % self.banks_per_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowAddr;

    /// A multi-rank, multi-channel shape so every digit of the mixed radix
    /// is exercised: 4 channels × 2 ranks × 4 banks × 1024 rows.
    fn topo() -> TopologyConfig {
        TopologyConfig {
            channels: 4,
            ranks_per_channel: 2,
            banks_per_rank: 4,
            rows_per_bank: 1024,
        }
    }

    #[test]
    fn shape_accounting() {
        let t = topo();
        assert_eq!(t.banks_per_channel(), 8);
        assert_eq!(t.rows_per_channel(), 8 * 1024);
        assert_eq!(t.total_rows(), 4 * 8 * 1024);
    }

    /// Satellite: round-trip decode over every channel/rank/bank/row digit
    /// boundary, plus exhaustive low-volume sweep.
    #[test]
    fn encode_decode_round_trips_all_digits() {
        let t = topo();
        for channel in 0..t.channels {
            for rank in 0..t.ranks_per_channel {
                for bank_in_rank in 0..t.banks_per_rank {
                    for row in [0u32, 1, 511, 1023] {
                        let d = DecodedRow {
                            channel,
                            rank,
                            bank_in_rank,
                            row,
                        };
                        let id = t.encode(d).unwrap();
                        assert_eq!(t.decode(id).unwrap(), d, "id {id}");
                        assert_eq!(t.channel_of(id).unwrap(), channel);
                    }
                }
            }
        }
        // System ids are dense: every id below total_rows round-trips.
        for id in 0..t.total_rows() {
            assert_eq!(t.encode(t.decode(id).unwrap()).unwrap(), id);
        }
    }

    /// The per-channel remainder of a system row id is the same flat id
    /// `DramGeometry::flatten` produces — the documented `BankId`/
    /// `GlobalRowId` flattening holds through the topology layer.
    #[test]
    fn per_channel_remainder_matches_geometry_flatten() {
        let geometry = DramGeometry {
            ranks: 2,
            banks_per_rank: 4,
            rows_per_bank: 1024,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        };
        let t = TopologyConfig::new(4, &geometry);
        let d = DecodedRow {
            channel: 3,
            rank: 1,
            bank_in_rank: 2,
            row: 77,
        };
        let system = t.encode(d).unwrap();
        let (channel, local) = t.split(system).unwrap();
        assert_eq!(channel, 3);
        let bank = BankId::new(d.rank * geometry.banks_per_rank + d.bank_in_rank);
        let flat = geometry.flatten(RowAddr { bank, row: d.row }).unwrap();
        assert_eq!(local, flat);
        assert_eq!(geometry.rank_of(bank), 1);
        assert_eq!(geometry.bank_in_rank(bank), 2);
    }

    #[test]
    fn out_of_range_coordinates_are_rejected() {
        let t = topo();
        let ok = DecodedRow {
            channel: 0,
            rank: 0,
            bank_in_rank: 0,
            row: 0,
        };
        assert!(t.encode(DecodedRow { channel: 4, ..ok }).is_err());
        assert!(t.encode(DecodedRow { rank: 2, ..ok }).is_err());
        assert!(t
            .encode(DecodedRow {
                bank_in_rank: 4,
                ..ok
            })
            .is_err());
        assert!(t.encode(DecodedRow { row: 1024, ..ok }).is_err());
        assert!(t.decode(t.total_rows()).is_err());
        assert!(t.channel_of(t.total_rows()).is_err());
        assert!(t.split(t.total_rows()).is_err());
    }

    #[test]
    fn single_channel_topology_is_the_identity() {
        let g = DramGeometry::tiny();
        let t = TopologyConfig::new(1, &g);
        assert_eq!(t.total_rows(), g.total_rows());
        for id in [0u64, 1, 4095] {
            let (channel, local) = t.split(id).unwrap();
            assert_eq!(channel, 0);
            assert_eq!(local.index(), id);
        }
    }
}
