//! Baseline system configuration (paper Table I).

use crate::{DdrTiming, DramGeometry, Duration, PagePolicy};
use serde::{Deserialize, Serialize};

/// The complete baseline memory-system configuration from Table I of the
/// paper, plus the simulator's core-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Independent DRAM channels. Each channel replicates `geometry` (its
    /// own ranks, banks, and rows) and, in the sharded simulator, runs as
    /// its own shard with a private mitigation-engine instance. The paper's
    /// Table I baseline is single-channel.
    pub channels: u32,
    /// Per-channel DRAM geometry (ranks, banks, rows, row size).
    pub geometry: DramGeometry,
    /// DDR4 timing parameters.
    pub timing: DdrTiming,
    /// Number of out-of-order cores sharing the channel.
    pub cores: u32,
    /// Core clock frequency in GHz (3 GHz in Table I).
    pub core_ghz: f64,
    /// Memory-level parallelism per core: maximum outstanding misses the core
    /// model allows before stalling (proxy for ROB/MSHR capacity).
    pub mlp: u32,
    /// Refresh window treated as one tracker epoch (64 ms).
    pub epoch: Duration,
    /// Row-buffer management policy of the memory controller.
    pub page_policy: PagePolicy,
}

impl BaselineConfig {
    /// The paper's Table I configuration: 4 cores at 3 GHz, 16 GB DDR4-2400,
    /// 16 banks x 1 rank x 1 channel.
    pub fn paper_table1() -> Self {
        BaselineConfig {
            channels: 1,
            geometry: DramGeometry::paper_table1(),
            timing: DdrTiming::ddr4_2400(),
            cores: 4,
            core_ghz: 3.0,
            mlp: 8,
            epoch: Duration::from_ms(64),
            page_policy: PagePolicy::Open,
        }
    }

    /// A scaled-down configuration for fast unit/property tests.
    pub fn tiny() -> Self {
        BaselineConfig {
            channels: 1,
            geometry: DramGeometry::tiny(),
            timing: DdrTiming::ddr4_2400(),
            cores: 1,
            core_ghz: 3.0,
            mlp: 4,
            epoch: Duration::from_ms(1),
            page_policy: PagePolicy::Open,
        }
    }
}

impl BaselineConfig {
    /// Sets the channel count (each channel replicates `geometry`).
    pub fn with_channels(mut self, channels: u32) -> Self {
        self.channels = channels.max(1);
        self
    }

    /// The full system topology (channels × ranks × banks × rows).
    pub fn topology(&self) -> crate::TopologyConfig {
        crate::TopologyConfig::new(self.channels, &self.geometry)
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self::paper_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = BaselineConfig::paper_table1();
        assert_eq!(c.cores, 4);
        assert_eq!(c.geometry.total_banks(), 16);
        assert_eq!(c.geometry.capacity_bytes(), 16 << 30);
        assert_eq!(c.epoch, Duration::from_ms(64));
    }

    #[test]
    fn tiny_is_smaller() {
        let c = BaselineConfig::tiny();
        assert!(c.geometry.total_rows() < BaselineConfig::paper_table1().geometry.total_rows());
    }
}
