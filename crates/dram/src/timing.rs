//! DDR4 timing parameters and derived quantities.

use crate::{DramGeometry, Duration};
use serde::{Deserialize, Serialize};

/// JEDEC DDR4 timing parameters relevant to Rowhammer mitigation.
///
/// Defaults mirror the paper's Table I (DDR4-2400, Micron MT40A2G4):
/// `tRC` = 45 ns, `tRCD` = `tCL` = `tRP` = 14.2 ns, `tCCD_S` = 3.3 ns,
/// `tCCD_L` = 5 ns, `tREFI` = 7.8 us, `tRFC` = 350 ns, `tREFW` = 64 ms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DdrTiming {
    /// Row cycle time: minimum ACT-to-ACT delay within a bank.
    pub t_rc: Duration,
    /// ACT-to-column-command delay.
    pub t_rcd: Duration,
    /// Column access (CAS) latency.
    pub t_cl: Duration,
    /// Precharge latency.
    pub t_rp: Duration,
    /// Short column-to-column delay (different bank group).
    pub t_ccd_s: Duration,
    /// Long column-to-column delay (same bank group); also the streaming
    /// per-line transfer time used for row migrations (5 ns in the paper).
    pub t_ccd_l: Duration,
    /// Average refresh command interval.
    pub t_refi: Duration,
    /// Refresh cycle time (bank unavailable per refresh command).
    pub t_rfc: Duration,
    /// Refresh window: every row must be refreshed within this period.
    pub t_refw: Duration,
}

impl DdrTiming {
    /// The paper's Table I DDR4-2400 parameters.
    pub const fn ddr4_2400() -> Self {
        DdrTiming {
            t_rc: Duration::from_ns(45),
            t_rcd: Duration::from_ns_tenths(142),
            t_cl: Duration::from_ns_tenths(142),
            t_rp: Duration::from_ns_tenths(142),
            t_ccd_s: Duration::from_ns_tenths(33),
            t_ccd_l: Duration::from_ns(5),
            t_refi: Duration::from_ns(7_800),
            t_rfc: Duration::from_ns(350),
            t_refw: Duration::from_ms(64),
        }
    }

    /// Maximum activations to one bank within a refresh window (`ACTmax`).
    ///
    /// Section II-B: `ACTmax = tREFW * (1 - tRFC / tREFI) / tRC`, about 1360K
    /// for the default parameters. This is the attacker's activation budget
    /// per bank per 64 ms.
    pub fn act_max(&self) -> u64 {
        let usable_ps = self.t_refw.as_ps() as f64
            * (1.0 - self.t_rfc.as_ps() as f64 / self.t_refi.as_ps() as f64);
        (usable_ps / self.t_rc.as_ps() as f64) as u64
    }

    /// Time to stream one row between DRAM and the copy-buffer.
    ///
    /// Section IV-D: one activation (`tRC` = 45 ns ACT-to-ACT) followed by one
    /// streaming line transfer per cache line (5 ns each): ~685 ns for an 8 KB
    /// row of 128 lines.
    pub fn row_transfer_time(&self, geometry: &DramGeometry) -> Duration {
        self.t_rc + self.t_ccd_l * geometry.lines_per_row() as u64
    }

    /// Latency of one row migration (one row read + one row write): ~1.37 us.
    ///
    /// This is the channel-blocking cost of moving a row into the quarantine
    /// area (AQUA) and half the cost of one RRS swap.
    pub fn row_migration_latency(&self, geometry: &DramGeometry) -> Duration {
        self.row_transfer_time(geometry) * 2
    }

    /// Latency of one row swap (two reads + two writes): ~2.74 us.
    pub fn row_swap_latency(&self, geometry: &DramGeometry) -> Duration {
        self.row_transfer_time(geometry) * 4
    }

    /// Time for `activations` back-to-back activations of one row (Eq. 1).
    pub fn aggressor_time(&self, activations: u64) -> Duration {
        self.t_rc * activations
    }

    /// Latency of a row-buffer hit (column access + burst).
    pub fn hit_latency(&self) -> Duration {
        self.t_cl + self.t_ccd_s
    }

    /// Latency of a row-buffer miss (precharge + activate + column access).
    pub fn miss_latency(&self) -> Duration {
        self.t_rp + self.t_rcd + self.t_cl + self.t_ccd_s
    }

    /// Number of refresh commands per refresh window.
    pub fn refreshes_per_window(&self) -> u64 {
        self.t_refw.div_duration(self.t_refi)
    }
}

impl Default for DdrTiming {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn act_max_matches_paper() {
        // Paper II-B: ACTmax ~= 1360K for DDR4-2400.
        let t = DdrTiming::ddr4_2400();
        let act_max = t.act_max();
        assert!(
            (1_355_000..=1_365_000).contains(&act_max),
            "ACTmax = {act_max}"
        );
    }

    #[test]
    fn row_transfer_matches_paper() {
        // Paper IV-D: ~685 ns to stream one 8 KB row.
        let t = DdrTiming::ddr4_2400();
        let g = DramGeometry::paper_table1();
        assert_eq!(t.row_transfer_time(&g), Duration::from_ns(45 + 128 * 5));
    }

    #[test]
    fn migration_latency_matches_paper() {
        // Paper IV-D: one migration = 1.37 us, one swap = 2.74 us.
        let t = DdrTiming::ddr4_2400();
        let g = DramGeometry::paper_table1();
        assert_eq!(t.row_migration_latency(&g).as_ns(), 1_370);
        assert_eq!(t.row_swap_latency(&g).as_ns(), 2_740);
    }

    #[test]
    fn aggressor_time_eq1() {
        // Eq. 1 with A = 500: t_AGG = 500 * 45 ns = 22.5 us.
        let t = DdrTiming::ddr4_2400();
        assert_eq!(t.aggressor_time(500).as_us_f64(), 22.5);
    }

    #[test]
    fn refreshes_per_window() {
        let t = DdrTiming::ddr4_2400();
        assert_eq!(t.refreshes_per_window(), 8205);
    }

    #[test]
    fn latencies_are_ordered() {
        let t = DdrTiming::ddr4_2400();
        assert!(t.hit_latency() < t.miss_latency());
        assert!(t.miss_latency() < t.t_rc + t.hit_latency());
    }
}
