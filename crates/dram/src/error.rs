//! Error types for the DRAM model.

use std::error::Error;
use std::fmt;

/// An address fell outside the configured geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressError {
    /// Bank index exceeds the number of banks.
    BankOutOfRange {
        /// Offending bank index.
        bank: u32,
        /// Number of banks in the module.
        banks: u32,
    },
    /// Row index exceeds rows per bank.
    RowOutOfRange {
        /// Offending row index.
        row: u32,
        /// Rows per bank.
        rows: u32,
    },
    /// Flat row id exceeds total rows.
    GlobalRowOutOfRange {
        /// Offending flat id.
        id: u64,
        /// Total rows in the module.
        rows: u64,
    },
    /// Channel index exceeds the number of channels.
    ChannelOutOfRange {
        /// Offending channel index.
        channel: u32,
        /// Number of channels in the system.
        channels: u32,
    },
    /// Rank index exceeds ranks per channel.
    RankOutOfRange {
        /// Offending rank index.
        rank: u32,
        /// Ranks per channel.
        ranks: u32,
    },
}

impl fmt::Display for AddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressError::BankOutOfRange { bank, banks } => {
                write!(
                    f,
                    "bank index {bank} out of range (module has {banks} banks)"
                )
            }
            AddressError::RowOutOfRange { row, rows } => {
                write!(f, "row index {row} out of range (bank has {rows} rows)")
            }
            AddressError::GlobalRowOutOfRange { id, rows } => {
                write!(
                    f,
                    "global row id {id} out of range (module has {rows} rows)"
                )
            }
            AddressError::ChannelOutOfRange { channel, channels } => {
                write!(
                    f,
                    "channel index {channel} out of range (system has {channels} channels)"
                )
            }
            AddressError::RankOutOfRange { rank, ranks } => {
                write!(
                    f,
                    "rank index {rank} out of range (channel has {ranks} ranks)"
                )
            }
        }
    }
}

impl Error for AddressError {}

/// Top-level error type for DRAM-model operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramError {
    /// An address was invalid for the configured geometry.
    Address(AddressError),
    /// A simulation exceeded its per-job wall-clock budget. The bench
    /// harness converts this into a failed matrix cell whose reason names
    /// the budget, instead of letting a hung cell stall the whole matrix.
    WatchdogExpired {
        /// Wall-clock budget the run was given, in milliseconds.
        budget_ms: u64,
    },
    /// A DRAM command was issued to the array but its side-channel
    /// notification was lost (one-shot command fault): the mitigation never
    /// observed the activation.
    CommandFault {
        /// Simulation time of the dropped notification, picoseconds.
        at_ps: u64,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::Address(e) => write!(f, "invalid address: {e}"),
            DramError::WatchdogExpired { budget_ms } => {
                write!(
                    f,
                    "watchdog: simulation exceeded its {budget_ms} ms wall-clock budget"
                )
            }
            DramError::CommandFault { at_ps } => {
                write!(
                    f,
                    "command fault: activation notification lost at {at_ps} ps"
                )
            }
        }
    }
}

impl Error for DramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DramError::Address(e) => Some(e),
            DramError::WatchdogExpired { .. } | DramError::CommandFault { .. } => None,
        }
    }
}

impl From<AddressError> for DramError {
    fn from(e: AddressError) -> Self {
        DramError::Address(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = AddressError::BankOutOfRange { bank: 9, banks: 4 };
        assert!(e.to_string().contains("bank index 9"));
        let top: DramError = e.into();
        assert!(top.source().is_some());
        assert!(top.to_string().contains("invalid address"));
    }
}
