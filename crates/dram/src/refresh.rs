//! Periodic refresh scheduling.
//!
//! The memory controller issues one refresh command every `tREFI` (7.8 us),
//! after which the rank is unavailable for `tRFC` (350 ns). Over the 64 ms
//! refresh window this removes ~4.5% of the activation budget, which is why
//! `ACTmax = tREFW * (1 - tRFC/tREFI) / tRC`.

use crate::{DdrTiming, Duration, Time};

/// Computes refresh-blackout windows and applies them to request timing.
#[derive(Debug, Clone)]
pub struct RefreshScheduler {
    t_refi: Duration,
    t_rfc: Duration,
}

impl RefreshScheduler {
    /// Creates a scheduler from the module timing.
    pub fn new(timing: &DdrTiming) -> Self {
        RefreshScheduler {
            t_refi: timing.t_refi,
            t_rfc: timing.t_rfc,
        }
    }

    /// If `now` falls inside a refresh blackout, returns the end of that
    /// blackout; otherwise returns `now`.
    ///
    /// Blackout `k` spans `[k * tREFI, k * tREFI + tRFC)` for `k >= 1`.
    ///
    /// Branchless: `k == 0` (no refresh issued yet) zeroes the window-end
    /// candidate, and `max` selects between "still inside the blackout"
    /// and "already past it" without a data-dependent branch — this sits
    /// on the serve path of every request.
    pub fn next_available(&self, now: Time) -> Time {
        let k = now.as_ps() / self.t_refi.as_ps();
        let window_end = (k * self.t_refi.as_ps() + self.t_rfc.as_ps()) * (k != 0) as u64;
        Time::from_ps(now.as_ps().max(window_end))
    }

    /// Number of refresh commands issued in `[0, until)`.
    pub fn refreshes_before(&self, until: Time) -> u64 {
        until.as_ps() / self.t_refi.as_ps()
    }

    /// Fraction of wall time lost to refresh blackouts.
    pub fn blackout_fraction(&self) -> f64 {
        self.t_rfc.as_ps() as f64 / self.t_refi.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> RefreshScheduler {
        RefreshScheduler::new(&DdrTiming::ddr4_2400())
    }

    #[test]
    fn no_blackout_before_first_refi() {
        let s = sched();
        assert_eq!(s.next_available(Time::from_us(5)), Time::from_us(5));
    }

    #[test]
    fn inside_blackout_is_delayed() {
        let s = sched();
        // First refresh at 7.8 us, blackout until 7.8 us + 350 ns.
        let inside = Time::from_ns(7_800 + 100);
        assert_eq!(s.next_available(inside), Time::from_ns(7_800 + 350));
    }

    #[test]
    fn after_blackout_passes_through() {
        let s = sched();
        let after = Time::from_ns(7_800 + 400);
        assert_eq!(s.next_available(after), after);
    }

    #[test]
    fn refresh_count_per_window() {
        let s = sched();
        // ~8205 refreshes in 64 ms.
        assert_eq!(s.refreshes_before(Time::from_ms(64)), 8205);
    }

    #[test]
    fn blackout_fraction_matches_actmax_derivation() {
        let s = sched();
        let f = s.blackout_fraction();
        assert!((f - 350.0 / 7800.0).abs() < 1e-12);
    }
}
