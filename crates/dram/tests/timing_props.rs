//! Property-based tests on the DDR4 timing model.

use aqua_dram::{Bank, Channel, DdrTiming, Duration, PagePolicy, RefreshScheduler, Time};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Data is never ready before the request arrives, and consecutive
    /// activations of a bank are always separated by at least tRC.
    #[test]
    fn bank_timing_invariants(
        accesses in prop::collection::vec((0u32..32, 0u64..200), 1..200),
    ) {
        let timing = DdrTiming::ddr4_2400();
        let mut bank = Bank::new(timing);
        let mut now = Time::ZERO;
        let mut last_act: Option<Time> = None;
        for (row, advance_ns) in accesses {
            now += Duration::from_ns(advance_ns);
            let r = bank.access(row, now);
            prop_assert!(r.data_ready >= now, "time travel");
            prop_assert!(r.latency >= timing.hit_latency());
            if r.activated {
                // The ACT issued at data_ready - tRCD - tCL - tCCD.
                let act_at = r.data_ready
                    - timing.t_ccd_s
                    - timing.t_cl
                    - timing.t_rcd;
                if let Some(prev) = last_act {
                    prop_assert!(
                        act_at.saturating_since(prev) >= timing.t_rc,
                        "ACT-to-ACT spacing below tRC"
                    );
                }
                last_act = Some(act_at);
            }
            now = r.data_ready;
        }
    }

    /// Closed-page banks activate on every access; open-page banks activate
    /// at most as often.
    #[test]
    fn closed_page_act_count_dominates(
        accesses in prop::collection::vec(0u32..8, 1..100),
    ) {
        let timing = DdrTiming::ddr4_2400();
        let mut open = Bank::new(timing);
        let mut closed = Bank::with_policy(timing, PagePolicy::Closed);
        let mut t_open = Time::ZERO;
        let mut t_closed = Time::ZERO;
        for &row in &accesses {
            t_open = open.access(row, t_open).data_ready;
            t_closed = closed.access(row, t_closed).data_ready;
        }
        prop_assert_eq!(closed.stats().activations, accesses.len() as u64);
        prop_assert!(open.stats().activations <= closed.stats().activations);
    }

    /// The channel never goes backwards: each reservation starts at or after
    /// the requested time and at or after every earlier reservation's start.
    #[test]
    fn channel_reservations_are_monotonic(
        ops in prop::collection::vec((0u64..1000, 0u8..3), 1..100),
    ) {
        let mut ch = Channel::new();
        let mut last_start = Time::ZERO;
        for (at_ns, kind) in ops {
            let at = Time::from_ns(at_ns);
            let start = match kind {
                0 => ch.reserve_burst(at, Duration::from_ns(3)),
                1 => ch.reserve_table_access(at, Duration::from_ns(3)),
                _ => ch.reserve_migration(at, Duration::from_ns(1370)),
            };
            prop_assert!(start >= at);
            prop_assert!(start >= last_start);
            last_start = start;
        }
    }

    /// Refresh delays are bounded by tRFC and idempotent.
    #[test]
    fn refresh_delay_is_bounded(at_ns in 0u64..1_000_000) {
        let timing = DdrTiming::ddr4_2400();
        let sched = RefreshScheduler::new(&timing);
        let t = Time::from_ns(at_ns);
        let adjusted = sched.next_available(t);
        prop_assert!(adjusted >= t);
        prop_assert!(adjusted.saturating_since(t) <= timing.t_rfc);
        prop_assert_eq!(sched.next_available(adjusted), adjusted);
    }
}
