//! Simulation run reports.

use crate::OracleSummary;
use aqua_dram::mitigation::MitigationStats;
use aqua_dram::Duration;
use aqua_faults::FaultReport;
use aqua_telemetry::TelemetrySummary;
use serde::{Deserialize, Serialize};

/// Everything measured in one simulation run.
///
/// `PartialEq` compares every field, which is how the bench harness asserts
/// that parallel and serial matrix runs produce identical results.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Mitigation scheme name.
    pub scheme: String,
    /// Workload label (core 0's generator).
    pub workload: String,
    /// Total requests issued across all cores.
    pub requests_done: u64,
    /// Requests per core.
    pub per_core: Vec<u64>,
    /// Epochs simulated.
    pub epochs: u64,
    /// Channel time consumed by ordinary data bursts.
    pub data_busy: Duration,
    /// Channel time consumed by row migrations.
    pub migration_busy: Duration,
    /// Channel time consumed by in-DRAM table traffic.
    pub table_busy: Duration,
    /// Mitigation statistics (migrations, refreshes, throttles, violations).
    pub mitigation: MitigationStats,
    /// Security-oracle summary.
    pub oracle: OracleSummary,
    /// Shadow-memory integrity violations (a translation resolved to a
    /// physical row not holding the requested data; must be zero in
    /// fault-free runs).
    pub integrity_violations: u64,
    /// Fault-campaign accounting (all zero when no faults were injected).
    /// `faults.unaccounted` must be zero in every run: a corruption that is
    /// neither recovered, counted, nor dormant escaped silently.
    pub faults: FaultReport,
    /// End-of-run telemetry snapshot (`None` when no telemetry hub was
    /// attached or the `telemetry` feature is disabled).
    pub telemetry: Option<TelemetrySummary>,
}

impl RunReport {
    /// Row migrations per epoch (the Figure 6 metric).
    pub fn migrations_per_epoch(&self) -> f64 {
        self.mitigation.row_migrations as f64 / self.epochs.max(1) as f64
    }

    /// Normalized performance vs a baseline run of the same workload
    /// (`requests_done / baseline.requests_done`, the Figure 7/9 metric).
    pub fn normalized_perf(&self, baseline: &RunReport) -> f64 {
        assert_eq!(
            self.workload, baseline.workload,
            "normalize against the same workload"
        );
        self.requests_done as f64 / baseline.requests_done.max(1) as f64
    }

    /// Slowdown percentage vs baseline (positive = slower).
    pub fn slowdown_pct(&self, baseline: &RunReport) -> f64 {
        (1.0 - self.normalized_perf(baseline)) * 100.0
    }
}

/// Geometric mean of normalized-performance values (the paper's `Gmean`).
///
/// Returns `None` if any value is non-positive (the logarithm is undefined
/// there, and a zero-request run would otherwise poison a whole figure);
/// an empty input yields `Some(1.0)` (the neutral element).
pub fn gmean(values: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        Some(1.0)
    } else {
        Some((log_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(workload: &str, requests: u64) -> RunReport {
        RunReport {
            scheme: "x".into(),
            workload: workload.into(),
            requests_done: requests,
            epochs: 2,
            ..RunReport::default()
        }
    }

    #[test]
    fn normalized_perf_and_slowdown() {
        let base = report("lbm", 1000);
        let mit = report("lbm", 900);
        assert!((mit.normalized_perf(&base) - 0.9).abs() < 1e-12);
        assert!((mit.slowdown_pct(&base) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same workload")]
    fn cross_workload_normalization_rejected() {
        report("lbm", 1).normalized_perf(&report("mcf", 1));
    }

    #[test]
    fn migrations_per_epoch_divides() {
        let mut r = report("lbm", 10);
        r.mitigation.row_migrations = 10;
        assert_eq!(r.migrations_per_epoch(), 5.0);
    }

    #[test]
    fn gmean_basics() {
        assert!((gmean([1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((gmean([0.5, 2.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((gmean(std::iter::empty()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_rejects_non_positive_values() {
        assert_eq!(gmean([1.0, 0.0]), None);
        assert_eq!(gmean([-2.0]), None);
        assert_eq!(gmean([1.0, f64::NAN]), None);
    }
}
