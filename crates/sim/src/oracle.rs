//! Ground-truth activation oracle (the security checker).

use aqua_dram::{DramGeometry, RowAddr};
use serde::{Deserialize, Serialize};

/// Summary of what the oracle observed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleSummary {
    /// Maximum activations any physical row accumulated in a two-epoch
    /// window (the refresh-window upper bound of section VI-A).
    pub max_window_activations: u64,
    /// Distinct physical rows whose window count exceeded `T_RH` —
    /// each one is a potential Rowhammer bit flip.
    pub rows_over_trh: u64,
    /// Total activations recorded (normal + victim refresh).
    pub total_activations: u64,
    /// Distinct rows where a Rowhammer bit flip is possible: some *single*
    /// adjacent row accumulated more than `T_RH` activations since this
    /// row's last refresh. Victim refreshes reset the disturbance, so this
    /// metric credits victim-refresh where it works — and exposes
    /// Half-Double where it does not.
    pub rows_flippable: u64,
    /// Average rows per epoch with 166+ activations (Table II column).
    pub avg_rows_166: u64,
    /// Average rows per epoch with 500+ activations (Table II column).
    pub avg_rows_500: u64,
    /// Average rows per epoch with 1000+ activations (Table II column).
    pub avg_rows_1000: u64,
    /// Epochs completed.
    pub epochs: u64,
}

/// Counts every activation of every *physical* row, independent of the
/// mitigation scheme's own (fallible, resettable) tracker.
///
/// Any 64 ms refresh window spans at most two tracker epochs, so the count
/// `previous_epoch + current_epoch` upper-bounds the sliding-window
/// activation count of a row; a row whose bound exceeds `T_RH` is reported
/// as vulnerable.
#[derive(Debug)]
pub struct ActivationOracle {
    t_rh: u64,
    rows_per_bank: u32,
    curr: Vec<u32>,
    prev: Vec<u32>,
    flagged: Vec<bool>,
    /// Disturbance on each row from its lower neighbour (`row - 1`) since
    /// the row's last refresh.
    dist_lo: Vec<u32>,
    /// Disturbance from the upper neighbour (`row + 1`).
    dist_hi: Vec<u32>,
    flippable: Vec<bool>,
    summary: OracleSummary,
    band_totals: [u64; 3],
}

impl ActivationOracle {
    /// Creates the oracle for a module, flagging rows whose two-epoch count
    /// exceeds `t_rh`.
    pub fn new(geometry: &DramGeometry, t_rh: u64) -> Self {
        let rows = geometry.total_rows() as usize;
        ActivationOracle {
            t_rh,
            rows_per_bank: geometry.rows_per_bank,
            curr: vec![0; rows],
            prev: vec![0; rows],
            flagged: vec![false; rows],
            dist_lo: vec![0; rows],
            dist_hi: vec![0; rows],
            flippable: vec![false; rows],
            summary: OracleSummary::default(),
            band_totals: [0; 3],
        }
    }

    fn index(&self, row: RowAddr) -> usize {
        row.bank.index() as usize * self.rows_per_bank as usize + row.row as usize
    }

    /// Records one activation of physical row `row`. Returns `true` when
    /// this activation first pushed the row's two-epoch window count over
    /// `T_RH` (used to trace `ThresholdCrossed` events).
    pub fn record(&mut self, row: RowAddr) -> bool {
        let i = self.index(row);
        self.curr[i] += 1;
        self.summary.total_activations += 1;
        let window = self.curr[i] as u64 + self.prev[i] as u64;
        if window > self.summary.max_window_activations {
            self.summary.max_window_activations = window;
        }
        let mut crossed = false;
        if window > self.t_rh && !self.flagged[i] {
            self.flagged[i] = true;
            self.summary.rows_over_trh += 1;
            crossed = true;
        }
        self.disturb_neighbours(row, i);
        crossed
    }

    /// Records a mitigative refresh of `row`: the refresh is itself a row
    /// activation (it disturbs the row's neighbours — the Half-Double
    /// mechanism) but it *restores* the row's own charge, resetting the
    /// disturbance accumulated on it.
    pub fn record_refresh(&mut self, row: RowAddr) {
        let i = self.index(row);
        self.curr[i] += 1;
        self.summary.total_activations += 1;
        self.dist_lo[i] = 0;
        self.dist_hi[i] = 0;
        self.disturb_neighbours(row, i);
    }

    fn disturb_neighbours(&mut self, row: RowAddr, i: usize) {
        if row.row > 0 {
            // `row` is the upper neighbour of `row - 1`.
            let below = i - 1;
            self.dist_hi[below] += 1;
            self.check_flippable(below);
        }
        if row.row + 1 < self.rows_per_bank {
            let above = i + 1;
            self.dist_lo[above] += 1;
            self.check_flippable(above);
        }
    }

    fn check_flippable(&mut self, i: usize) {
        if !self.flippable[i]
            && (self.dist_lo[i] as u64 > self.t_rh || self.dist_hi[i] as u64 > self.t_rh)
        {
            self.flippable[i] = true;
            self.summary.rows_flippable += 1;
        }
    }

    /// Current-epoch activation count of `row`.
    pub fn epoch_count(&self, row: RowAddr) -> u64 {
        self.curr[self.index(row)] as u64
    }

    /// Two-epoch window bound for `row`.
    pub fn window_count(&self, row: RowAddr) -> u64 {
        let i = self.index(row);
        self.curr[i] as u64 + self.prev[i] as u64
    }

    /// Whether a bit flip became possible in `row` at any point in the run
    /// (a single neighbour exceeded `T_RH` activations since `row`'s last
    /// refresh).
    pub fn is_flippable(&self, row: RowAddr) -> bool {
        self.flippable[self.index(row)]
    }

    /// Rolls over to the next epoch, folding the band histogram
    /// (Table II's 166+/500+/1000+ columns) into the running averages.
    pub fn end_epoch(&mut self) {
        for &c in &self.curr {
            let c = c as u64;
            if c >= 166 {
                self.band_totals[0] += 1;
                if c >= 500 {
                    self.band_totals[1] += 1;
                    if c >= 1000 {
                        self.band_totals[2] += 1;
                    }
                }
            }
        }
        self.summary.epochs += 1;
        std::mem::swap(&mut self.prev, &mut self.curr);
        self.curr.fill(0);
        // Every row receives its periodic refresh once per window, which
        // restores its charge; disturbance does not carry across epochs.
        self.dist_lo.fill(0);
        self.dist_hi.fill(0);
    }

    /// The oracle's summary (per-epoch band counts averaged over epochs).
    pub fn summary(&self) -> OracleSummary {
        let mut s = self.summary;
        let epochs = s.epochs.max(1);
        s.avg_rows_166 = self.band_totals[0] / epochs;
        s.avg_rows_500 = self.band_totals[1] / epochs;
        s.avg_rows_1000 = self.band_totals[2] / epochs;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn addr(bank: u32, row: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(bank),
            row,
        }
    }

    fn oracle(t_rh: u64) -> ActivationOracle {
        ActivationOracle::new(&DramGeometry::tiny(), t_rh)
    }

    #[test]
    fn counts_accumulate_per_row() {
        let mut o = oracle(100);
        for _ in 0..5 {
            o.record(addr(0, 1));
        }
        o.record(addr(1, 1));
        assert_eq!(o.epoch_count(addr(0, 1)), 5);
        assert_eq!(o.epoch_count(addr(1, 1)), 1);
        assert_eq!(o.summary().total_activations, 6);
    }

    #[test]
    fn window_spans_two_epochs() {
        let mut o = oracle(100);
        for _ in 0..60 {
            o.record(addr(0, 1));
        }
        o.end_epoch();
        for _ in 0..50 {
            o.record(addr(0, 1));
        }
        // 60 + 50 = 110 > 100: flagged once.
        assert_eq!(o.window_count(addr(0, 1)), 110);
        let s = o.summary();
        assert_eq!(s.rows_over_trh, 1);
        assert_eq!(s.max_window_activations, 110);
    }

    #[test]
    fn window_forgets_after_two_epochs() {
        let mut o = oracle(100);
        for _ in 0..60 {
            o.record(addr(0, 1));
        }
        o.end_epoch();
        o.end_epoch();
        for _ in 0..60 {
            o.record(addr(0, 1));
        }
        assert_eq!(o.summary().rows_over_trh, 0);
    }

    #[test]
    fn exactly_trh_is_not_a_violation() {
        // The threat model: a flip needs MORE than T_RH activations.
        let mut o = oracle(100);
        for _ in 0..100 {
            o.record(addr(0, 1));
        }
        assert_eq!(o.summary().rows_over_trh, 0);
        o.record(addr(0, 1));
        assert_eq!(o.summary().rows_over_trh, 1);
    }

    #[test]
    fn band_histogram_averages_over_epochs() {
        let mut o = oracle(10_000);
        // Epoch 1: one row with 200 acts, one with 600.
        for _ in 0..200 {
            o.record(addr(0, 1));
        }
        for _ in 0..600 {
            o.record(addr(0, 2));
        }
        o.end_epoch();
        // Epoch 2: nothing.
        o.end_epoch();
        let s = o.summary();
        assert_eq!(s.epochs, 2);
        assert_eq!(s.avg_rows_166, 1); // 2 rows / 2 epochs
        assert_eq!(s.avg_rows_500, 0); // 1 row / 2 epochs, integer division
    }

    #[test]
    fn disturbance_accumulates_from_single_neighbour() {
        let mut o = oracle(10);
        // Hammer row 5; row 4 and row 6 each accumulate disturbance.
        for _ in 0..11 {
            o.record(addr(0, 5));
        }
        let s = o.summary();
        assert_eq!(s.rows_flippable, 2, "{s:?}");
    }

    #[test]
    fn refresh_resets_victim_disturbance() {
        let mut o = oracle(10);
        for _ in 0..8 {
            o.record(addr(0, 5));
        }
        // Victim refresh of row 6 restores its charge.
        o.record_refresh(addr(0, 6));
        for _ in 0..8 {
            o.record(addr(0, 5));
        }
        // Row 6 never saw more than 8 post-refresh activations; row 4 did.
        assert_eq!(o.summary().rows_flippable, 1);
    }

    #[test]
    fn refreshes_disturb_the_next_row_over() {
        // The Half-Double mechanism in miniature: refreshes of row 6 count
        // as activations adjacent to row 7.
        let mut o = oracle(10);
        for _ in 0..11 {
            o.record_refresh(addr(0, 6));
        }
        let s = o.summary();
        assert!(s.rows_flippable >= 1);
    }

    #[test]
    fn bank_edges_do_not_wrap() {
        let mut o = oracle(5);
        let last = DramGeometry::tiny().rows_per_bank - 1;
        for _ in 0..10 {
            o.record(addr(0, 0));
            o.record(addr(0, last));
        }
        // Only the single in-bank neighbour of each edge row is disturbed.
        assert_eq!(o.summary().rows_flippable, 2);
    }

    #[test]
    fn disturbance_resets_at_epoch() {
        let mut o = oracle(10);
        for _ in 0..8 {
            o.record(addr(0, 5));
        }
        o.end_epoch();
        for _ in 0..8 {
            o.record(addr(0, 5));
        }
        assert_eq!(o.summary().rows_flippable, 0);
    }

    #[test]
    fn flagged_rows_counted_once() {
        let mut o = oracle(10);
        for _ in 0..50 {
            o.record(addr(0, 1));
        }
        assert_eq!(o.summary().rows_over_trh, 1);
    }
}
