//! MLP-limited core model.

use aqua_dram::Time;
use aqua_workload::{MemoryRequest, RequestGenerator};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One core: a request stream gated by compute gaps and a bounded window of
/// outstanding misses.
///
/// Request `i` issues at `max(arrival_i, gate)` where `arrival_i` is the
/// previous issue plus the request's compute gap, and `gate` is the earliest
/// completion among outstanding misses once `mlp` of them are in flight —
/// the standard first-order model of an OoO core's memory-level parallelism.
pub struct CoreState {
    gen: Box<dyn RequestGenerator>,
    pending: MemoryRequest,
    arrival: Time,
    inflight: BinaryHeap<Reverse<Time>>,
    mlp: usize,
    issued: u64,
}

impl std::fmt::Debug for CoreState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreState")
            .field("label", &self.gen.label())
            .field("arrival", &self.arrival)
            .field("inflight", &self.inflight.len())
            .field("issued", &self.issued)
            .finish()
    }
}

impl CoreState {
    /// Creates a core driving `gen` with an MLP window of `mlp` misses.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is zero.
    pub fn new(mut gen: Box<dyn RequestGenerator>, mlp: u32) -> Self {
        assert!(mlp > 0, "MLP window must be positive");
        let pending = gen.next_request();
        CoreState {
            arrival: Time::ZERO + pending.gap,
            pending,
            gen,
            inflight: BinaryHeap::new(),
            mlp: mlp as usize,
            issued: 0,
        }
    }

    /// The earliest time this core can issue its pending request.
    pub fn ready_at(&self) -> Time {
        if self.inflight.len() >= self.mlp {
            match self.inflight.peek() {
                Some(&Reverse(gate)) => self.arrival.max(gate),
                None => self.arrival, // unreachable: len >= mlp >= 1
            }
        } else {
            self.arrival
        }
    }

    /// The request waiting to issue.
    pub fn pending(&self) -> MemoryRequest {
        self.pending
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Generator label for reports.
    pub fn label(&self) -> String {
        self.gen.label()
    }

    /// Commits the pending request as issued at `issue` and completing at
    /// `completion`; pulls the next request from the stream.
    pub fn commit(&mut self, issue: Time, completion: Time) {
        if self.inflight.len() >= self.mlp {
            self.inflight.pop();
        }
        self.inflight.push(Reverse(completion));
        self.issued += 1;
        self.pending = self.gen.next_request();
        self.arrival = issue + self.pending.gap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::{Duration, GlobalRowId};

    struct FixedGen {
        gap: Duration,
    }

    impl RequestGenerator for FixedGen {
        fn next_request(&mut self) -> MemoryRequest {
            MemoryRequest {
                row: GlobalRowId::new(1),
                gap: self.gap,
            }
        }
        fn label(&self) -> String {
            "fixed".into()
        }
    }

    fn core(gap_ns: u64, mlp: u32) -> CoreState {
        CoreState::new(
            Box::new(FixedGen {
                gap: Duration::from_ns(gap_ns),
            }),
            mlp,
        )
    }

    #[test]
    fn compute_bound_core_issues_at_gap_rate() {
        let mut c = core(100, 4);
        let mut issues = vec![];
        for _ in 0..5 {
            let t = c.ready_at();
            issues.push(t.as_ns());
            // Memory is instant: completion == issue.
            c.commit(t, t);
        }
        assert_eq!(issues, vec![100, 200, 300, 400, 500]);
    }

    #[test]
    fn mlp_window_stalls_the_core() {
        let mut c = core(0, 2);
        // Two requests issue immediately; each takes 1 us to complete.
        let t0 = c.ready_at();
        c.commit(t0, Time::from_us(1));
        let t1 = c.ready_at();
        c.commit(t1, Time::from_us(2));
        assert_eq!(t1, Time::ZERO);
        // Third request must wait for the first completion.
        assert_eq!(c.ready_at(), Time::from_us(1));
    }

    #[test]
    fn out_of_order_completions_gate_on_earliest() {
        let mut c = core(0, 2);
        let t = c.ready_at();
        c.commit(t, Time::from_us(5)); // slow miss
        let t = c.ready_at();
        c.commit(t, Time::from_us(1)); // fast miss completes first
        assert_eq!(c.ready_at(), Time::from_us(1));
    }

    #[test]
    fn issued_counter_advances() {
        let mut c = core(10, 4);
        for _ in 0..3 {
            let t = c.ready_at();
            c.commit(t, t);
        }
        assert_eq!(c.issued(), 3);
    }
}
