//! Sharded multi-channel simulation.
//!
//! DRAM channels are architecturally independent: each has its own banks,
//! row space, refresh schedule, and — in every scheme this repo models —
//! its own mitigation-engine instance (AQUA's trackers, RQA, and mapping
//! tables are all per-channel structures). [`ShardedSimulation`] exploits
//! that: it builds one complete single-channel [`Simulation`] per channel
//! (its own engine, banks, cores, fault plan, and a forked telemetry hub)
//! and fans the shards out on the [`crate::pool`] worker pool.
//!
//! Determinism is the contract: every shard is constructed and seeded in
//! channel order on the caller's thread, shards never share mutable state
//! while running, and results (reports, telemetry forks, panics) are
//! merged back in channel order after the pool drains. The output is
//! therefore byte-identical for any `shard_workers` count — `1` recovers
//! strictly serial execution on the caller's thread, and the bench
//! determinism suite diffs CSV/spans/journal bytes across 1, 2, and 8
//! workers to hold the line.
//!
//! Host-time accounting: the coordinator opens a `sim.sharded` wallclock
//! phase around fork + pool + merge, and each shard's profile is merged
//! under `sim.sharded;shard{i}` via
//! [`Telemetry::merge_from_prefixed`]. The root
//! `sim.sharded` row keeps the coordinator's *real* elapsed time while its
//! child time sums the per-shard run times, so on a parallel host the
//! speedup is visible as child time exceeding self+total time.

// Shard cells are mutexes only this runner locks, and each is taken
// exactly once; a poisoned lock is unreachable (job panics are contained
// by the pool's catch_unwind before a guard is held across them).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::{pool, RunReport, SimConfig, Simulation};
use aqua_dram::mitigation::Mitigation;
use aqua_faults::derive_cell_seed;
use aqua_telemetry::{MetricsPlane, Telemetry};
use aqua_workload::RequestGenerator;
use std::sync::{Arc, Mutex};

/// Runs one independent [`Simulation`] per DRAM channel and merges the
/// results deterministically.
///
/// The two factories are called once per channel, in channel order, on the
/// caller's thread: `engines(c)` builds channel `c`'s private mitigation
/// engine and `generators(c)` its core request streams. Channel 0 replays
/// the configured fault seed unchanged (so a 1-channel sharded run is
/// byte-identical to a plain [`Simulation`]); higher channels derive
/// distinct per-channel fault seeds.
///
/// # Example
///
/// ```no_run
/// use aqua_dram::mitigation::NoMitigation;
/// use aqua_dram::BaselineConfig;
/// use aqua_sim::{ShardedSimulation, SimConfig};
/// use aqua_workload::{spec, AddressSpace, RequestGenerator};
///
/// let base = BaselineConfig::paper_table1().with_channels(4);
/// let cfg = SimConfig::new(base).epochs(2);
/// let space = AddressSpace::new(base.geometry, 0.98);
/// let lbm = spec::by_name("lbm").unwrap();
/// let mut sim = ShardedSimulation::new(
///     cfg,
///     |_c| NoMitigation::new(base.geometry),
///     |c| {
///         (0..base.cores)
///             .map(|core| {
///                 Box::new(lbm.generator(&space, core, base.cores, 42 + u64::from(c)))
///                     as Box<dyn RequestGenerator>
///             })
///             .collect()
///     },
/// );
/// let report = sim.run();
/// println!("requests completed: {}", report.requests_done);
/// ```
pub struct ShardedSimulation<M, EF, GF>
where
    M: Mitigation,
    EF: FnMut(u32) -> M,
    GF: FnMut(u32) -> Vec<Box<dyn RequestGenerator>>,
{
    cfg: SimConfig,
    engines: EF,
    generators: GF,
    shard_workers: usize,
    telemetry: Telemetry,
    /// Live metrics plane plus the base source label; each channel shard
    /// publishes under `{label};ch{c}`.
    plane: Option<(Arc<MetricsPlane>, String)>,
}

impl<M, EF, GF> ShardedSimulation<M, EF, GF>
where
    M: Mitigation,
    EF: FnMut(u32) -> M,
    GF: FnMut(u32) -> Vec<Box<dyn RequestGenerator>>,
{
    /// Builds a sharded simulation over `cfg.base.channels` channels.
    pub fn new(cfg: SimConfig, engines: EF, generators: GF) -> Self {
        ShardedSimulation {
            cfg,
            engines,
            generators,
            shard_workers: 0,
            telemetry: Telemetry::disabled(),
            plane: None,
        }
    }

    /// Caps concurrent shard workers (`0` = auto: one per channel, bounded
    /// by the host's available parallelism). Worker count never changes
    /// results — only wallclock.
    pub fn shard_workers(mut self, workers: usize) -> Self {
        self.shard_workers = workers;
        self
    }

    /// Attaches the telemetry hub the merged results land in. Each shard
    /// runs against its own fork; forks are merged back in channel order.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches the live metrics plane. Each channel shard publishes its
    /// epoch snapshots under `{source};ch{c}` (the single-channel
    /// pass-through publishes as `{source};ch0`), which is what the
    /// plane's per-channel imbalance rollup groups on.
    pub fn attach_metrics_plane(&mut self, plane: Arc<MetricsPlane>, source: impl Into<String>) {
        self.plane = Some((plane, source.into()));
    }

    /// The simulation configuration of one channel shard: a single-channel
    /// view of the system, with channel 0 keeping the configured fault seed
    /// (byte-compatibility with the unsharded path) and higher channels
    /// deriving independent seeds.
    fn shard_config(&self, channel: u32) -> SimConfig {
        let mut cfg = self.cfg;
        cfg.base.channels = 1;
        if channel > 0 {
            if let Some(spec) = &mut cfg.faults {
                spec.seed = derive_cell_seed(spec.seed, "channel", &channel.to_string());
            }
        }
        cfg
    }

    /// Worker threads actually used for this topology.
    fn effective_workers(&self, channels: u32) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.shard_workers == 0 {
            auto
        } else {
            self.shard_workers
        };
        requested.min(channels as usize).max(1)
    }

    /// Runs every channel shard and merges the results.
    ///
    /// With a single channel this is an exact pass-through to
    /// [`Simulation::run`] (no fork, no `sim.sharded` phase, no report
    /// roll-up), so existing single-channel configurations are bit-for-bit
    /// unchanged.
    ///
    /// # Panics
    ///
    /// A panicking shard (e.g. its watchdog expiring) is re-raised on the
    /// caller's thread after all shards drain, lowest channel first, with
    /// the channel index prefixed to the original message — the original
    /// text is preserved verbatim so failure classifiers keyed on it (the
    /// bench watchdog taxonomy) still match.
    pub fn run(&mut self) -> RunReport {
        let channels = self.cfg.base.channels.max(1);
        if channels == 1 {
            let mut sim = Simulation::new(
                self.shard_config(0),
                (self.engines)(0),
                (self.generators)(0),
            );
            sim.attach_telemetry(self.telemetry.clone());
            if let Some((plane, source)) = &self.plane {
                sim.attach_metrics_plane(Arc::clone(plane), format!("{source};ch0"));
            }
            return sim.run();
        }
        let coordinator = self.telemetry.phase("sim.sharded");
        // Construct every shard serially, in channel order: engine and
        // generator factories may be stateful, and fork order is part of
        // the determinism contract.
        type ShardCell<M> = Mutex<Option<(Simulation<M>, Telemetry)>>;
        let shards: Vec<ShardCell<M>> = (0..channels)
            .map(|c| {
                let hub = self.telemetry.fork();
                let mut sim = Simulation::new(
                    self.shard_config(c),
                    (self.engines)(c),
                    (self.generators)(c),
                );
                sim.attach_telemetry(hub.clone());
                if let Some((plane, source)) = &self.plane {
                    sim.attach_metrics_plane(Arc::clone(plane), format!("{source};ch{c}"));
                }
                Mutex::new(Some((sim, hub)))
            })
            .collect();
        let workers = self.effective_workers(channels);
        // Channel labels feed the opt-in progress reporter only
        // (AQUA_BENCH_PROGRESS=1): a long multi-channel run shows which
        // channels are still in flight.
        let labels = (0..channels).map(|c| format!("ch{c}")).collect();
        let outcomes = pool::run_labeled(workers, &shards, labels, |_, cell| {
            let (mut sim, hub) = cell
                .lock()
                .unwrap()
                .take()
                .expect("each shard cell is taken exactly once");
            let report = sim.run();
            (report, hub)
        });
        let mut reports = Vec::with_capacity(channels as usize);
        for (c, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok((report, hub)) => {
                    self.telemetry
                        .merge_from_prefixed(&hub, &format!("sim.sharded;shard{c}"));
                    reports.push(report);
                }
                Err(msg) => panic!("channel {c}: {msg}"),
            }
        }
        coordinator.finish();
        let mut merged = merge_reports(reports);
        merged.telemetry = self.telemetry.summary();
        merged
    }
}

/// Folds per-channel reports into one system-level report, in channel
/// order: counts and busy durations sum, `per_core` concatenates
/// channel-major (core `j` of channel `c` lands at `c * cores + j`), the
/// oracle's window maximum takes the max across channels, and epoch counts
/// must agree.
fn merge_reports(reports: Vec<RunReport>) -> RunReport {
    let mut iter = reports.into_iter();
    let mut merged = match iter.next() {
        Some(first) => first,
        None => return RunReport::default(),
    };
    for r in iter {
        assert_eq!(
            merged.epochs, r.epochs,
            "every channel shard simulates the same epoch count"
        );
        merged.requests_done += r.requests_done;
        merged.per_core.extend(r.per_core);
        merged.data_busy += r.data_busy;
        merged.migration_busy += r.migration_busy;
        merged.table_busy += r.table_busy;
        merged.mitigation.row_migrations += r.mitigation.row_migrations;
        merged.mitigation.mitigations_triggered += r.mitigation.mitigations_triggered;
        merged.mitigation.victim_refreshes += r.mitigation.victim_refreshes;
        merged.mitigation.throttled += r.mitigation.throttled;
        merged.mitigation.violations += r.mitigation.violations;
        merged.oracle.max_window_activations = merged
            .oracle
            .max_window_activations
            .max(r.oracle.max_window_activations);
        merged.oracle.rows_over_trh += r.oracle.rows_over_trh;
        merged.oracle.total_activations += r.oracle.total_activations;
        merged.oracle.rows_flippable += r.oracle.rows_flippable;
        merged.oracle.avg_rows_166 += r.oracle.avg_rows_166;
        merged.oracle.avg_rows_500 += r.oracle.avg_rows_500;
        merged.oracle.avg_rows_1000 += r.oracle.avg_rows_1000;
        merged.integrity_violations += r.integrity_violations;
        merged.faults.injected += r.faults.injected;
        merged.faults.unsupported += r.faults.unsupported;
        merged.faults.applied += r.faults.applied;
        merged.faults.corruptions += r.faults.corruptions;
        merged.faults.recovered_rows += r.faults.recovered_rows;
        merged.faults.escaped_counted += r.faults.escaped_counted;
        merged.faults.dormant += r.faults.dormant;
        merged.faults.unaccounted += r.faults.unaccounted;
        merged.faults.engine_recovered += r.faults.engine_recovered;
        merged.faults.degraded_epochs += r.faults.degraded_epochs;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua::{AquaConfig, AquaEngine};
    use aqua_dram::mitigation::NoMitigation;
    use aqua_dram::BaselineConfig;
    use aqua_faults::FaultSpec;
    use aqua_workload::attack::Hammer;
    use aqua_workload::AddressSpace;

    fn base(channels: u32) -> BaselineConfig {
        BaselineConfig::tiny().with_channels(channels)
    }

    fn space() -> AddressSpace {
        AddressSpace::new(BaselineConfig::tiny().geometry, 0.75)
    }

    fn aqua_engine(t_rh: u64) -> AquaEngine {
        let cfg =
            AquaConfig::for_rowhammer_threshold(t_rh, &BaselineConfig::tiny()).with_rqa_rows(512);
        let cfg = AquaConfig {
            tracker_entries_per_bank: 256,
            fpt_entries: 1024,
            ..cfg
        };
        AquaEngine::new(cfg).unwrap()
    }

    fn hammer_for(channel: u32) -> Vec<Box<dyn RequestGenerator>> {
        // Distinct per-channel hot rows so shards do different work.
        vec![
            Box::new(Hammer::double_sided(&space(), 0, 100 + channel * 8))
                as Box<dyn RequestGenerator>,
        ]
    }

    fn sharded_run(channels: u32, workers: usize, faults: Option<FaultSpec>) -> RunReport {
        let mut cfg = SimConfig::new(base(channels)).epochs(2).t_rh(1000);
        if let Some(spec) = faults {
            cfg = cfg.faults(spec);
        }
        let mut sim =
            ShardedSimulation::new(cfg, |_| aqua_engine(1000), hammer_for).shard_workers(workers);
        sim.run()
    }

    #[test]
    fn single_channel_matches_the_unsharded_simulation_exactly() {
        let cfg = SimConfig::new(base(1)).epochs(2).t_rh(1000);
        let mut plain = Simulation::new(cfg, aqua_engine(1000), hammer_for(0));
        let mut sharded = ShardedSimulation::new(cfg, |_| aqua_engine(1000), hammer_for);
        assert_eq!(plain.run(), sharded.run());
    }

    #[test]
    fn shard_worker_count_never_changes_results() {
        let faults = Some(FaultSpec {
            seed: 11,
            events_per_epoch: 24,
        });
        let serial = sharded_run(4, 1, faults);
        assert_eq!(serial, sharded_run(4, 2, faults));
        assert_eq!(serial, sharded_run(4, 8, faults));
        // Faults were injected on every channel (channel 0 keeps the seed,
        // the others derive their own) and every corruption is accounted.
        assert_eq!(serial.faults.injected, 4 * 48);
        assert_eq!(
            serial.faults.corruptions,
            serial.faults.recovered_rows
                + serial.faults.escaped_counted
                + serial.faults.dormant
                + serial.faults.unaccounted
        );
    }

    #[test]
    fn shards_sum_into_the_system_report() {
        let whole = sharded_run(4, 2, None);
        let single = sharded_run(1, 1, None);
        assert_eq!(whole.epochs, single.epochs);
        assert_eq!(whole.per_core.len(), 4);
        assert_eq!(
            whole.requests_done,
            whole.per_core.iter().sum::<u64>(),
            "per-core counts concatenate across channels"
        );
        // Channel 0 of the sharded system does exactly the single-channel
        // run's work (same seed, same generator, same engine).
        assert_eq!(whole.per_core[0], single.requests_done);
        assert!(whole.requests_done > single.requests_done);
        assert!(whole.oracle.total_activations > single.oracle.total_activations);
    }

    #[test]
    fn shard_panics_propagate_with_the_channel_index() {
        let cfg = SimConfig::new(base(2))
            .epochs(2)
            .t_rh(1000)
            .watchdog(std::time::Duration::ZERO);
        let outcome = std::panic::catch_unwind(move || {
            let mut sim = ShardedSimulation::new(
                cfg,
                |_| NoMitigation::new(BaselineConfig::tiny().geometry),
                hammer_for,
            )
            .shard_workers(1);
            sim.run()
        });
        let msg = pool::panic_message(outcome.unwrap_err());
        assert!(msg.starts_with("channel 0: "), "{msg}");
        assert!(msg.contains("watchdog"), "{msg}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_merges_shards_in_channel_order() {
        use aqua_telemetry::{Telemetry, TelemetryConfig};
        let cfg = SimConfig::new(base(4)).epochs(2).t_rh(1000);
        let run = |workers: usize| {
            let mut sim = ShardedSimulation::new(cfg, |_| aqua_engine(1000), hammer_for)
                .shard_workers(workers);
            let hub = Telemetry::new(TelemetryConfig::default());
            sim.attach_telemetry(hub.clone());
            let report = sim.run();
            (report, hub)
        };
        let (report, hub) = run(2);
        let summary = hub.summary().unwrap();
        assert_eq!(summary.counter("sim.requests"), Some(report.requests_done));
        let wall = summary.wallclock.expect("sharded run profiles wallclock");
        // One root: the coordinator. Shard run phases nest under it.
        assert_eq!(
            wall.host_wallclock_ns,
            wall.phase("sim.sharded").unwrap().total_ns
        );
        for c in 0..4 {
            let path = format!("sim.sharded;shard{c};sim.run");
            assert!(wall.path(&path).is_some(), "missing {path}");
        }
        // Span streams from different shards stay disentangled: parents
        // resolve and ids are unique after the ordered merge.
        let spans = hub.spans();
        let mut ids = std::collections::BTreeSet::new();
        for s in &spans {
            assert!(ids.insert(s.id), "duplicate span id after shard merge");
            if let Some(p) = s.parent {
                assert!(spans.iter().any(|o| o.id == p), "dangling parent");
            }
        }
        // Byte-level determinism of the merged telemetry: a serial run
        // renders the same span stream as a 2-worker run.
        let (_, hub1) = run(1);
        let fmt = |h: &Telemetry| format!("{:?}", h.spans());
        assert_eq!(fmt(&hub1), fmt(&hub));
    }
}
