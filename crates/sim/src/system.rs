//! The system simulator: cores + channel + banks + mitigation + oracle.

use crate::{ActivationOracle, CoreState, CostAblation, RunReport, ShadowMemory};
use aqua_dram::mitigation::{
    DegradedMode, MigrationKind, Mitigation, MitigationAction, MitigationStats,
};
use aqua_dram::{
    Bank, BaselineConfig, Channel, ChannelStats, DramError, Duration, GlobalRowId,
    RefreshScheduler, Time,
};
use aqua_faults::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultReport, FaultSpec, InjectOutcome,
};
use aqua_telemetry::{
    AlertEngine, AlertNotice, Counter, EpochRecord, EventKind, Histogram, HistogramData,
    MetricsPlane, SnapshotTracker, Telemetry,
};
use aqua_workload::RequestGenerator;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The baseline system (geometry, timing, cores, MLP, epoch length).
    pub base: BaselineConfig,
    /// Number of epochs (refresh windows) to simulate.
    pub epochs: u64,
    /// Rowhammer threshold the oracle checks against.
    pub t_rh: u64,
    /// Seeded fault-injection campaign (`None` disables injection).
    pub faults: Option<FaultSpec>,
    /// Wall-clock budget for the whole run. When exceeded, the run panics
    /// with [`DramError::WatchdogExpired`]'s message; the bench worker pool
    /// catches the unwind and converts the hung cell into a failed cell
    /// instead of stalling the campaign.
    pub watchdog: Option<std::time::Duration>,
    /// Soft wall-clock deadline: the escalation step before the hard
    /// `watchdog`. A run that exceeds it keeps going, but emits one
    /// straggler report to stderr (epoch progress, requests served so far),
    /// bumps the `sim.straggler_reports` counter, and records a
    /// `StragglerReport` trace event — so a long campaign names its slow
    /// cells while they are still running instead of only after the hard
    /// watchdog kills them.
    pub soft_watchdog: Option<std::time::Duration>,
    /// Which mitigation costs to pretend are free (slowdown attribution's
    /// what-if runs; [`CostAblation::NONE`] is the normal simulation).
    pub ablate: CostAblation,
}

impl SimConfig {
    /// Creates a configuration with the paper defaults (2 epochs, `T_RH` 1K).
    pub fn new(base: BaselineConfig) -> Self {
        SimConfig {
            base,
            epochs: 2,
            t_rh: 1000,
            faults: None,
            watchdog: None,
            soft_watchdog: None,
            ablate: CostAblation::NONE,
        }
    }

    /// Sets the number of simulated epochs.
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the oracle's Rowhammer threshold.
    pub fn t_rh(mut self, t_rh: u64) -> Self {
        self.t_rh = t_rh;
        self
    }

    /// Enables the seeded fault campaign described by `spec`.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Sets the per-run wall-clock watchdog budget.
    pub fn watchdog(mut self, budget: std::time::Duration) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// Sets the soft deadline that triggers a straggler report before the
    /// hard watchdog fires.
    pub fn soft_watchdog(mut self, deadline: std::time::Duration) -> Self {
        self.soft_watchdog = Some(deadline);
        self
    }

    /// Marks mitigation costs as free for a what-if attribution run.
    pub fn ablate(mut self, ablate: CostAblation) -> Self {
        self.ablate = ablate;
        self
    }
}

/// Counters sampled at the previous epoch boundary, for per-epoch deltas.
#[derive(Debug, Default, Clone, Copy)]
struct EpochBaseline {
    requests: u64,
    mitigation: MitigationStats,
    channel: ChannelStats,
}

/// One simulation run binding a mitigation scheme to a set of core streams.
pub struct Simulation<M: Mitigation> {
    cfg: SimConfig,
    banks: Vec<Bank>,
    channel: Channel,
    refresh: RefreshScheduler,
    mitigation: M,
    oracle: ActivationOracle,
    shadow: ShadowMemory,
    cores: Vec<CoreState>,
    burst: Duration,
    telemetry: Telemetry,
    /// Per-access memory latency (request issue to data completion), ps.
    access_hist: Histogram,
    /// Channel-blocking stall of each row migration, ps.
    migration_hist: Histogram,
    /// Mapping-table lookup latency on the access critical path, ps.
    lookup_hist: Histogram,
    /// Local batches for the three hot histograms above. The serve path
    /// records into these lock-free accumulators; [`Self::flush_histograms`]
    /// merges them into the shared handles at epoch boundaries.
    access_local: HistogramData,
    migration_local: HistogramData,
    lookup_local: HistogramData,
    /// Reusable buffer for mitigation actions: the per-access and
    /// refresh-tick paths borrow it via `mem::take`, so consultations that
    /// return nothing (the overwhelmingly common case) never allocate.
    action_scratch: Vec<MitigationAction>,
    activations: Counter,
    /// Requests served, feeding the wallclock layer's accesses/sec metric.
    requests: Counter,
    /// Replay cursor over the generated fault plan (`None`: no campaign).
    injector: Option<FaultInjector>,
    /// Rows whose translation an injected fault corrupted, pending
    /// end-of-run accounting.
    watch: BTreeSet<u64>,
    /// Watched rows whose corruption surfaced as a counted shadow violation.
    escaped: BTreeSet<u64>,
    /// Pending DRAM command faults: each suppresses the mitigation
    /// notification of one activation (the tracker's blind spot).
    suppress_notifications: u64,
    /// Plan-level fault accounting accumulated during the run.
    freport: FaultReport,
    faults_injected: Counter,
    integrity_escapes: Counter,
    degraded_epochs: Counter,
    straggler_reports: Counter,
    alerts_fired: Counter,
    /// Deterministic alert rules, evaluated at every epoch boundary over
    /// this run's own snapshot. Present whenever an enabled hub is
    /// attached — independent of the metrics plane, so the event ring is
    /// byte-identical with the plane on or off.
    alerts: Option<AlertEngine>,
    /// Per-run snapshot history (feeds alert deltas and the plane).
    snapshots: SnapshotTracker,
    /// Live metrics plane and this run's source label (`scheme/wl;chN`).
    /// Strictly an observer: published snapshots are copies, and nothing
    /// simulated ever reads back from it.
    plane: Option<(Arc<MetricsPlane>, String)>,
}

impl<M: Mitigation> Simulation<M> {
    /// Builds a simulation. Each generator drives one core (1 to 4 streams).
    ///
    /// # Panics
    ///
    /// Panics if no generators are supplied or more than `cfg.base.cores`.
    pub fn new(
        cfg: SimConfig,
        mitigation: M,
        generators: impl IntoIterator<Item = Box<dyn RequestGenerator>>,
    ) -> Self {
        let cores: Vec<CoreState> = generators
            .into_iter()
            .map(|g| CoreState::new(g, cfg.base.mlp))
            .collect();
        assert!(
            !cores.is_empty() && cores.len() <= cfg.base.cores as usize,
            "between 1 and {} generators required",
            cfg.base.cores
        );
        let mut shadow = ShadowMemory::new(&cfg.base.geometry);
        for row in mitigation.reserved_rows() {
            shadow.vacate(row);
        }
        let detached = Telemetry::disabled();
        let injector = cfg.faults.map(|spec| {
            FaultInjector::new(FaultPlan::generate(
                spec,
                cfg.epochs,
                cfg.base.epoch.as_ps(),
            ))
        });
        Simulation {
            banks: (0..cfg.base.geometry.total_banks())
                .map(|_| Bank::with_policy(cfg.base.timing, cfg.base.page_policy))
                .collect(),
            channel: Channel::new(),
            refresh: RefreshScheduler::new(&cfg.base.timing),
            oracle: ActivationOracle::new(&cfg.base.geometry, cfg.t_rh),
            shadow,
            mitigation,
            cores,
            burst: cfg.base.timing.t_ccd_s,
            cfg,
            telemetry: detached.clone(),
            access_hist: detached.histogram("mem.access_ps"),
            migration_hist: detached.histogram("migration.stall_ps"),
            lookup_hist: detached.histogram("table.lookup_ps"),
            access_local: HistogramData::new(),
            migration_local: HistogramData::new(),
            lookup_local: HistogramData::new(),
            action_scratch: Vec::new(),
            activations: detached.counter("sim.activations"),
            requests: detached.counter("sim.requests"),
            injector,
            watch: BTreeSet::new(),
            escaped: BTreeSet::new(),
            suppress_notifications: 0,
            freport: FaultReport::default(),
            faults_injected: detached.counter("sim.faults_injected"),
            integrity_escapes: detached.counter("sim.integrity_escapes"),
            degraded_epochs: detached.counter("sim.degraded_epochs"),
            straggler_reports: detached.counter("sim.straggler_reports"),
            alerts_fired: detached.counter("sim.alerts_fired"),
            alerts: None,
            snapshots: SnapshotTracker::new(),
            plane: None,
        }
    }

    /// Attaches a telemetry hub: registers the simulator's histograms and
    /// counters and forwards the hub to the mitigation scheme so every layer
    /// records into the same registry.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.access_hist = telemetry.histogram("mem.access_ps");
        self.migration_hist = telemetry.histogram("migration.stall_ps");
        self.lookup_hist = telemetry.histogram("table.lookup_ps");
        self.activations = telemetry.counter("sim.activations");
        self.requests = telemetry.counter("sim.requests");
        self.faults_injected = telemetry.counter("sim.faults_injected");
        self.integrity_escapes = telemetry.counter("sim.integrity_escapes");
        self.degraded_epochs = telemetry.counter("sim.degraded_epochs");
        self.straggler_reports = telemetry.counter("sim.straggler_reports");
        self.alerts_fired = telemetry.counter("sim.alerts_fired");
        // Deterministic alerting rides on the hub, not the plane: it is
        // active whenever telemetry records at all, so the event ring (and
        // every export derived from it) cannot depend on whether anyone is
        // watching live.
        self.alerts = telemetry.is_enabled().then(AlertEngine::from_env);
        self.mitigation.attach_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Attaches the live metrics plane. `source` labels this run's series
    /// (`scheme/workload;chN` by convention). Observer-only: see the
    /// determinism rules on [`aqua_telemetry::expose`].
    pub fn attach_metrics_plane(&mut self, plane: Arc<MetricsPlane>, source: impl Into<String>) {
        self.plane = Some((plane, source.into()));
    }

    /// The attached telemetry hub (disabled if none was attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The mitigation scheme (for scheme-specific statistics after a run).
    pub fn mitigation(&self) -> &M {
        &self.mitigation
    }

    /// Consumes the simulation and returns the mitigation engine, for
    /// callers that need scheme-specific statistics (e.g. the Figure 10
    /// lookup breakdown) without keeping the whole simulator alive.
    pub fn into_mitigation(self) -> M {
        self.mitigation
    }

    /// The security oracle.
    pub fn oracle(&self) -> &ActivationOracle {
        &self.oracle
    }

    /// Chrome-trace span name for one migration kind.
    fn migration_span_name(kind: MigrationKind) -> &'static str {
        match kind {
            MigrationKind::QuarantineInstall => "migration.install",
            MigrationKind::QuarantineInternal => "migration.internal",
            MigrationKind::QuarantineEvict => "migration.evict",
            MigrationKind::Swap => "migration.swap",
            MigrationKind::Unswap => "migration.unswap",
        }
    }

    /// Applies and drains `actions`, opening a child span per action;
    /// returns the (possibly throttle-delayed) request completion time. The
    /// buffer is left empty so the caller can hand it back to the scratch
    /// slot without reallocation.
    fn apply_actions(
        &mut self,
        actions: &mut Vec<MitigationAction>,
        at: Time,
        mut completion: Time,
    ) -> Time {
        for action in actions.drain(..) {
            match action {
                MitigationAction::BlockChannel {
                    duration,
                    kind,
                    movement,
                } => {
                    let duration = if self.cfg.ablate.free_migration_blocking {
                        Duration::ZERO
                    } else {
                        duration
                    };
                    let start = self.channel.reserve_migration(at, duration);
                    self.telemetry.span_record(
                        Self::migration_span_name(kind),
                        start.as_ps(),
                        (start + duration).as_ps(),
                    );
                    self.migration_local.record(duration.as_ps());
                    self.shadow.apply(movement);
                }
                MitigationAction::RefreshRows(rows) => {
                    for r in rows {
                        self.banks[r.bank.index() as usize].refresh_row(r.row, at);
                        // Victim refreshes are activations the *oracle* sees
                        // but the scheme's tracker does not — the Half-Double
                        // blind spot.
                        self.oracle.record_refresh(r);
                    }
                    self.telemetry
                        .span_record("sim.victim_refresh", at.as_ps(), at.as_ps());
                }
                MitigationAction::Throttle { delay } => {
                    self.telemetry.span_record(
                        "sim.throttle",
                        completion.as_ps(),
                        (completion + delay).as_ps(),
                    );
                    completion += delay;
                }
                MitigationAction::TableWrites { count } => {
                    let dur = if self.cfg.ablate.free_table_traffic {
                        Duration::ZERO
                    } else {
                        self.burst
                    };
                    let mut last = at;
                    for _ in 0..count {
                        last = self.channel.reserve_table_access(at, dur) + dur;
                    }
                    self.telemetry
                        .span_record("sim.table_writes", at.as_ps(), last.as_ps());
                }
            }
        }
        completion
    }

    /// Consults the mitigation about an activation of `phys` at `at` and
    /// applies whatever it orders, wrapped in a `sim.mitigation` root span
    /// so the engine's decision spans and the per-action migration spans
    /// nest under one causal record. The root is *speculative*: on the
    /// overwhelmingly common quiet path (no actions, no engine spans) it is
    /// discarded without ever touching the span lock, and it materializes —
    /// with correct id ordering and nesting — only when a child span
    /// actually attaches.
    fn consult_mitigation(&mut self, phys: aqua_dram::RowAddr, at: Time, completion: Time) -> Time {
        let sp = self.telemetry.span_speculate("sim.mitigation", at.as_ps());
        let mut actions = std::mem::take(&mut self.action_scratch);
        self.notify_activation_into(phys, at, &mut actions);
        if actions.is_empty() {
            sp.end_if_used(at.as_ps());
            self.action_scratch = actions;
            return completion;
        }
        let completion = self.apply_actions(&mut actions, at, completion);
        self.action_scratch = actions;
        let busy_until = self.channel.blocked_until().max(completion).max(at);
        sp.end(busy_until.as_ps());
        completion
    }

    /// Applies one scheduled fault event. DRAM command faults are handled at
    /// the simulator level (the mitigation never learns of one activation);
    /// everything else is offered to the scheme, and any corrupted rows it
    /// reports are admitted to the watch list for end-of-run accounting.
    fn apply_fault(&mut self, ev: FaultEvent, now: Time) {
        self.freport.injected += 1;
        self.faults_injected.inc();
        self.telemetry.record(
            ev.at_ps,
            EventKind::FaultInjected {
                fault: ev.kind.name(),
            },
        );
        match ev.kind {
            FaultKind::DramCommandFault => {
                self.suppress_notifications += 1;
                self.freport.applied += 1;
            }
            kind => match self.mitigation.inject_fault(&kind, now) {
                InjectOutcome::Unsupported => self.freport.unsupported += 1,
                InjectOutcome::Applied => self.freport.applied += 1,
                InjectOutcome::CorruptedTranslation { rows } => {
                    for r in rows {
                        // `corruptions` counts distinct watched rows, so the
                        // end-of-run audit partitions it exactly into
                        // recovered + escaped + dormant + unaccounted.
                        if self.watch.insert(r) {
                            self.freport.corruptions += 1;
                        }
                    }
                }
            },
        }
    }

    /// Notifies the mitigation of an activation unless a pending DRAM
    /// command fault swallows the notification (the oracle, being physical
    /// ground truth, always sees the activation regardless).
    fn notify_activation_into(
        &mut self,
        phys: aqua_dram::RowAddr,
        at: Time,
        actions: &mut Vec<MitigationAction>,
    ) {
        if self.suppress_notifications > 0 {
            self.suppress_notifications -= 1;
            return;
        }
        self.mitigation.on_activation_into(phys, at, actions);
    }

    /// Records an activation with the oracle and trace (the oracle reports
    /// first-time threshold crossings, which become trace events).
    fn record_activation(&mut self, phys: aqua_dram::RowAddr, at: Time) {
        self.activations.inc();
        self.telemetry.record(
            at.as_ps(),
            EventKind::Activate {
                bank: phys.bank.index() as u64,
                row: phys.row as u64,
            },
        );
        if self.oracle.record(phys) {
            self.telemetry.record(
                at.as_ps(),
                EventKind::ThresholdCrossed {
                    row: self
                        .cfg
                        .base
                        .geometry
                        .flatten(phys)
                        .map(|g| g.index())
                        .unwrap_or(u64::MAX),
                    count: self.oracle.window_count(phys),
                },
            );
        }
    }

    /// Records a `sim.bank_block` span when a bank access had to wait for an
    /// exclusive migration to release the channel.
    fn note_bank_block(&self, t: Time, blocked: Time) {
        if blocked > t {
            self.telemetry
                .span_record("sim.bank_block", t.as_ps(), blocked.as_ps());
        }
    }

    /// Records a `sim.queue_wait` span when ready data had to queue behind
    /// other bus traffic before its burst slot.
    fn note_queue_wait(&self, ready: Time, slot: Time) {
        if slot > ready {
            self.telemetry
                .span_record("sim.queue_wait", ready.as_ps(), slot.as_ps());
        }
    }

    /// Serves one request from core `ci` issued at `t0`; returns completion.
    fn serve(&mut self, ci: usize, t0: Time) {
        let ablate = self.cfg.ablate;
        let req = self.cores[ci].pending();
        let tr = self.mitigation.translate(req.row, t0);
        let lookup_latency = if ablate.free_lookup_latency {
            Duration::ZERO
        } else {
            tr.lookup_latency
        };
        let lookup_start = self.refresh.next_available(t0 + lookup_latency);
        let mut t = lookup_start;

        // Extra in-DRAM mapping-table read on the critical path.
        if let Some(trow) = tr.table_row {
            let blocked = self.channel.blocked_until();
            self.note_bank_block(t, blocked);
            let start = t.max(blocked);
            let res = self.banks[trow.bank.index() as usize].access(trow.row, start);
            let table_burst = if ablate.free_table_traffic {
                Duration::ZERO
            } else {
                self.burst
            };
            let slot = self
                .channel
                .reserve_table_access(res.data_ready, table_burst);
            self.note_queue_wait(res.data_ready, slot);
            if res.activated {
                self.record_activation(trow, res.data_ready);
                self.consult_mitigation(trow, res.data_ready, res.data_ready);
            }
            if !ablate.free_lookup_latency {
                // The access's critical path waits for the table read; under
                // the lookup ablation the walk happens off the critical path
                // (its bank and bus occupancy above still stand).
                t = slot + table_burst;
            }
        }
        // Table-lookup latency: the scheme's SRAM lookup plus any in-DRAM
        // table walk that just happened on the critical path.
        self.lookup_local
            .record(lookup_latency.as_ps() + t.saturating_since(lookup_start).as_ps());

        let phys = tr.phys;
        // End-to-end integrity: the translation must resolve to the physical
        // row actually holding the requested row's data.
        let ok = self.shadow.verify(req.row, phys);
        if !ok && self.watch.contains(&req.row.index()) && self.escaped.insert(req.row.index()) {
            // The corruption surfaced as a counted violation: the row is
            // accounted for.
            self.integrity_escapes.inc();
        }
        let blocked = self.channel.blocked_until();
        self.note_bank_block(t, blocked);
        let start = t.max(blocked);
        let res = self.banks[phys.bank.index() as usize].access(phys.row, start);
        let slot = self.channel.reserve_burst(res.data_ready, self.burst);
        self.note_queue_wait(res.data_ready, slot);
        let mut completion = slot + self.burst;
        if res.activated {
            self.record_activation(phys, completion);
            completion = self.consult_mitigation(phys, completion, completion);
        }
        self.access_local
            .record(completion.saturating_since(t0).as_ps());
        self.requests.inc();
        self.cores[ci].commit(t0, completion);
    }

    /// Merges the serve path's locally batched histogram samples into the
    /// shared telemetry handles. Called at epoch boundaries and end of run,
    /// so the per-sample path never takes a lock.
    fn flush_histograms(&mut self) {
        self.access_hist.merge(&self.access_local);
        self.migration_hist.merge(&self.migration_local);
        self.lookup_hist.merge(&self.lookup_local);
        self.access_local = HistogramData::new();
        self.migration_local = HistogramData::new();
        self.lookup_local = HistogramData::new();
    }

    /// Samples one epoch record (deltas against `prev`) into the time series
    /// and advances the baseline. Runs *before* the scheme's `end_epoch` so
    /// gauges see the closing epoch's state.
    fn sample_epoch(&mut self, epoch: u64, end: Time, prev: &mut EpochBaseline) {
        self.flush_histograms();
        self.telemetry
            .record(end.as_ps(), EventKind::EpochRollover { epoch });
        if let DegradedMode::VictimRefresh { banks } = self.mitigation.degraded_mode() {
            self.degraded_epochs.add(banks.len() as u64);
        }
        let requests: u64 = self.cores.iter().map(|c| c.issued()).sum();
        let mitigation = self.mitigation.mitigation_stats();
        let channel = self.channel.stats();
        let d_mit = mitigation.diff(&prev.mitigation);
        let epoch_ps = self.cfg.base.epoch.as_ps().max(1) as f64;
        let frac = |busy: Duration, before: Duration| {
            busy.saturating_sub(before).as_ps() as f64 / epoch_ps
        };
        self.telemetry.push_epoch(EpochRecord {
            epoch,
            end_ps: end.as_ps(),
            requests_done: requests - prev.requests,
            migrations: d_mit.row_migrations,
            mitigations_triggered: d_mit.mitigations_triggered,
            victim_refreshes: d_mit.victim_refreshes,
            throttled: d_mit.throttled,
            data_busy_frac: frac(channel.data_busy, prev.channel.data_busy),
            migration_busy_frac: frac(channel.migration_busy, prev.channel.migration_busy),
            table_busy_frac: frac(channel.table_busy, prev.channel.table_busy),
            gauges: self
                .mitigation
                .epoch_gauges()
                .into_iter()
                .map(|(name, v)| (name.to_string(), v))
                .collect(),
        });
        *prev = EpochBaseline {
            requests,
            mitigation,
            channel,
        };
        self.observe_epoch(epoch);
    }

    /// The epoch hook of the live metrics plane: captures a snapshot of
    /// this run's hub, evaluates the deterministic alert rules against it,
    /// and publishes the snapshot to the plane when one is attached.
    ///
    /// Alert firings are recorded into the event ring (at `ts_ps` 0, like
    /// the straggler escalation: the rule crossing is an epoch-boundary
    /// observation, not a simulated-time event) and counted on
    /// `sim.alerts_fired` whether or not a plane is watching, so every
    /// deterministic output is byte-identical with the plane on or off.
    fn observe_epoch(&mut self, epoch: u64) {
        if self.alerts.is_none() && self.plane.is_none() {
            return;
        }
        let Some(snap) = self.snapshots.capture(&self.telemetry) else {
            return;
        };
        if let Some(engine) = &mut self.alerts {
            for firing in engine.evaluate(&snap) {
                self.alerts_fired.inc();
                self.telemetry.record(
                    0,
                    EventKind::AlertFired {
                        rule: firing.rule,
                        epoch,
                    },
                );
                eprintln!(
                    "warning: [alert] {} fired at epoch {epoch}: observed {} vs threshold {} ({})",
                    firing.rule,
                    firing.value,
                    firing.threshold,
                    self.mitigation.name(),
                );
                if let Some((plane, source)) = &self.plane {
                    plane.note_alert(AlertNotice {
                        rule: firing.rule.to_string(),
                        value: firing.value,
                        threshold: firing.threshold,
                        source: source.clone(),
                        host_time: false,
                    });
                }
            }
        }
        if let Some((plane, source)) = &self.plane {
            plane.publish(source, snap);
        }
    }

    /// Emits the one-shot straggler escalation: a human-readable stderr
    /// line naming the slow cell and its progress, a counter bump, and a
    /// trace event. Fired at most once per run, only between the soft
    /// deadline and the hard watchdog.
    fn report_straggler(
        &self,
        epoch_idx: u64,
        elapsed: std::time::Duration,
        soft: std::time::Duration,
    ) {
        let requests: u64 = self.cores.iter().map(|c| c.issued()).sum();
        let hard = match self.cfg.watchdog {
            Some(b) => format!("{} ms", b.as_millis()),
            None => "none".to_string(),
        };
        eprintln!(
            "[straggler] {} past soft deadline {} ms (elapsed {} ms, hard watchdog {hard}): \
             epoch {epoch_idx}/{}, {requests} requests served",
            self.mitigation.name(),
            soft.as_millis(),
            elapsed.as_millis(),
            self.cfg.epochs,
        );
        self.straggler_reports.inc();
        self.telemetry.record(
            0, // host-time escalation; carries no meaningful simulated time
            EventKind::StragglerReport {
                epoch: epoch_idx,
                elapsed_ms: elapsed.as_millis() as u64,
            },
        );
        if let Some((plane, _)) = &self.plane {
            plane.update_cells(|c| c.stragglers += 1);
        }
    }

    /// Runs for `cfg.epochs` refresh windows and reports the results.
    ///
    /// # Panics
    ///
    /// Panics with [`DramError::WatchdogExpired`]'s message if the
    /// configured wall-clock watchdog budget is exceeded (the bench worker
    /// pool catches the unwind and marks the cell failed).
    pub fn run(&mut self) -> RunReport {
        let epoch_len = self.cfg.base.epoch;
        let end = Time::ZERO + epoch_len.checked_scale(self.cfg.epochs);
        let t_refi = self.cfg.base.timing.t_refi;
        let mut next_epoch = Time::ZERO + epoch_len;
        let mut next_tick = Time::ZERO + t_refi;
        let mut epoch_idx: u64 = 0;
        let mut baseline = EpochBaseline::default();
        let started = std::time::Instant::now();
        let mut watchdog_check: u32 = 0;
        let mut straggler_reported = false;
        // Wallclock phases bracket coarse units only (the whole run, one
        // epoch, one refresh drain) — never the per-access serve path, so
        // the profiler cannot perturb what it measures.
        let run_phase = self.telemetry.phase("sim.run");
        let mut epoch_phase = self.telemetry.phase("sim.epoch");
        while let Some((ci, t)) = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.ready_at()))
            .min_by_key(|&(_, t)| t)
        {
            if t >= end {
                break;
            }
            if self.cfg.watchdog.is_some() || self.cfg.soft_watchdog.is_some() {
                // Check wall clock on the first serve and every 1024 after:
                // cheap enough to catch a hung cell within a fraction of the
                // budget, and the first-serve check makes a zero budget
                // deterministic (any cell that serves at all trips it).
                watchdog_check = watchdog_check.wrapping_add(1);
                if watchdog_check == 1 || watchdog_check.is_multiple_of(1024) {
                    let elapsed = started.elapsed();
                    if let Some(soft) = self.cfg.soft_watchdog {
                        if !straggler_reported && elapsed > soft {
                            straggler_reported = true;
                            self.report_straggler(epoch_idx, elapsed, soft);
                        }
                    }
                    if let Some(budget) = self.cfg.watchdog {
                        if elapsed > budget {
                            let err = DramError::WatchdogExpired {
                                budget_ms: budget.as_millis() as u64,
                            };
                            panic!("{err}");
                        }
                    }
                }
            }
            while let Some(ev) = self.injector.as_mut().and_then(|inj| inj.due(t.as_ps())) {
                self.apply_fault(ev, t);
            }
            if t >= next_tick {
                // The phase opens only when at least one tick is due, so an
                // idle check costs no clock read.
                let _drain = self.telemetry.phase("sim.refresh_drain");
                while t >= next_tick {
                    // Background work (lazy RQA drain, pending unswaps) gets
                    // its own root span, separate from demand-path
                    // consultations. Speculative: a quiet tick pays no span
                    // lock.
                    let sp = self
                        .telemetry
                        .span_speculate("sim.refresh_tick", next_tick.as_ps());
                    let mut actions = std::mem::take(&mut self.action_scratch);
                    self.mitigation
                        .on_refresh_tick_into(next_tick, &mut actions);
                    if actions.is_empty() {
                        sp.end_if_used(next_tick.as_ps());
                    } else {
                        self.apply_actions(&mut actions, next_tick, next_tick);
                        sp.end(self.channel.blocked_until().max(next_tick).as_ps());
                    }
                    self.action_scratch = actions;
                    next_tick += t_refi;
                }
            }
            while t >= next_epoch {
                epoch_phase.finish();
                {
                    let _end = self.telemetry.phase("sim.epoch_end");
                    self.sample_epoch(epoch_idx, next_epoch, &mut baseline);
                    self.mitigation.end_epoch();
                    self.oracle.end_epoch();
                }
                epoch_phase = self.telemetry.phase("sim.epoch");
                next_epoch += epoch_len;
                epoch_idx += 1;
            }
            self.serve(ci, t);
        }
        epoch_phase.finish();
        // Close out remaining epoch boundaries. Any still-undelivered fault
        // events fire first, so every scheduled fault is accounted for even
        // when the cores drained early.
        while let Some(ev) = self.injector.as_mut().and_then(|inj| inj.due(end.as_ps())) {
            self.apply_fault(ev, end);
        }
        while next_epoch <= end {
            let _end = self.telemetry.phase("sim.epoch_end");
            self.sample_epoch(epoch_idx, next_epoch, &mut baseline);
            self.mitigation.end_epoch();
            self.oracle.end_epoch();
            next_epoch += epoch_len;
            epoch_idx += 1;
        }
        // Close the run phase before the summary is taken so the whole
        // profile (including this run's root total) lands in the report.
        self.flush_histograms();
        run_phase.finish();
        let faults = self.close_fault_accounting(end);
        let stats = self.channel.stats();
        RunReport {
            scheme: self.mitigation.name().to_string(),
            workload: self.cores[0].label(),
            requests_done: self.cores.iter().map(|c| c.issued()).sum(),
            per_core: self.cores.iter().map(|c| c.issued()).collect(),
            epochs: self.cfg.epochs,
            data_busy: stats.data_busy,
            migration_busy: stats.migration_busy,
            table_busy: stats.table_busy,
            mitigation: self.mitigation.mitigation_stats(),
            oracle: self.oracle.summary(),
            integrity_violations: self.shadow.violations(),
            faults,
            telemetry: self.telemetry.summary(),
        }
    }

    /// Settles the fate of every watched row at the end of the run: each
    /// corruption must be recovered (the engine's audit repaired the
    /// translation), counted (an access observed it and the shadow recorded
    /// a violation), or dormant (still wrong, but no access ever returned
    /// wrong data — the shadow verifies *every* access, so its first wrong
    /// touch is guaranteed to be counted). `unaccounted` cross-checks the
    /// counting path itself: an "escaped" row without any recorded shadow
    /// violation would mean a wrong access slipped through verification
    /// uncounted — the silent escape the proptests and the `fault_campaign`
    /// binary assert never happens.
    fn close_fault_accounting(&mut self, end: Time) -> FaultReport {
        let mut report = self.freport;
        let health = self.mitigation.fault_health();
        report.engine_recovered = health.recovered;
        report.degraded_epochs = health.degraded_epochs;
        let violations_recorded = self.shadow.violations() > 0;
        let watch = std::mem::take(&mut self.watch);
        for row in watch {
            if self.escaped.contains(&row) {
                if violations_recorded {
                    report.escaped_counted += 1;
                } else {
                    report.unaccounted += 1;
                }
                continue;
            }
            let gid = GlobalRowId::new(row);
            let tr = self.mitigation.translate(gid, end);
            if self.shadow.check(gid, tr.phys) {
                report.recovered_rows += 1;
            } else {
                report.dormant += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua::{AquaConfig, AquaEngine};
    use aqua_dram::mitigation::NoMitigation;
    use aqua_dram::BaselineConfig;
    use aqua_workload::attack::Hammer;
    use aqua_workload::AddressSpace;

    fn base() -> BaselineConfig {
        BaselineConfig::tiny() // 4 banks, 1024 rows/bank, 1 ms epochs
    }

    fn space() -> AddressSpace {
        AddressSpace::new(base().geometry, 0.75)
    }

    fn aqua_engine(t_rh: u64) -> AquaEngine {
        let cfg = AquaConfig::for_rowhammer_threshold(t_rh, &base()).with_rqa_rows(512);
        let cfg = AquaConfig {
            tracker_entries_per_bank: 256,
            fpt_entries: 1024,
            ..cfg
        };
        AquaEngine::new(cfg).unwrap()
    }

    fn sim_config(t_rh: u64) -> SimConfig {
        SimConfig::new(base()).epochs(2).t_rh(t_rh)
    }

    #[test]
    fn simulations_are_send() {
        // The bench worker pool runs whole simulations on worker threads;
        // this must hold for every mitigation engine (Mitigation: Send).
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<NoMitigation>>();
        assert_send::<Simulation<AquaEngine>>();
        assert_send::<Simulation<aqua_rrs::RrsEngine>>();
        assert_send::<Simulation<aqua_baselines::VictimRefresh>>();
        assert_send::<Simulation<aqua_baselines::Blockhammer>>();
    }

    #[test]
    fn double_sided_attack_flips_without_mitigation() {
        let gen = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(1000), NoMitigation::new(base().geometry), [gen]);
        let report = sim.run();
        // 1 ms epoch at ~45 ns per activation: each aggressor gets ~10K
        // activations -> far beyond T_RH = 1000.
        assert!(report.oracle.rows_over_trh >= 2, "{:?}", report.oracle);
        assert!(report.oracle.max_window_activations > 1000);
    }

    #[test]
    fn aqua_stops_double_sided_attack() {
        let gen = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(1000), aqua_engine(1000), [gen]);
        let report = sim.run();
        assert_eq!(report.oracle.rows_over_trh, 0, "{:?}", report.oracle);
        assert_eq!(report.mitigation.violations, 0);
        assert!(report.mitigation.row_migrations > 0);
        sim.mitigation().check_consistency().unwrap();
    }

    #[test]
    fn migrations_block_the_channel() {
        use aqua_workload::attack::MigrationFlood;
        // A bank-parallel flood keeps the baseline and mitigated bank-level
        // parallelism identical, so the only difference is channel blocking.
        let mk = || Box::new(MigrationFlood::new(&space(), 4, 500)) as Box<dyn RequestGenerator>;
        let mut baseline =
            Simulation::new(sim_config(1000), NoMitigation::new(base().geometry), [mk()]);
        let base_report = baseline.run();
        let mut mitigated = Simulation::new(sim_config(1000), aqua_engine(1000), [mk()]);
        let aqua_report = mitigated.run();
        assert!(
            aqua_report.requests_done < base_report.requests_done,
            "aqua {} vs baseline {}",
            aqua_report.requests_done,
            base_report.requests_done
        );
        assert!(aqua_report.migration_busy > Duration::ZERO);
    }

    #[test]
    fn victim_refresh_stops_classic_but_not_half_double() {
        use aqua_baselines::{VictimRefresh, VictimRefreshConfig};
        // The tiny config's 1 ms epochs accrue ~10K activations per hammered
        // row, so a threshold of 100 keeps the same activation-to-threshold
        // ratio the full system has at T_RH = 1K over 64 ms.
        let t_rh = 100;
        let mk_vr = || {
            let mut cfg = VictimRefreshConfig::for_rowhammer_threshold(t_rh);
            cfg.tracker_entries_per_bank = 256;
            VictimRefresh::new(cfg, base().geometry)
        };
        use aqua_dram::{BankId, RowAddr};
        let victim = RowAddr {
            bank: BankId::new(0),
            row: 100,
        };
        // Classic double-sided around row 100: victim refresh protects the
        // targeted victim (the refresh storm still endangers rows further
        // out — the collateral Half-Double leverages).
        let classic = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(t_rh), mk_vr(), [classic]);
        let classic_report = sim.run();
        assert!(
            !sim.oracle().is_flippable(victim),
            "victim refresh must protect the targeted victim"
        );
        assert!(classic_report.mitigation.victim_refreshes > 0);
        // Half-Double: hammering the distance-2 rows (98 and 102) turns the
        // mitigative refreshes of rows 99/101 into an un-tracked attack on
        // row 100.
        let hd = Box::new(Hammer::half_double(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(t_rh), mk_vr(), [hd]);
        let hd_report = sim.run();
        assert!(
            sim.oracle().is_flippable(victim),
            "Half-Double must defeat victim refresh: {:?}",
            hd_report.oracle
        );
    }

    #[test]
    fn aqua_stops_half_double() {
        let hd = Box::new(Hammer::half_double(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(100), aqua_engine(100), [hd]);
        let report = sim.run();
        assert_eq!(report.oracle.rows_flippable, 0, "{:?}", report.oracle);
        assert_eq!(report.oracle.rows_over_trh, 0);
    }

    #[test]
    fn quiet_stream_sees_no_mitigations() {
        use aqua_workload::HotColdGenerator;
        let s = space();
        let gen = Box::new(HotColdGenerator::uniform(
            &s,
            0,
            512,
            20_000,
            base().epoch,
            3,
        )) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(1000), aqua_engine(1000), [gen]);
        let report = sim.run();
        assert_eq!(report.mitigation.row_migrations, 0);
        assert_eq!(report.oracle.rows_over_trh, 0);
        assert!(report.requests_done > 0);
    }

    #[test]
    fn data_integrity_holds_under_migration_churn() {
        use aqua_workload::attack::MigrationFlood;
        let flood = Box::new(MigrationFlood::new(&space(), 4, 50)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(100), aqua_engine(100), [flood]);
        let report = sim.run();
        assert!(report.mitigation.row_migrations > 50);
        assert_eq!(report.integrity_violations, 0, "data must follow the maps");
    }

    #[test]
    fn rrs_data_integrity_holds_under_swap_churn() {
        use aqua_rrs::{RrsConfig, RrsEngine};
        use aqua_workload::attack::MigrationFlood;
        let mut cfg = RrsConfig::for_rowhammer_threshold(600, &base());
        cfg.tracker_entries_per_bank = 256;
        cfg.rit_pairs = 512;
        // Fresh conflicting pairs keep generating activations even after
        // earlier pairs were swapped apart into separate banks.
        let gen = Box::new(MigrationFlood::new(&space(), 4, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(600), RrsEngine::new(cfg), [gen]);
        let report = sim.run();
        assert!(report.mitigation.row_migrations > 10);
        assert_eq!(report.integrity_violations, 0);
    }

    #[test]
    fn closed_page_makes_single_sided_hammering_effective() {
        use aqua_dram::PagePolicy;
        // Under open-page, re-accessing one row produces row-buffer hits and
        // no Rowhammer pressure; a closed-page controller activates on every
        // access, so single-sided hammering works — and AQUA must stop it.
        let mut closed = base();
        closed.page_policy = PagePolicy::Closed;
        let gen = || Box::new(Hammer::single_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut open_sim = Simulation::new(
            sim_config(1000),
            NoMitigation::new(base().geometry),
            [gen()],
        );
        let open_report = open_sim.run();
        assert_eq!(open_report.oracle.rows_over_trh, 0, "open page absorbs it");
        let closed_cfg = SimConfig::new(closed).epochs(2).t_rh(1000);
        let mut closed_sim =
            Simulation::new(closed_cfg, NoMitigation::new(base().geometry), [gen()]);
        let closed_report = closed_sim.run();
        assert!(
            closed_report.oracle.rows_over_trh > 0,
            "closed page hammers"
        );
        let mut protected = Simulation::new(closed_cfg, aqua_engine(1000), [gen()]);
        let protected_report = protected.run();
        assert_eq!(protected_report.oracle.rows_over_trh, 0);
    }

    #[test]
    fn migration_ablation_recovers_throughput_without_changing_behavior() {
        use aqua_workload::attack::MigrationFlood;
        let mk = || Box::new(MigrationFlood::new(&space(), 4, 500)) as Box<dyn RequestGenerator>;
        let full = {
            let mut sim = Simulation::new(sim_config(1000), aqua_engine(1000), [mk()]);
            sim.run()
        };
        let ablated = {
            let cfg = sim_config(1000).ablate(CostAblation::FREE_MIGRATION);
            let mut sim = Simulation::new(cfg, aqua_engine(1000), [mk()]);
            sim.run()
        };
        // Free migrations: rows still quarantine (the run is time-bounded,
        // so the faster ablated run sees at least as many trigger-worthy
        // activations), but demand traffic no longer waits behind them.
        assert!(
            ablated.mitigation.row_migrations >= full.mitigation.row_migrations,
            "ablated {} vs full {}",
            ablated.mitigation.row_migrations,
            full.mitigation.row_migrations
        );
        assert!(
            ablated.requests_done > full.requests_done,
            "ablated {} vs full {}",
            ablated.requests_done,
            full.requests_done
        );
        assert_eq!(ablated.migration_busy, Duration::ZERO);
        assert_eq!(ablated.integrity_violations, 0);
    }

    #[test]
    fn no_op_ablation_is_identical_to_the_plain_run() {
        let mk = || Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut plain = Simulation::new(sim_config(1000), aqua_engine(1000), [mk()]);
        let cfg = sim_config(1000).ablate(CostAblation::NONE);
        let mut wired = Simulation::new(cfg, aqua_engine(1000), [mk()]);
        assert_eq!(plain.run(), wired.run());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn migration_lifecycle_emits_nested_spans() {
        use aqua_telemetry::{Telemetry, TelemetryConfig};
        let gen = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(1000), aqua_engine(1000), [gen]);
        let hub = Telemetry::new(TelemetryConfig::default());
        sim.attach_telemetry(hub.clone());
        let report = sim.run();
        assert!(report.mitigation.row_migrations > 0);
        let spans = hub.spans();
        let roots: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "sim.mitigation")
            .collect();
        assert!(!roots.is_empty(), "no mitigation root spans");
        let installs: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "migration.install")
            .collect();
        assert!(!installs.is_empty(), "no install spans");
        // Every migration span nests under a root and spans real time.
        let root_ids: std::collections::BTreeSet<u64> = roots.iter().map(|s| s.id).collect();
        for m in &installs {
            let parent = m.parent.expect("install span must have a parent");
            assert!(
                spans.iter().any(|s| s.id == parent),
                "parent of install span missing from trace"
            );
            assert!(m.duration_ps() > 0, "install spans real channel time");
            // The parent chain reaches a sim.mitigation or sim.refresh_tick
            // root within two hops (engine decision span in between).
            let mut cur = parent;
            let mut hops = 0;
            while hops < 3 {
                if root_ids.contains(&cur) {
                    break;
                }
                let Some(p) = spans.iter().find(|s| s.id == cur).and_then(|s| s.parent) else {
                    break;
                };
                cur = p;
                hops += 1;
            }
        }
        // Waiting spans appear: the flood of migrations must have blocked
        // at least one demand access.
        assert!(
            spans.iter().any(|s| s.name == "sim.bank_block"),
            "no bank-block spans despite migrations"
        );
        let summary = report.telemetry.unwrap();
        assert!(summary.histogram("span.sim.mitigation").is_some());
        assert!(summary.spans_recorded > 0);
    }

    #[test]
    fn fault_campaign_accounts_for_every_corruption() {
        let spec = FaultSpec {
            seed: 11,
            events_per_epoch: 24,
        };
        let mk = || Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let run = || {
            let mut sim = Simulation::new(sim_config(1000).faults(spec), aqua_engine(1000), [mk()]);
            sim.run()
        };
        let report = run();
        let f = report.faults;
        assert_eq!(f.injected, 48, "every scheduled event dispatched");
        assert_eq!(
            f.corruptions,
            f.recovered_rows + f.escaped_counted + f.dormant + f.unaccounted,
            "{f:?}"
        );
        assert_eq!(f.unaccounted, 0, "no silent escapes: {f:?}");
        // Byte-identical replay: the same seed reproduces the whole report.
        assert_eq!(report, run());
    }

    #[test]
    fn fault_free_runs_are_unchanged_by_the_fault_plumbing() {
        let mk = || Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut plain = Simulation::new(sim_config(1000), aqua_engine(1000), [mk()]);
        let zero_rate = SimConfig::new(base())
            .epochs(2)
            .t_rh(1000)
            .faults(FaultSpec {
                seed: 5,
                events_per_epoch: 0,
            });
        let mut wired = Simulation::new(zero_rate, aqua_engine(1000), [mk()]);
        assert_eq!(plain.run(), wired.run());
    }

    #[test]
    fn dram_command_fault_blinds_the_mitigation_for_one_activation() {
        use aqua_faults::FaultEvent;
        let gen = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(1000), aqua_engine(1000), [gen]);
        sim.apply_fault(
            FaultEvent {
                at_ps: 0,
                kind: FaultKind::DramCommandFault,
            },
            Time::ZERO,
        );
        assert_eq!(sim.suppress_notifications, 1);
        assert_eq!(sim.freport.applied, 1);
        let phys = aqua_dram::RowAddr {
            bank: aqua_dram::BankId::new(0),
            row: 7,
        };
        // The suppressed notification never reaches the scheme...
        let mut actions = Vec::new();
        sim.notify_activation_into(phys, Time::ZERO, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(sim.suppress_notifications, 0);
        assert_eq!(sim.mitigation().tracker_stats().activations, 0);
        // ...but the next one does.
        sim.notify_activation_into(phys, Time::ZERO, &mut actions);
        assert_eq!(sim.mitigation().tracker_stats().activations, 1);
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn watchdog_converts_a_hung_run_into_a_panic() {
        let gen = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let cfg = sim_config(1000).watchdog(std::time::Duration::ZERO);
        let mut sim = Simulation::new(cfg, NoMitigation::new(base().geometry), [gen]);
        sim.run();
    }

    /// The soft deadline escalates (report + counter + event) but lets the
    /// run finish; results are unchanged by the escalation.
    #[test]
    fn soft_watchdog_reports_a_straggler_without_aborting() {
        let mk = |cfg: SimConfig| {
            let gen = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
            let mut sim = Simulation::new(cfg, NoMitigation::new(base().geometry), [gen]);
            let hub = Telemetry::new(Default::default());
            sim.attach_telemetry(hub.clone());
            (sim.run(), hub)
        };
        // Soft deadline of zero: every run past its first serve escalates.
        let (slow, hub) = mk(sim_config(1000).soft_watchdog(std::time::Duration::ZERO));
        let (plain, _) = mk(sim_config(1000));
        assert!(slow.requests_done > 0);
        // Escalation never changes simulated results.
        assert_eq!(slow.requests_done, plain.requests_done);
        assert_eq!(slow.mitigation, plain.mitigation);
        if hub.is_enabled() {
            let summary = hub.summary().unwrap();
            // Fires exactly once per run, even though many serves follow.
            assert_eq!(summary.counter("sim.straggler_reports"), Some(1));
            assert!(hub
                .trace_events()
                .iter()
                .any(|e| matches!(e.kind, EventKind::StragglerReport { .. })));
        }
    }

    #[test]
    fn epochs_are_counted() {
        let gen = Box::new(Hammer::single_sided(&space(), 0, 5)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(
            sim_config(1000).epochs(3),
            NoMitigation::new(base().geometry),
            [gen],
        );
        let report = sim.run();
        assert_eq!(report.epochs, 3);
        assert_eq!(report.oracle.epochs, 3);
    }

    #[test]
    fn multi_core_counts_all_streams() {
        let mk =
            |b: u32| Box::new(Hammer::single_sided(&space(), b, 7)) as Box<dyn RequestGenerator>;
        let mut quad = base();
        quad.cores = 4;
        let mut sim = Simulation::new(
            SimConfig::new(quad).epochs(2).t_rh(1_000_000),
            NoMitigation::new(base().geometry),
            [mk(0), mk(1), mk(2), mk(3)],
        );
        let report = sim.run();
        assert_eq!(report.per_core.len(), 4);
        assert!(report.per_core.iter().all(|&c| c > 0));
        assert_eq!(report.requests_done, report.per_core.iter().sum::<u64>());
    }
}
