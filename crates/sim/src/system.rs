//! The system simulator: cores + channel + banks + mitigation + oracle.

use crate::{ActivationOracle, CoreState, RunReport, ShadowMemory};
use aqua_dram::mitigation::{Mitigation, MitigationAction, MitigationStats};
use aqua_dram::{Bank, BaselineConfig, Channel, ChannelStats, Duration, RefreshScheduler, Time};
use aqua_telemetry::{Counter, EpochRecord, EventKind, Histogram, Telemetry};
use aqua_workload::RequestGenerator;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The baseline system (geometry, timing, cores, MLP, epoch length).
    pub base: BaselineConfig,
    /// Number of epochs (refresh windows) to simulate.
    pub epochs: u64,
    /// Rowhammer threshold the oracle checks against.
    pub t_rh: u64,
}

impl SimConfig {
    /// Creates a configuration with the paper defaults (2 epochs, `T_RH` 1K).
    pub fn new(base: BaselineConfig) -> Self {
        SimConfig {
            base,
            epochs: 2,
            t_rh: 1000,
        }
    }

    /// Sets the number of simulated epochs.
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the oracle's Rowhammer threshold.
    pub fn t_rh(mut self, t_rh: u64) -> Self {
        self.t_rh = t_rh;
        self
    }
}

/// Counters sampled at the previous epoch boundary, for per-epoch deltas.
#[derive(Debug, Default, Clone, Copy)]
struct EpochBaseline {
    requests: u64,
    mitigation: MitigationStats,
    channel: ChannelStats,
}

/// One simulation run binding a mitigation scheme to a set of core streams.
pub struct Simulation<M: Mitigation> {
    cfg: SimConfig,
    banks: Vec<Bank>,
    channel: Channel,
    refresh: RefreshScheduler,
    mitigation: M,
    oracle: ActivationOracle,
    shadow: ShadowMemory,
    cores: Vec<CoreState>,
    burst: Duration,
    telemetry: Telemetry,
    /// Per-access memory latency (request issue to data completion), ps.
    access_hist: Histogram,
    /// Channel-blocking stall of each row migration, ps.
    migration_hist: Histogram,
    /// Mapping-table lookup latency on the access critical path, ps.
    lookup_hist: Histogram,
    activations: Counter,
}

impl<M: Mitigation> Simulation<M> {
    /// Builds a simulation. Each generator drives one core (1 to 4 streams).
    ///
    /// # Panics
    ///
    /// Panics if no generators are supplied or more than `cfg.base.cores`.
    pub fn new(
        cfg: SimConfig,
        mitigation: M,
        generators: impl IntoIterator<Item = Box<dyn RequestGenerator>>,
    ) -> Self {
        let cores: Vec<CoreState> = generators
            .into_iter()
            .map(|g| CoreState::new(g, cfg.base.mlp))
            .collect();
        assert!(
            !cores.is_empty() && cores.len() <= cfg.base.cores as usize,
            "between 1 and {} generators required",
            cfg.base.cores
        );
        let mut shadow = ShadowMemory::new(&cfg.base.geometry);
        for row in mitigation.reserved_rows() {
            shadow.vacate(row);
        }
        let detached = Telemetry::disabled();
        Simulation {
            banks: (0..cfg.base.geometry.total_banks())
                .map(|_| Bank::with_policy(cfg.base.timing, cfg.base.page_policy))
                .collect(),
            channel: Channel::new(),
            refresh: RefreshScheduler::new(&cfg.base.timing),
            oracle: ActivationOracle::new(&cfg.base.geometry, cfg.t_rh),
            shadow,
            mitigation,
            cores,
            burst: cfg.base.timing.t_ccd_s,
            cfg,
            telemetry: detached.clone(),
            access_hist: detached.histogram("mem.access_ps"),
            migration_hist: detached.histogram("migration.stall_ps"),
            lookup_hist: detached.histogram("table.lookup_ps"),
            activations: detached.counter("sim.activations"),
        }
    }

    /// Attaches a telemetry hub: registers the simulator's histograms and
    /// counters and forwards the hub to the mitigation scheme so every layer
    /// records into the same registry.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.access_hist = telemetry.histogram("mem.access_ps");
        self.migration_hist = telemetry.histogram("migration.stall_ps");
        self.lookup_hist = telemetry.histogram("table.lookup_ps");
        self.activations = telemetry.counter("sim.activations");
        self.mitigation.attach_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The attached telemetry hub (disabled if none was attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The mitigation scheme (for scheme-specific statistics after a run).
    pub fn mitigation(&self) -> &M {
        &self.mitigation
    }

    /// Consumes the simulation and returns the mitigation engine, for
    /// callers that need scheme-specific statistics (e.g. the Figure 10
    /// lookup breakdown) without keeping the whole simulator alive.
    pub fn into_mitigation(self) -> M {
        self.mitigation
    }

    /// The security oracle.
    pub fn oracle(&self) -> &ActivationOracle {
        &self.oracle
    }

    fn apply_actions(
        &mut self,
        actions: Vec<MitigationAction>,
        at: Time,
        mut completion: Time,
    ) -> Time {
        for action in actions {
            match action {
                MitigationAction::BlockChannel {
                    duration, movement, ..
                } => {
                    self.channel.reserve_migration(at, duration);
                    self.migration_hist.record(duration.as_ps());
                    self.shadow.apply(movement);
                }
                MitigationAction::RefreshRows(rows) => {
                    for r in rows {
                        self.banks[r.bank.index() as usize].refresh_row(r.row, at);
                        // Victim refreshes are activations the *oracle* sees
                        // but the scheme's tracker does not — the Half-Double
                        // blind spot.
                        self.oracle.record_refresh(r);
                    }
                }
                MitigationAction::Throttle { delay } => {
                    completion += delay;
                }
                MitigationAction::TableWrites { count } => {
                    for _ in 0..count {
                        self.channel.reserve_table_access(at, self.burst);
                    }
                }
            }
        }
        completion
    }

    /// Records an activation with the oracle and trace (the oracle reports
    /// first-time threshold crossings, which become trace events).
    fn record_activation(&mut self, phys: aqua_dram::RowAddr, at: Time) {
        self.activations.inc();
        self.telemetry.record(
            at.as_ps(),
            EventKind::Activate {
                bank: phys.bank.index() as u64,
                row: phys.row as u64,
            },
        );
        if self.oracle.record(phys) {
            self.telemetry.record(
                at.as_ps(),
                EventKind::ThresholdCrossed {
                    row: self
                        .cfg
                        .base
                        .geometry
                        .flatten(phys)
                        .map(|g| g.index())
                        .unwrap_or(u64::MAX),
                    count: self.oracle.window_count(phys),
                },
            );
        }
    }

    /// Serves one request from core `ci` issued at `t0`; returns completion.
    fn serve(&mut self, ci: usize, t0: Time) {
        let req = self.cores[ci].pending();
        let tr = self.mitigation.translate(req.row, t0);
        let lookup_start = self.refresh.next_available(t0 + tr.lookup_latency);
        let mut t = lookup_start;

        // Extra in-DRAM mapping-table read on the critical path.
        if let Some(trow) = tr.table_row {
            let start = t.max(self.channel.blocked_until());
            let res = self.banks[trow.bank.index() as usize].access(trow.row, start);
            let slot = self
                .channel
                .reserve_table_access(res.data_ready, self.burst);
            if res.activated {
                self.record_activation(trow, res.data_ready);
                let actions = self.mitigation.on_activation(trow, res.data_ready);
                self.apply_actions(actions, res.data_ready, res.data_ready);
            }
            t = slot + self.burst;
        }
        // Table-lookup latency: the scheme's SRAM lookup plus any in-DRAM
        // table walk that just happened on the critical path.
        self.lookup_hist
            .record(tr.lookup_latency.as_ps() + t.saturating_since(lookup_start).as_ps());

        let phys = tr.phys;
        // End-to-end integrity: the translation must resolve to the physical
        // row actually holding the requested row's data.
        self.shadow.verify(req.row, phys);
        let start = t.max(self.channel.blocked_until());
        let res = self.banks[phys.bank.index() as usize].access(phys.row, start);
        let slot = self.channel.reserve_burst(res.data_ready, self.burst);
        let mut completion = slot + self.burst;
        if res.activated {
            self.record_activation(phys, completion);
            let actions = self.mitigation.on_activation(phys, completion);
            completion = self.apply_actions(actions, completion, completion);
        }
        self.access_hist
            .record(completion.saturating_since(t0).as_ps());
        self.cores[ci].commit(t0, completion);
    }

    /// Samples one epoch record (deltas against `prev`) into the time series
    /// and advances the baseline. Runs *before* the scheme's `end_epoch` so
    /// gauges see the closing epoch's state.
    fn sample_epoch(&mut self, epoch: u64, end: Time, prev: &mut EpochBaseline) {
        self.telemetry
            .record(end.as_ps(), EventKind::EpochRollover { epoch });
        let requests: u64 = self.cores.iter().map(|c| c.issued()).sum();
        let mitigation = self.mitigation.mitigation_stats();
        let channel = self.channel.stats();
        let d_mit = mitigation.diff(&prev.mitigation);
        let epoch_ps = self.cfg.base.epoch.as_ps().max(1) as f64;
        let frac = |busy: Duration, before: Duration| {
            busy.saturating_sub(before).as_ps() as f64 / epoch_ps
        };
        self.telemetry.push_epoch(EpochRecord {
            epoch,
            end_ps: end.as_ps(),
            requests_done: requests - prev.requests,
            migrations: d_mit.row_migrations,
            mitigations_triggered: d_mit.mitigations_triggered,
            victim_refreshes: d_mit.victim_refreshes,
            throttled: d_mit.throttled,
            data_busy_frac: frac(channel.data_busy, prev.channel.data_busy),
            migration_busy_frac: frac(channel.migration_busy, prev.channel.migration_busy),
            table_busy_frac: frac(channel.table_busy, prev.channel.table_busy),
            gauges: self
                .mitigation
                .epoch_gauges()
                .into_iter()
                .map(|(name, v)| (name.to_string(), v))
                .collect(),
        });
        *prev = EpochBaseline {
            requests,
            mitigation,
            channel,
        };
    }

    /// Runs for `cfg.epochs` refresh windows and reports the results.
    pub fn run(&mut self) -> RunReport {
        let epoch_len = self.cfg.base.epoch;
        let end = Time::ZERO + epoch_len.checked_scale(self.cfg.epochs);
        let t_refi = self.cfg.base.timing.t_refi;
        let mut next_epoch = Time::ZERO + epoch_len;
        let mut next_tick = Time::ZERO + t_refi;
        let mut epoch_idx: u64 = 0;
        let mut baseline = EpochBaseline::default();
        loop {
            let (ci, t) = self
                .cores
                .iter()
                .enumerate()
                .map(|(i, c)| (i, c.ready_at()))
                .min_by_key(|&(_, t)| t)
                .expect("at least one core");
            if t >= end {
                break;
            }
            while t >= next_tick {
                let actions = self.mitigation.on_refresh_tick(next_tick);
                if !actions.is_empty() {
                    self.apply_actions(actions, next_tick, next_tick);
                }
                next_tick += t_refi;
            }
            while t >= next_epoch {
                self.sample_epoch(epoch_idx, next_epoch, &mut baseline);
                self.mitigation.end_epoch();
                self.oracle.end_epoch();
                next_epoch += epoch_len;
                epoch_idx += 1;
            }
            self.serve(ci, t);
        }
        // Close out remaining epoch boundaries.
        while next_epoch <= end {
            self.sample_epoch(epoch_idx, next_epoch, &mut baseline);
            self.mitigation.end_epoch();
            self.oracle.end_epoch();
            next_epoch += epoch_len;
            epoch_idx += 1;
        }
        let stats = self.channel.stats();
        RunReport {
            scheme: self.mitigation.name().to_string(),
            workload: self.cores[0].label(),
            requests_done: self.cores.iter().map(|c| c.issued()).sum(),
            per_core: self.cores.iter().map(|c| c.issued()).collect(),
            epochs: self.cfg.epochs,
            data_busy: stats.data_busy,
            migration_busy: stats.migration_busy,
            table_busy: stats.table_busy,
            mitigation: self.mitigation.mitigation_stats(),
            oracle: self.oracle.summary(),
            integrity_violations: self.shadow.violations(),
            telemetry: self.telemetry.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua::{AquaConfig, AquaEngine};
    use aqua_dram::mitigation::NoMitigation;
    use aqua_dram::BaselineConfig;
    use aqua_workload::attack::Hammer;
    use aqua_workload::AddressSpace;

    fn base() -> BaselineConfig {
        BaselineConfig::tiny() // 4 banks, 1024 rows/bank, 1 ms epochs
    }

    fn space() -> AddressSpace {
        AddressSpace::new(base().geometry, 0.75)
    }

    fn aqua_engine(t_rh: u64) -> AquaEngine {
        let cfg = AquaConfig::for_rowhammer_threshold(t_rh, &base()).with_rqa_rows(512);
        let cfg = AquaConfig {
            tracker_entries_per_bank: 256,
            fpt_entries: 1024,
            ..cfg
        };
        AquaEngine::new(cfg).unwrap()
    }

    fn sim_config(t_rh: u64) -> SimConfig {
        SimConfig::new(base()).epochs(2).t_rh(t_rh)
    }

    #[test]
    fn simulations_are_send() {
        // The bench worker pool runs whole simulations on worker threads;
        // this must hold for every mitigation engine (Mitigation: Send).
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<NoMitigation>>();
        assert_send::<Simulation<AquaEngine>>();
        assert_send::<Simulation<aqua_rrs::RrsEngine>>();
        assert_send::<Simulation<aqua_baselines::VictimRefresh>>();
        assert_send::<Simulation<aqua_baselines::Blockhammer>>();
    }

    #[test]
    fn double_sided_attack_flips_without_mitigation() {
        let gen = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(1000), NoMitigation::new(base().geometry), [gen]);
        let report = sim.run();
        // 1 ms epoch at ~45 ns per activation: each aggressor gets ~10K
        // activations -> far beyond T_RH = 1000.
        assert!(report.oracle.rows_over_trh >= 2, "{:?}", report.oracle);
        assert!(report.oracle.max_window_activations > 1000);
    }

    #[test]
    fn aqua_stops_double_sided_attack() {
        let gen = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(1000), aqua_engine(1000), [gen]);
        let report = sim.run();
        assert_eq!(report.oracle.rows_over_trh, 0, "{:?}", report.oracle);
        assert_eq!(report.mitigation.violations, 0);
        assert!(report.mitigation.row_migrations > 0);
        sim.mitigation().check_consistency();
    }

    #[test]
    fn migrations_block_the_channel() {
        use aqua_workload::attack::MigrationFlood;
        // A bank-parallel flood keeps the baseline and mitigated bank-level
        // parallelism identical, so the only difference is channel blocking.
        let mk = || Box::new(MigrationFlood::new(&space(), 4, 500)) as Box<dyn RequestGenerator>;
        let mut baseline =
            Simulation::new(sim_config(1000), NoMitigation::new(base().geometry), [mk()]);
        let base_report = baseline.run();
        let mut mitigated = Simulation::new(sim_config(1000), aqua_engine(1000), [mk()]);
        let aqua_report = mitigated.run();
        assert!(
            aqua_report.requests_done < base_report.requests_done,
            "aqua {} vs baseline {}",
            aqua_report.requests_done,
            base_report.requests_done
        );
        assert!(aqua_report.migration_busy > Duration::ZERO);
    }

    #[test]
    fn victim_refresh_stops_classic_but_not_half_double() {
        use aqua_baselines::{VictimRefresh, VictimRefreshConfig};
        // The tiny config's 1 ms epochs accrue ~10K activations per hammered
        // row, so a threshold of 100 keeps the same activation-to-threshold
        // ratio the full system has at T_RH = 1K over 64 ms.
        let t_rh = 100;
        let mk_vr = || {
            let mut cfg = VictimRefreshConfig::for_rowhammer_threshold(t_rh);
            cfg.tracker_entries_per_bank = 256;
            VictimRefresh::new(cfg, base().geometry)
        };
        use aqua_dram::{BankId, RowAddr};
        let victim = RowAddr {
            bank: BankId::new(0),
            row: 100,
        };
        // Classic double-sided around row 100: victim refresh protects the
        // targeted victim (the refresh storm still endangers rows further
        // out — the collateral Half-Double leverages).
        let classic = Box::new(Hammer::double_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(t_rh), mk_vr(), [classic]);
        let classic_report = sim.run();
        assert!(
            !sim.oracle().is_flippable(victim),
            "victim refresh must protect the targeted victim"
        );
        assert!(classic_report.mitigation.victim_refreshes > 0);
        // Half-Double: hammering the distance-2 rows (98 and 102) turns the
        // mitigative refreshes of rows 99/101 into an un-tracked attack on
        // row 100.
        let hd = Box::new(Hammer::half_double(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(t_rh), mk_vr(), [hd]);
        let hd_report = sim.run();
        assert!(
            sim.oracle().is_flippable(victim),
            "Half-Double must defeat victim refresh: {:?}",
            hd_report.oracle
        );
    }

    #[test]
    fn aqua_stops_half_double() {
        let hd = Box::new(Hammer::half_double(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(100), aqua_engine(100), [hd]);
        let report = sim.run();
        assert_eq!(report.oracle.rows_flippable, 0, "{:?}", report.oracle);
        assert_eq!(report.oracle.rows_over_trh, 0);
    }

    #[test]
    fn quiet_stream_sees_no_mitigations() {
        use aqua_workload::HotColdGenerator;
        let s = space();
        let gen = Box::new(HotColdGenerator::uniform(
            &s,
            0,
            512,
            20_000,
            base().epoch,
            3,
        )) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(1000), aqua_engine(1000), [gen]);
        let report = sim.run();
        assert_eq!(report.mitigation.row_migrations, 0);
        assert_eq!(report.oracle.rows_over_trh, 0);
        assert!(report.requests_done > 0);
    }

    #[test]
    fn data_integrity_holds_under_migration_churn() {
        use aqua_workload::attack::MigrationFlood;
        let flood = Box::new(MigrationFlood::new(&space(), 4, 50)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(100), aqua_engine(100), [flood]);
        let report = sim.run();
        assert!(report.mitigation.row_migrations > 50);
        assert_eq!(report.integrity_violations, 0, "data must follow the maps");
    }

    #[test]
    fn rrs_data_integrity_holds_under_swap_churn() {
        use aqua_rrs::{RrsConfig, RrsEngine};
        use aqua_workload::attack::MigrationFlood;
        let mut cfg = RrsConfig::for_rowhammer_threshold(600, &base());
        cfg.tracker_entries_per_bank = 256;
        cfg.rit_pairs = 512;
        // Fresh conflicting pairs keep generating activations even after
        // earlier pairs were swapped apart into separate banks.
        let gen = Box::new(MigrationFlood::new(&space(), 4, 100)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(sim_config(600), RrsEngine::new(cfg), [gen]);
        let report = sim.run();
        assert!(report.mitigation.row_migrations > 10);
        assert_eq!(report.integrity_violations, 0);
    }

    #[test]
    fn closed_page_makes_single_sided_hammering_effective() {
        use aqua_dram::PagePolicy;
        // Under open-page, re-accessing one row produces row-buffer hits and
        // no Rowhammer pressure; a closed-page controller activates on every
        // access, so single-sided hammering works — and AQUA must stop it.
        let mut closed = base();
        closed.page_policy = PagePolicy::Closed;
        let gen = || Box::new(Hammer::single_sided(&space(), 0, 100)) as Box<dyn RequestGenerator>;
        let mut open_sim = Simulation::new(
            sim_config(1000),
            NoMitigation::new(base().geometry),
            [gen()],
        );
        let open_report = open_sim.run();
        assert_eq!(open_report.oracle.rows_over_trh, 0, "open page absorbs it");
        let closed_cfg = SimConfig::new(closed).epochs(2).t_rh(1000);
        let mut closed_sim =
            Simulation::new(closed_cfg, NoMitigation::new(base().geometry), [gen()]);
        let closed_report = closed_sim.run();
        assert!(
            closed_report.oracle.rows_over_trh > 0,
            "closed page hammers"
        );
        let mut protected = Simulation::new(closed_cfg, aqua_engine(1000), [gen()]);
        let protected_report = protected.run();
        assert_eq!(protected_report.oracle.rows_over_trh, 0);
    }

    #[test]
    fn epochs_are_counted() {
        let gen = Box::new(Hammer::single_sided(&space(), 0, 5)) as Box<dyn RequestGenerator>;
        let mut sim = Simulation::new(
            sim_config(1000).epochs(3),
            NoMitigation::new(base().geometry),
            [gen],
        );
        let report = sim.run();
        assert_eq!(report.epochs, 3);
        assert_eq!(report.oracle.epochs, 3);
    }

    #[test]
    fn multi_core_counts_all_streams() {
        let mk =
            |b: u32| Box::new(Hammer::single_sided(&space(), b, 7)) as Box<dyn RequestGenerator>;
        let mut quad = base();
        quad.cores = 4;
        let mut sim = Simulation::new(
            SimConfig::new(quad).epochs(2).t_rh(1_000_000),
            NoMitigation::new(base().geometry),
            [mk(0), mk(1), mk(2), mk(3)],
        );
        let report = sim.run();
        assert_eq!(report.per_core.len(), 4);
        assert!(report.per_core.iter().all(|&c| c > 0));
        assert_eq!(report.requests_done, report.per_core.iter().sum::<u64>());
    }
}
