//! A bounded worker pool for embarrassingly-parallel work.
//!
//! Hand-rolled on `std::thread::scope` — no external dependencies, no
//! unsafe. Jobs are index-tagged, so results always come back in input
//! order regardless of how the OS schedules the workers, and a panicking
//! job is contained to its own cell (`Err(panic message)`) instead of
//! aborting the whole run. Both the sharded multi-channel simulator (one
//! job per channel shard) and the bench harness (one job per experiment
//! cell) fan out on this pool.

// Lock unwraps here are on mutexes no job can poison (job panics are
// contained by `catch_unwind` before they reach a lock), and the final
// slot expect is a pool invariant.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Optional progress reporting for long matrix runs, enabled by
/// `AQUA_BENCH_PROGRESS=1` and off by default (so default stderr output —
/// and every CSV diff driven by it — stays byte-identical). Writes one
/// jobs-done/total line with elapsed wallclock and a linear ETA to stderr
/// whenever a job starts or completes; when the caller labeled its items
/// (the sharded simulator labels channels), the in-flight count carries a
/// per-label breakdown.
struct Progress {
    total: usize,
    done: AtomicUsize,
    /// Indices currently in flight, in input order (drives both the count
    /// and the labeled breakdown).
    active: Mutex<BTreeSet<usize>>,
    /// One label per item when the caller provided them; empty otherwise.
    labels: Vec<String>,
    start: std::time::Instant,
}

impl Progress {
    /// A live reporter when `AQUA_BENCH_PROGRESS=1`, `None` otherwise. The
    /// `Instant` is only read when the reporter is live.
    fn from_env(total: usize, labels: Vec<String>) -> Option<Progress> {
        let on = std::env::var("AQUA_BENCH_PROGRESS").is_ok_and(|v| v.trim() == "1");
        (on && total > 0).then(|| Progress {
            total,
            done: AtomicUsize::new(0),
            active: Mutex::new(BTreeSet::new()),
            labels,
            start: std::time::Instant::now(),
        })
    }

    fn note_start(&self, index: usize) {
        self.active.lock().unwrap().insert(index);
        self.report();
    }

    fn note(&self, index: usize) {
        self.active.lock().unwrap().remove(&index);
        self.done.fetch_add(1, Ordering::Relaxed);
        self.report();
    }

    fn report(&self) {
        let done = self.done.load(Ordering::Relaxed);
        let elapsed = self.start.elapsed().as_secs_f64();
        let active = self.active.lock().unwrap();
        let labels: Vec<&str> = active
            .iter()
            .filter_map(|&i| self.labels.get(i).map(String::as_str))
            .collect();
        eprintln!(
            "{}",
            progress_line(done, self.total, active.len(), elapsed, &labels)
        );
    }
}

/// Formats one progress report line: jobs done / total, jobs currently in
/// flight (with a per-label breakdown when the caller labeled its items),
/// elapsed wallclock seconds, and a linear-extrapolation ETA for the
/// remaining jobs. Until the first completion lands there is no completion
/// rate, so the ETA is seeded from the oldest *started* job instead: it
/// has been running for the whole elapsed window without finishing, so
/// per-job time is at least `elapsed` and the estimate prints as a `>=`
/// lower bound (`--` only before any job starts).
pub fn progress_line(
    done: usize,
    total: usize,
    in_flight: usize,
    elapsed_s: f64,
    active: &[&str],
) -> String {
    let remaining = total.saturating_sub(done);
    let eta = if done > 0 {
        format!("{:.1}s", elapsed_s / done as f64 * remaining as f64)
    } else if in_flight > 0 && elapsed_s > 0.0 {
        format!(">={:.1}s", elapsed_s * remaining as f64 / in_flight as f64)
    } else {
        "--".to_string()
    };
    let breakdown = if active.is_empty() {
        String::new()
    } else {
        format!(" ({})", active.join(" "))
    };
    format!(
        "[pool] {done}/{total} jobs done, {in_flight} in flight{breakdown}, \
         elapsed {elapsed_s:.1}s, eta {eta}"
    )
}

/// Runs `f(index, item)` over every item with at most `jobs` running
/// concurrently, returning results in input order.
///
/// `jobs <= 1` (or a single item) recovers strictly serial behaviour: every
/// job runs inline on the caller's thread and no threads are spawned.
/// A job that panics yields `Err` carrying the panic message; the remaining
/// jobs still run to completion. Set `AQUA_BENCH_PROGRESS=1` for a
/// per-completion progress line on stderr.
pub fn run_indexed<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<Result<T, String>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    run_labeled(jobs, items, Vec::new(), f)
}

/// [`run_indexed`] with one progress label per item (`labels[i]` names
/// `items[i]`; an empty vector disables the breakdown). Labels only feed
/// the opt-in progress reporter — the sharded simulator passes `chN` so a
/// long multi-channel run shows *which* channels are still in flight —
/// and never touch results.
pub fn run_labeled<I, T, F>(
    jobs: usize,
    items: &[I],
    labels: Vec<String>,
    f: F,
) -> Vec<Result<T, String>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let progress = Progress::from_env(items.len(), labels);
    if jobs <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if let Some(p) = &progress {
                    p.note_start(i);
                }
                let outcome = run_one(i, item, &f);
                if let Some(p) = &progress {
                    p.note(i);
                }
                outcome
            })
            .collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                if let Some(p) = &progress {
                    p.note_start(i);
                }
                let outcome = run_one(i, &items[i], &f);
                *slots[i].lock().unwrap() = Some(outcome);
                if let Some(p) = &progress {
                    p.note(i);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

fn run_one<I, T>(
    index: usize,
    item: &I,
    f: &(impl Fn(usize, &I) -> T + Sync),
) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(|| f(index, item))).map_err(panic_message)
}

/// Renders a `catch_unwind` payload as the panic message (shared with the
/// bench supervised runner, whose retry contract compares these
/// byte-for-byte, and with the sharded simulator's panic propagation).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..57).collect();
        for jobs in [1, 2, 4, 16] {
            let out = run_indexed(jobs, &items, |i, &item| {
                assert_eq!(i, item);
                item * 10
            });
            let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..57).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_become_failed_cells_without_stopping_others() {
        let items: Vec<u32> = (0..20).collect();
        let out = run_indexed(4, &items, |_, &item| {
            if item % 7 == 3 {
                panic!("boom at {item}");
            }
            item
        });
        for (i, r) in out.iter().enumerate() {
            if i % 7 == 3 {
                assert_eq!(r.as_ref().unwrap_err(), &format!("boom at {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32);
            }
        }
    }

    #[test]
    fn serial_mode_runs_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let out = run_indexed(1, &[1, 2, 3], |_, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x
        });
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = run_indexed(8, &items, |i, _| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        let seen: HashSet<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<Result<u8, String>> = run_indexed(4, &[], |_, _: &u8| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn progress_lines_report_elapsed_and_linear_eta() {
        // 3 of 12 jobs in 6 s -> 2 s/job -> 18 s for the remaining 9.
        assert_eq!(
            progress_line(3, 12, 4, 6.0, &[]),
            "[pool] 3/12 jobs done, 4 in flight, elapsed 6.0s, eta 18.0s"
        );
        // Completion reports zero ETA.
        assert_eq!(
            progress_line(12, 12, 0, 24.5, &[]),
            "[pool] 12/12 jobs done, 0 in flight, elapsed 24.5s, eta 0.0s"
        );
        // Before the first completion the ETA is seeded from the oldest
        // started job: 8 jobs in flight for 2 s and none done means every
        // job takes at least 2 s, so the 12 remaining at 8-wide cost at
        // least 2.0 * 12 / 8 = 3 s — a lower bound, marked as one.
        assert_eq!(
            progress_line(0, 12, 8, 2.0, &[]),
            "[pool] 0/12 jobs done, 8 in flight, elapsed 2.0s, eta >=3.0s"
        );
        // Before anything *starts* there is still nothing to seed from.
        assert_eq!(
            progress_line(0, 12, 0, 0.0, &[]),
            "[pool] 0/12 jobs done, 0 in flight, elapsed 0.0s, eta --"
        );
    }

    #[test]
    fn progress_lines_break_down_labeled_in_flight_jobs() {
        // Labeled items (the sharded simulator labels channel shards)
        // show which ones are still in flight.
        assert_eq!(
            progress_line(1, 4, 2, 6.0, &["ch1", "ch3"]),
            "[pool] 1/4 jobs done, 2 in flight (ch1 ch3), elapsed 6.0s, eta 18.0s"
        );
    }

    #[test]
    fn progress_reporter_is_off_by_default() {
        // Tests run with AQUA_BENCH_PROGRESS unset (or not "1"); the
        // reporter must stay dormant so stderr-sensitive diffs hold.
        if std::env::var("AQUA_BENCH_PROGRESS").map(|v| v == "1") != Ok(true) {
            assert!(Progress::from_env(10, Vec::new()).is_none());
        }
        assert!(
            Progress::from_env(0, Vec::new()).is_none(),
            "empty pools never report"
        );
    }
}
