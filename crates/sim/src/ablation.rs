//! Causal cost ablation: what-if knobs for slowdown attribution.
//!
//! The paper's §IV-G explains a mitigation's slowdown as the sum of
//! first-order costs (exclusive channel blocking during migrations, table
//! lookups on the access critical path, extra table traffic queueing on the
//! bus). Measuring those costs from one run is unreliable — the MLP-limited
//! cores absorb part of every stall — so the attribution report instead
//! *re-runs* the identical seeded simulation with one cost zeroed at a time
//! and measures how much work comes back. Each knob removes one cost's
//! timing effect while leaving the mitigation's behavior (which rows
//! migrate, what the tables contain, what the tracker sees) untouched.

/// Which mitigation costs the simulator should pretend are free.
///
/// All false (the default) is the normal, fully-costed simulation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostAblation {
    /// Row migrations (`BlockChannel` actions) hold the channel for zero
    /// time: quarantine/swap decisions still happen, data still moves in the
    /// shadow memory, but demand traffic never waits behind a migration.
    pub free_migration_blocking: bool,
    /// Mapping-table lookups cost zero critical-path latency: the SRAM
    /// lookup is instant and any in-DRAM table walk happens off the access's
    /// critical path (its bus/bank traffic still occurs).
    pub free_lookup_latency: bool,
    /// The mitigation's extra table traffic (in-DRAM FPT/RPT reads and
    /// `TableWrites`) occupies the bus for zero time, removing the queueing
    /// pressure that traffic adds to demand bursts.
    pub free_table_traffic: bool,
}

impl CostAblation {
    /// No cost is ablated (the fully-costed run).
    pub const NONE: CostAblation = CostAblation {
        free_migration_blocking: false,
        free_lookup_latency: false,
        free_table_traffic: false,
    };

    /// Only migration blocking is free.
    pub const FREE_MIGRATION: CostAblation = CostAblation {
        free_migration_blocking: true,
        ..Self::NONE
    };

    /// Only lookup latency is free.
    pub const FREE_LOOKUP: CostAblation = CostAblation {
        free_lookup_latency: true,
        ..Self::NONE
    };

    /// Only table traffic is free.
    pub const FREE_TABLE_TRAFFIC: CostAblation = CostAblation {
        free_table_traffic: true,
        ..Self::NONE
    };

    /// Whether any cost is ablated.
    pub fn any(&self) -> bool {
        self.free_migration_blocking || self.free_lookup_latency || self.free_table_traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_flip_exactly_one_knob() {
        assert!(!CostAblation::NONE.any());
        assert!(CostAblation::default() == CostAblation::NONE);
        for (preset, expect) in [
            (CostAblation::FREE_MIGRATION, (true, false, false)),
            (CostAblation::FREE_LOOKUP, (false, true, false)),
            (CostAblation::FREE_TABLE_TRAFFIC, (false, false, true)),
        ] {
            assert!(preset.any());
            assert_eq!(
                (
                    preset.free_migration_blocking,
                    preset.free_lookup_latency,
                    preset.free_table_traffic
                ),
                expect
            );
        }
    }
}
