//! Event-driven memory-system simulator.
//!
//! This crate stands in for the paper's gem5 setup (see DESIGN.md for the
//! substitution rationale). It simulates:
//!
//! - up to four **MLP-limited cores**, each driving a deterministic
//!   [`RequestGenerator`](aqua_workload::RequestGenerator) stream. A core
//!   issues its next request when its compute "gap" has elapsed *and* an
//!   outstanding-miss slot is free — the first-order model of an OoO core's
//!   memory-level parallelism;
//! - the **shared DDR4 channel and banks** from [`aqua_dram`], including
//!   refresh blackouts and the exclusive channel blocking of row migrations
//!   (the dominant slowdown source in the paper, section IV-G);
//! - any **[`Mitigation`](aqua_dram::mitigation::Mitigation)** scheme —
//!   AQUA (SRAM or memory-mapped), RRS, victim refresh, Blockhammer, or the
//!   no-op baseline — driven through the translate / on-activation protocol;
//! - a ground-truth **[`ActivationOracle`]** that counts every physical row
//!   activation (including mitigative victim refreshes, which the trackers
//!   never see — exactly the blind spot Half-Double exploits) and reports
//!   any row exceeding `T_RH` activations within a two-epoch window.
//!
//! The performance metric is work completed in fixed wall-clock time:
//! `normalized_perf = requests(mitigated) / requests(baseline)` for the same
//! seeded request streams, equivalent to the paper's normalized IPC.
//!
//! # Example
//!
//! ```no_run
//! use aqua_dram::BaselineConfig;
//! use aqua_sim::{SimConfig, Simulation};
//! use aqua_dram::mitigation::NoMitigation;
//! use aqua_workload::{spec, AddressSpace};
//!
//! let base = BaselineConfig::paper_table1();
//! let cfg = SimConfig::new(base).epochs(2);
//! let space = AddressSpace::new(base.geometry, 0.98);
//! let lbm = spec::by_name("lbm").unwrap();
//! let gens = (0..4).map(|c| {
//!     Box::new(lbm.generator(&space, c, 4, 42)) as Box<dyn aqua_workload::RequestGenerator>
//! });
//! let mut sim = Simulation::new(cfg, NoMitigation::new(base.geometry), gens);
//! let report = sim.run();
//! println!("requests completed: {}", report.requests_done);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Robustness: the simulator must degrade gracefully under injected faults,
// never abort. Tests keep their unwraps (a failed unwrap there IS the test
// failing).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod ablation;
mod core_model;
mod oracle;
pub mod pool;
mod report;
mod shadow;
mod sharded;
mod system;

pub use ablation::CostAblation;
pub use core_model::CoreState;
pub use oracle::{ActivationOracle, OracleSummary};
pub use report::{gmean, RunReport};
pub use shadow::ShadowMemory;
pub use sharded::ShardedSimulation;
pub use system::{SimConfig, Simulation};
