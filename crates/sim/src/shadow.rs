//! Shadow memory: end-to-end data-placement verification.
//!
//! Every row migration a mitigation scheme performs is declared as a
//! [`DataMovement`](aqua_dram::mitigation::DataMovement). The shadow memory
//! replays those movements on a map of *which logical row's data lives in
//! each physical row* and checks, on every access, that the scheme's address
//! translation resolved to the physical row that actually holds the
//! requested data. Any divergence — an FPT pointing at a recycled slot, an
//! eviction to the wrong home, a mis-sequenced swap — shows up as an
//! integrity violation instead of silent data corruption.

use aqua_dram::mitigation::DataMovement;
use aqua_dram::{DramGeometry, GlobalRowId, RowAddr};

const VACANT: u32 = u32::MAX;

/// Tracks data placement across migrations and verifies translations.
#[derive(Debug)]
pub struct ShadowMemory {
    rows_per_bank: u32,
    /// `contents[phys]` = logical row id stored there (or `VACANT`).
    contents: Vec<u32>,
    violations: u64,
}

impl ShadowMemory {
    /// Creates the shadow with identity placement: every physical row holds
    /// its own logical row's data.
    pub fn new(geometry: &DramGeometry) -> Self {
        let rows = geometry.total_rows() as usize;
        ShadowMemory {
            rows_per_bank: geometry.rows_per_bank,
            contents: (0..rows as u32).collect(),
            violations: 0,
        }
    }

    fn index(&self, row: RowAddr) -> usize {
        row.bank.index() as usize * self.rows_per_bank as usize + row.row as usize
    }

    /// Marks `row` as holding no data (reserved regions like AQUA's RQA).
    pub fn vacate(&mut self, row: RowAddr) {
        let i = self.index(row);
        self.contents[i] = VACANT;
    }

    /// Integrity violations observed so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The logical row whose data occupies `phys`, if any.
    pub fn occupant(&self, phys: RowAddr) -> Option<GlobalRowId> {
        let c = self.contents[self.index(phys)];
        (c != VACANT).then(|| GlobalRowId::new(c as u64))
    }

    /// Applies one declared data movement.
    pub fn apply(&mut self, movement: DataMovement) {
        match movement {
            DataMovement::None => {}
            DataMovement::Move { from, to } => {
                let fi = self.index(from);
                let ti = self.index(to);
                if self.contents[ti] != VACANT {
                    // Overwriting live data is a bug in the scheme's
                    // sequencing (e.g. installing before evicting).
                    self.violations += 1;
                }
                self.contents[ti] = self.contents[fi];
                self.contents[fi] = VACANT;
            }
            DataMovement::Swap { a, b } => {
                let ai = self.index(a);
                let bi = self.index(b);
                self.contents.swap(ai, bi);
            }
        }
    }

    /// Verifies that accessing `phys` returns the data of logical `row`.
    pub fn verify(&mut self, row: GlobalRowId, phys: RowAddr) {
        if self.contents[self.index(phys)] != row.index() as u32 {
            self.violations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn addr(row: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(0),
            row,
        }
    }

    fn shadow() -> ShadowMemory {
        ShadowMemory::new(&DramGeometry::tiny())
    }

    #[test]
    fn identity_placement_verifies() {
        let mut s = shadow();
        s.verify(GlobalRowId::new(5), addr(5));
        assert_eq!(s.violations(), 0);
        s.verify(GlobalRowId::new(5), addr(6));
        assert_eq!(s.violations(), 1);
    }

    #[test]
    fn move_relocates_data() {
        let mut s = shadow();
        s.vacate(addr(900));
        s.apply(DataMovement::Move {
            from: addr(5),
            to: addr(900),
        });
        s.verify(GlobalRowId::new(5), addr(900));
        assert_eq!(s.occupant(addr(5)), None);
        assert_eq!(s.violations(), 0);
    }

    #[test]
    fn move_onto_live_data_is_flagged() {
        let mut s = shadow();
        s.apply(DataMovement::Move {
            from: addr(5),
            to: addr(6),
        });
        assert_eq!(s.violations(), 1);
    }

    #[test]
    fn swap_exchanges_data() {
        let mut s = shadow();
        s.apply(DataMovement::Swap {
            a: addr(3),
            b: addr(9),
        });
        s.verify(GlobalRowId::new(3), addr(9));
        s.verify(GlobalRowId::new(9), addr(3));
        assert_eq!(s.violations(), 0);
        // Swapping back restores identity.
        s.apply(DataMovement::Swap {
            a: addr(3),
            b: addr(9),
        });
        s.verify(GlobalRowId::new(3), addr(3));
        assert_eq!(s.violations(), 0);
    }

    #[test]
    fn round_trip_move_restores_home() {
        let mut s = shadow();
        s.vacate(addr(1000));
        s.apply(DataMovement::Move {
            from: addr(7),
            to: addr(1000),
        });
        s.apply(DataMovement::Move {
            from: addr(1000),
            to: addr(7),
        });
        s.verify(GlobalRowId::new(7), addr(7));
        assert_eq!(s.occupant(addr(1000)), None);
        assert_eq!(s.violations(), 0);
    }
}
