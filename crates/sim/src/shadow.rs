//! Shadow memory: end-to-end data-placement verification.
//!
//! Every row migration a mitigation scheme performs is declared as a
//! [`DataMovement`](aqua_dram::mitigation::DataMovement). The shadow memory
//! replays those movements on a map of *which logical row's data lives in
//! each physical row* and checks, on every access, that the scheme's address
//! translation resolved to the physical row that actually holds the
//! requested data. Any divergence — an FPT pointing at a recycled slot, an
//! eviction to the wrong home, a mis-sequenced swap — shows up as an
//! integrity violation instead of silent data corruption.
//!
//! The shadow itself must survive corrupt inputs: under fault injection a
//! scheme may hand it an out-of-geometry address. Those are *counted* as
//! violations, never panics, so a fault campaign can keep simulating and
//! report the damage at the end of the run.

use aqua_dram::mitigation::DataMovement;
use aqua_dram::{DramGeometry, GlobalRowId, RowAddr};

/// Sentinel for "no data here". Stored in the same `u32` as logical row ids,
/// so a geometry with `u32::MAX` (~4.3 G) rows or more would collide with
/// it; [`ShadowMemory::new`] rejects such geometries up front. Every
/// configuration in this repository (paper-scale is 2 M rows per rank) is
/// orders of magnitude below the limit.
const VACANT: u32 = u32::MAX;

/// Tracks data placement across migrations and verifies translations.
#[derive(Debug)]
pub struct ShadowMemory {
    rows_per_bank: u32,
    /// `contents[phys]` = logical row id stored there (or `VACANT`).
    contents: Vec<u32>,
    violations: u64,
}

impl ShadowMemory {
    /// Creates the shadow with identity placement: every physical row holds
    /// its own logical row's data.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has `u32::MAX` rows or more (the top row id
    /// would collide with the vacancy sentinel).
    pub fn new(geometry: &DramGeometry) -> Self {
        let rows = geometry.total_rows();
        assert!(
            rows < u64::from(VACANT),
            "geometry with {rows} rows collides with the shadow's vacancy sentinel"
        );
        ShadowMemory {
            rows_per_bank: geometry.rows_per_bank,
            contents: (0..rows as u32).collect(),
            violations: 0,
        }
    }

    /// Flat index of `row`, or `None` if the address lies outside the
    /// geometry the shadow was built for.
    fn index(&self, row: RowAddr) -> Option<usize> {
        if row.row >= self.rows_per_bank {
            return None;
        }
        let i = row.bank.index() as usize * self.rows_per_bank as usize + row.row as usize;
        (i < self.contents.len()).then_some(i)
    }

    /// Marks `row` as holding no data (reserved regions like AQUA's RQA).
    /// An out-of-geometry address is counted as a violation.
    pub fn vacate(&mut self, row: RowAddr) {
        match self.index(row) {
            Some(i) => self.contents[i] = VACANT,
            None => self.violations += 1,
        }
    }

    /// Integrity violations observed so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The logical row whose data occupies `phys`, if any (`None` for vacant
    /// or out-of-geometry addresses).
    pub fn occupant(&self, phys: RowAddr) -> Option<GlobalRowId> {
        let c = self.contents[self.index(phys)?];
        (c != VACANT).then(|| GlobalRowId::new(c as u64))
    }

    /// Applies one declared data movement. Movements naming rows outside
    /// the geometry are dropped and counted.
    pub fn apply(&mut self, movement: DataMovement) {
        match movement {
            DataMovement::None => {}
            DataMovement::Move { from, to } => {
                let (Some(fi), Some(ti)) = (self.index(from), self.index(to)) else {
                    self.violations += 1;
                    return;
                };
                if self.contents[ti] != VACANT {
                    // Overwriting live data is a bug in the scheme's
                    // sequencing (e.g. installing before evicting).
                    self.violations += 1;
                }
                self.contents[ti] = self.contents[fi];
                self.contents[fi] = VACANT;
            }
            DataMovement::Swap { a, b } => {
                let (Some(ai), Some(bi)) = (self.index(a), self.index(b)) else {
                    self.violations += 1;
                    return;
                };
                self.contents.swap(ai, bi);
            }
        }
    }

    /// Whether accessing `phys` would return the data of logical `row`
    /// (non-mutating: used by the fault driver's end-of-run audit).
    pub fn check(&self, row: GlobalRowId, phys: RowAddr) -> bool {
        self.index(phys)
            .is_some_and(|i| u64::from(self.contents[i]) == row.index())
    }

    /// Verifies that accessing `phys` returns the data of logical `row`,
    /// counting a violation (and returning `false`) if it does not.
    pub fn verify(&mut self, row: GlobalRowId, phys: RowAddr) -> bool {
        let ok = self.check(row, phys);
        if !ok {
            self.violations += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dram::BankId;

    fn addr(row: u32) -> RowAddr {
        RowAddr {
            bank: BankId::new(0),
            row,
        }
    }

    fn shadow() -> ShadowMemory {
        ShadowMemory::new(&DramGeometry::tiny())
    }

    #[test]
    fn identity_placement_verifies() {
        let mut s = shadow();
        assert!(s.verify(GlobalRowId::new(5), addr(5)));
        assert_eq!(s.violations(), 0);
        assert!(!s.verify(GlobalRowId::new(5), addr(6)));
        assert_eq!(s.violations(), 1);
    }

    #[test]
    fn move_relocates_data() {
        let mut s = shadow();
        s.vacate(addr(900));
        s.apply(DataMovement::Move {
            from: addr(5),
            to: addr(900),
        });
        s.verify(GlobalRowId::new(5), addr(900));
        assert_eq!(s.occupant(addr(5)), None);
        assert_eq!(s.violations(), 0);
    }

    #[test]
    fn move_onto_live_data_is_flagged() {
        let mut s = shadow();
        s.apply(DataMovement::Move {
            from: addr(5),
            to: addr(6),
        });
        assert_eq!(s.violations(), 1);
    }

    #[test]
    fn swap_exchanges_data() {
        let mut s = shadow();
        s.apply(DataMovement::Swap {
            a: addr(3),
            b: addr(9),
        });
        s.verify(GlobalRowId::new(3), addr(9));
        s.verify(GlobalRowId::new(9), addr(3));
        assert_eq!(s.violations(), 0);
        // Swapping back restores identity.
        s.apply(DataMovement::Swap {
            a: addr(3),
            b: addr(9),
        });
        s.verify(GlobalRowId::new(3), addr(3));
        assert_eq!(s.violations(), 0);
    }

    #[test]
    fn round_trip_move_restores_home() {
        let mut s = shadow();
        s.vacate(addr(1000));
        s.apply(DataMovement::Move {
            from: addr(7),
            to: addr(1000),
        });
        s.apply(DataMovement::Move {
            from: addr(1000),
            to: addr(7),
        });
        s.verify(GlobalRowId::new(7), addr(7));
        assert_eq!(s.occupant(addr(1000)), None);
        assert_eq!(s.violations(), 0);
    }

    #[test]
    fn out_of_geometry_addresses_are_counted_not_fatal() {
        let g = DramGeometry::tiny();
        let mut s = ShadowMemory::new(&g);
        let bad = RowAddr {
            bank: BankId::new(0),
            row: g.rows_per_bank, // one past the last row of the bank
        };
        assert!(!s.verify(GlobalRowId::new(0), bad));
        s.vacate(bad);
        s.apply(DataMovement::Move {
            from: bad,
            to: addr(3),
        });
        s.apply(DataMovement::Swap { a: addr(3), b: bad });
        assert_eq!(s.violations(), 4);
        assert_eq!(s.occupant(bad), None);
        // In-geometry state is untouched by the rejected movements.
        assert!(s.check(GlobalRowId::new(3), addr(3)));
    }

    #[test]
    fn check_is_non_mutating() {
        let s = shadow();
        assert!(s.check(GlobalRowId::new(5), addr(5)));
        assert!(!s.check(GlobalRowId::new(5), addr(6)));
        assert_eq!(s.violations(), 0);
    }
}
