//! Property tests for the fault-injection loop (ISSUE 3 satellite):
//! a random seeded fault plan (a) never panics the simulator, (b) replays
//! byte-identically, and (c) leaves every injected translation corruption
//! accounted for — recovered, counted by the shadow memory, or dormant.
//! Zero silent escapes.

use aqua::{AquaConfig, AquaEngine};
use aqua_dram::BaselineConfig;
use aqua_faults::FaultSpec;
use aqua_rrs::{RrsConfig, RrsEngine};
use aqua_sim::{RunReport, SimConfig, Simulation};
use aqua_workload::attack::Hammer;
use aqua_workload::{AddressSpace, RequestGenerator};
use proptest::prelude::*;

fn base() -> BaselineConfig {
    BaselineConfig::tiny()
}

fn space() -> AddressSpace {
    AddressSpace::new(base().geometry, 0.75)
}

fn gen() -> Box<dyn RequestGenerator> {
    Box::new(Hammer::double_sided(&space(), 0, 100))
}

fn aqua_config() -> AquaConfig {
    let cfg = AquaConfig::for_rowhammer_threshold(1000, &base()).with_rqa_rows(512);
    AquaConfig {
        tracker_entries_per_bank: 256,
        fpt_entries: 1024,
        ..cfg
    }
}

/// Runs one seeded fault campaign for the selected scheme (0 = AQUA/SRAM,
/// 1 = AQUA/memory-mapped, 2 = RRS) and returns the report.
fn run_campaign(scheme: u8, spec: FaultSpec) -> RunReport {
    let cfg = SimConfig::new(base()).epochs(2).t_rh(1000).faults(spec);
    match scheme {
        0 => Simulation::new(cfg, AquaEngine::new(aqua_config()).unwrap(), [gen()]).run(),
        1 => {
            let mapped = aqua_config().with_mapped_tables();
            Simulation::new(cfg, AquaEngine::new(mapped).unwrap(), [gen()]).run()
        }
        _ => {
            let mut rrs = RrsConfig::for_rowhammer_threshold(1000, &base());
            rrs.tracker_entries_per_bank = 256;
            rrs.rit_pairs = 64;
            Simulation::new(cfg, RrsEngine::new(rrs), [gen()]).run()
        }
    }
}

proptest! {
    // Full simulator runs are ~100 ms each and every case runs each plan
    // twice, so the case budget is kept deliberately small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random plans neither panic nor let a corruption escape silently, and
    /// equal seeds replay the entire run report byte-identically — across
    /// every engine family (SRAM tables, memory-mapped tables, RRS).
    #[test]
    fn random_fault_plans_are_survivable_and_deterministic(
        seed in any::<u64>(),
        rate in 1u32..24,
        scheme in 0u8..3,
    ) {
        let spec = FaultSpec { seed, events_per_epoch: rate };
        let report = run_campaign(scheme, spec);
        let f = report.faults;
        // (a) Reaching this line at all means no panic; the plan was fully
        // dispatched.
        prop_assert_eq!(f.injected, 2 * u64::from(rate));
        // (c) Every corruption is accounted for, with no silent escapes.
        prop_assert_eq!(
            f.corruptions,
            f.recovered_rows + f.escaped_counted + f.dormant,
            "unaccounted corruptions: {:?}", f
        );
        prop_assert_eq!(f.unaccounted, 0, "silent escapes: {:?}", f);
        // (b) Byte-identical replay of the whole run.
        let replay = run_campaign(scheme, spec);
        prop_assert_eq!(report, replay);
    }

    /// A zero-rate campaign is indistinguishable from no campaign at all:
    /// wiring the injector must not perturb a fault-free simulation.
    #[test]
    fn zero_rate_campaign_matches_fault_free_run(scheme in 0u8..3) {
        let spec = FaultSpec { seed: 9, events_per_epoch: 0 };
        let with_plumbing = run_campaign(scheme, spec);
        let cfg = SimConfig::new(base()).epochs(2).t_rh(1000);
        let plain = match scheme {
            0 => Simulation::new(cfg, AquaEngine::new(aqua_config()).unwrap(), [gen()]).run(),
            1 => {
                let mapped = aqua_config().with_mapped_tables();
                Simulation::new(cfg, AquaEngine::new(mapped).unwrap(), [gen()]).run()
            }
            _ => {
                let mut rrs = RrsConfig::for_rowhammer_threshold(1000, &base());
                rrs.tracker_entries_per_bank = 256;
                rrs.rit_pairs = 64;
                Simulation::new(cfg, RrsEngine::new(rrs), [gen()]).run()
            }
        };
        prop_assert_eq!(with_plumbing.faults, aqua_faults::FaultReport::default());
        prop_assert_eq!(with_plumbing, plain);
    }
}
