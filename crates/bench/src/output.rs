//! Table printing and CSV output for the experiment binaries.

use std::fs;
use std::path::PathBuf;

use aqua_telemetry::Telemetry;

/// Prints a fixed-width table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Writes rows as CSV into `target/experiments/<name>.csv`; returns the path.
///
/// # Panics
///
/// Panics if the experiments directory cannot be created or written.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(format!("{name}.csv"));
    let mut body = header.join(",") + "\n";
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    fs::write(&path, body).expect("write experiment CSV");
    println!("wrote {}", path.display());
    path
}

/// [`write_csv`] bracketed by a `bench.csv` wallclock phase on `telemetry`,
/// so CSV serialization shows up in host-time profiles next to
/// `bench.setup`/`bench.run`/`bench.merge`. Identical output to
/// [`write_csv`]; with the `telemetry` feature off (or a disabled hub) the
/// phase guard is inert.
///
/// # Panics
///
/// Panics if the experiments directory cannot be created or written.
pub fn write_csv_instrumented(
    telemetry: &Telemetry,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> PathBuf {
    let _phase = telemetry.phase("bench.csv");
    write_csv(name, header, rows)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.021), "2.1%");
        assert_eq!(f2(2.953), "2.95");
    }

    #[test]
    fn csv_roundtrip() {
        let p = write_csv("unit-test", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
    }

    #[test]
    fn instrumented_csv_matches_plain_and_records_a_phase() {
        let hub = Telemetry::new(Default::default());
        let p = write_csv_instrumented(
            &hub,
            "unit-test-instrumented",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        assert_eq!(std::fs::read_to_string(p).unwrap(), "a,b\n1,2\n");
        if hub.is_enabled() {
            let summary = hub.summary().unwrap();
            let wall = summary.wallclock.expect("csv phase recorded");
            assert_eq!(wall.phase("bench.csv").map(|s| s.count), Some(1));
        }
    }
}
