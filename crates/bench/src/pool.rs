//! A bounded worker pool for embarrassingly-parallel experiment cells.
//!
//! Hand-rolled on `std::thread::scope` — no external dependencies, no
//! unsafe. Jobs are index-tagged, so results always come back in input
//! order regardless of how the OS schedules the workers, and a panicking
//! job is contained to its own cell (`Err(panic message)`) instead of
//! aborting the whole figure.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(index, item)` over every item with at most `jobs` running
/// concurrently, returning results in input order.
///
/// `jobs <= 1` (or a single item) recovers strictly serial behaviour: every
/// job runs inline on the caller's thread and no threads are spawned.
/// A job that panics yields `Err` carrying the panic message; the remaining
/// jobs still run to completion.
pub fn run_indexed<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<Result<T, String>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item, &f))
            .collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let outcome = run_one(i, &items[i], &f);
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

fn run_one<I, T>(
    index: usize,
    item: &I,
    f: &(impl Fn(usize, &I) -> T + Sync),
) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(|| f(index, item))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "job panicked (non-string payload)".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..57).collect();
        for jobs in [1, 2, 4, 16] {
            let out = run_indexed(jobs, &items, |i, &item| {
                assert_eq!(i, item);
                item * 10
            });
            let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..57).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_become_failed_cells_without_stopping_others() {
        let items: Vec<u32> = (0..20).collect();
        let out = run_indexed(4, &items, |_, &item| {
            if item % 7 == 3 {
                panic!("boom at {item}");
            }
            item
        });
        for (i, r) in out.iter().enumerate() {
            if i % 7 == 3 {
                assert_eq!(r.as_ref().unwrap_err(), &format!("boom at {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u32);
            }
        }
    }

    #[test]
    fn serial_mode_runs_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let out = run_indexed(1, &[1, 2, 3], |_, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x
        });
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = run_indexed(8, &items, |i, _| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        let seen: HashSet<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<Result<u8, String>> = run_indexed(4, &[], |_, _: &u8| unreachable!());
        assert!(out.is_empty());
    }
}
