//! Performance-regression gate: canary metrics, baseline file format, and
//! tolerance-based comparison.
//!
//! The `regression_gate` binary runs a small canary matrix (three schemes x
//! two workloads at pinned epochs/threshold/seed), measures slowdown,
//! migration rate, the causal attribution decomposition, and span-derived
//! phase latencies, and compares them against the committed baseline
//! (`BENCH_8.json` at the repo root). The simulator is fully deterministic,
//! so an identical re-run reproduces the baseline exactly; the tolerances
//! below exist to absorb intentional small drift (a retuned constant, an
//! extra bookkeeping access) while still catching real regressions.
//!
//! On top of the behavioral metrics, the gate times repeated runs of one
//! canary cell against the host clock and gates on the **median accesses
//! per wallclock second** ([`ThroughputMetrics`]): a performance floor for
//! the hot loop, with a tolerance generous enough
//! ([`tolerance::THROUGHPUT_FACTOR`]) to survive machine-to-machine noise.
//! The multi-channel scaling canary ([`ScalingMetrics`]) gates the sharded
//! engine's parallel speedup the same way, adaptively: the
//! [`tolerance::SCALING_MIN_SPEEDUP`] floor arms only on hosts with at
//! least as many cores as canary channels. Pre-throughput (v1) and
//! pre-scaling (v3) baselines parse fine and simply skip those gates.
//!
//! The baseline file is JSON. The workspace has no JSON dependency, so this
//! module carries a small recursive-descent parser for the subset the gate
//! emits (objects, arrays, strings, finite numbers, booleans, null).

use std::fmt::Write as _;

/// Gate tolerances (documented in DESIGN.md section 11).
pub mod tolerance {
    /// Slowdown may grow by at most this many percentage points.
    pub const SLOWDOWN_PP: f64 = 2.0;
    /// Migrations per epoch may deviate (either direction) by this relative
    /// fraction — behavioral drift, not just a perf change.
    pub const MIGRATIONS_REL: f64 = 0.10;
    /// The attribution residual (interaction terms + drift) must stay
    /// within this many percentage points of zero.
    pub const RESIDUAL_PP: f64 = 1.0;
    /// A span-phase p50/p99 latency may grow by this relative fraction.
    pub const PHASE_REL: f64 = 0.25;
    /// Phase latencies below this floor (in ps) are never compared: at
    /// sub-nanosecond scale a one-bucket histogram shift is pure noise.
    pub const PHASE_FLOOR_PS: f64 = 1_000.0;
    /// Median canary throughput (accesses per host wallclock second) may
    /// fall to no less than `baseline / THROUGHPUT_FACTOR`. Host wallclock
    /// varies across machines, schedulers, and build flags far more than
    /// any simulated metric, so the factor stays well above percent-level
    /// noise — but after the hot-loop speed campaign (allocation-free
    /// per-access path, deterministic fast hashing, single-lock leaf
    /// spans) it is tightened from the original 4x to 2x: losing half the
    /// canary's throughput now means a real hot-path regression (a
    /// reintroduced per-access allocation or lock), not machine drift.
    /// Faster-than-baseline is always fine.
    pub const THROUGHPUT_FACTOR: f64 = 2.0;
    /// Minimum shard-scaling speedup of the 4-channel canary: the sharded
    /// run's median accesses/sec must be at least this multiple of the
    /// single-worker run's. Only enforced when the measuring host has at
    /// least as many cores as the canary has channels
    /// ([`ScalingMetrics::host_parallelism`]) — on a smaller host the
    /// shards time-slice one core and no parallel speedup can physically
    /// exist, so the numbers are recorded honestly but not gated.
    pub const SCALING_MIN_SPEEDUP: f64 = 2.5;
}

/// Span-derived latency of one migration phase, from the full run's
/// telemetry summary (`span.<name>` histograms). Empty when the build has
/// telemetry compiled out.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseLatency {
    /// Histogram name (e.g. `span.migration.install`).
    pub name: String,
    /// Median duration in picoseconds.
    pub p50_ps: f64,
    /// 99th-percentile duration in picoseconds.
    pub p99_ps: f64,
}

/// Attribution components for one cell, in percent of baseline throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellAttribution {
    /// Slowdown recovered by zeroing migration channel-blocking.
    pub migration_pct: f64,
    /// Slowdown recovered by zeroing table-lookup latency.
    pub lookup_pct: f64,
    /// Slowdown recovered by zeroing table bus traffic.
    pub table_traffic_pct: f64,
    /// `slowdown - (migration + lookup + table_traffic)`.
    pub residual_pct: f64,
}

/// All gated metrics for one `(scheme, workload)` canary cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Scheme name (`aqua-sram`, `aqua-mapped`, `rrs`).
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Measured slowdown vs the unmitigated baseline, percent.
    pub slowdown_pct: f64,
    /// Row migrations per 64 ms epoch in the fully-costed run.
    pub migrations_per_epoch: f64,
    /// Causal slowdown decomposition from the ablation re-runs.
    pub attribution: CellAttribution,
    /// Span-derived phase latencies (empty when telemetry is off).
    pub phases: Vec<PhaseLatency>,
}

/// Host-throughput measurement of the timing canary: one cell run
/// repeatedly under a wallclock timer. Medians over `repeats >= 5` runs
/// absorb scheduler noise; [`compare`] gates with the generous
/// [`tolerance::THROUGHPUT_FACTOR`] on top of that.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputMetrics {
    /// Scheme of the timed canary cell.
    pub scheme: String,
    /// Workload of the timed canary cell.
    pub workload: String,
    /// Timed repetitions the median was taken over.
    pub repeats: u64,
    /// Accesses simulated by one canary run (deterministic).
    pub accesses_per_run: u64,
    /// Median accesses per host wallclock second — the gated metric.
    pub median_accesses_per_sec: f64,
    /// Slowest repetition's accesses/sec (diagnostic only).
    pub min_accesses_per_sec: f64,
    /// Fastest repetition's accesses/sec (diagnostic only).
    pub max_accesses_per_sec: f64,
}

/// Shard-scaling measurement of the multi-channel canary: one cell on a
/// `channels`-channel topology, timed once with a single shard worker and
/// once with one worker per channel (bounded by the host). The runs are
/// asserted byte-identical by the `regression_gate` binary before timing;
/// this block records only the wallclock side.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingMetrics {
    /// Scheme of the scaling canary cell.
    pub scheme: String,
    /// Workload of the scaling canary cell.
    pub workload: String,
    /// Channels simulated (= maximum useful shard workers).
    pub channels: u64,
    /// Timed repetitions each median was taken over.
    pub repeats: u64,
    /// Accesses simulated by one canary run, summed over channels.
    pub accesses_per_run: u64,
    /// Median accesses/sec with `shard_workers = 1` (serial shards).
    pub single_accesses_per_sec: f64,
    /// Median accesses/sec with `shard_workers` parallel workers.
    pub sharded_accesses_per_sec: f64,
    /// Shard workers the parallel leg actually used
    /// (`min(channels, host_parallelism)`).
    pub shard_workers: u64,
    /// `available_parallelism()` of the measuring host — the gate only
    /// enforces [`tolerance::SCALING_MIN_SPEEDUP`] when this covers every
    /// channel.
    pub host_parallelism: u64,
    /// `sharded_accesses_per_sec / single_accesses_per_sec` — the gated
    /// scaling efficiency.
    pub scaling_efficiency: f64,
}

/// The whole gate report / baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Rowhammer threshold the canary ran at.
    pub t_rh: u64,
    /// Simulated epochs per run.
    pub epochs: u64,
    /// Workload seed.
    pub seed: u64,
    /// Whether the producing build had telemetry compiled in (controls
    /// whether phase latencies are compared).
    pub telemetry: bool,
    /// Host-throughput measurement, `None` in baselines produced before
    /// the throughput gate existed (they still parse and gate on the
    /// behavioral metrics alone).
    pub throughput: Option<ThroughputMetrics>,
    /// Shard-scaling measurement of the multi-channel canary, `None` in
    /// baselines produced before the sharded simulator existed (they
    /// still parse and skip the scaling gate).
    pub scaling: Option<ScalingMetrics>,
    /// One entry per canary cell, in matrix order.
    pub cells: Vec<CellMetrics>,
}

/// Median of a sample set (mean of the middle pair for even sizes; 0 for
/// an empty set).
pub fn median_of(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Formats a float so that parsing it back yields the identical `f64`
/// (Rust's shortest-roundtrip `Display`). Non-finite values — which valid
/// gate metrics never produce — serialize as 0 to keep the JSON parseable.
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl GateReport {
    /// Renders the report as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"aqua-bench-gate-v1\",\n  \"t_rh\": {},\n  \
             \"epochs\": {},\n  \"seed\": {},\n  \"telemetry\": {},\n  \"throughput\": ",
            self.t_rh, self.epochs, self.seed, self.telemetry
        );
        match &self.throughput {
            None => out.push_str("null"),
            Some(t) => {
                out.push_str("{\n    \"scheme\": ");
                push_json_str(&mut out, &t.scheme);
                out.push_str(",\n    \"workload\": ");
                push_json_str(&mut out, &t.workload);
                let _ = write!(
                    out,
                    ",\n    \"repeats\": {},\n    \"accesses_per_run\": {},\n    \
                     \"median_accesses_per_sec\": {},\n    \"min_accesses_per_sec\": {},\n    \
                     \"max_accesses_per_sec\": {}\n  }}",
                    t.repeats,
                    t.accesses_per_run,
                    num(t.median_accesses_per_sec),
                    num(t.min_accesses_per_sec),
                    num(t.max_accesses_per_sec)
                );
            }
        }
        out.push_str(",\n  \"scaling\": ");
        match &self.scaling {
            None => out.push_str("null"),
            Some(s) => {
                out.push_str("{\n    \"scheme\": ");
                push_json_str(&mut out, &s.scheme);
                out.push_str(",\n    \"workload\": ");
                push_json_str(&mut out, &s.workload);
                let _ = write!(
                    out,
                    ",\n    \"channels\": {},\n    \"repeats\": {},\n    \
                     \"accesses_per_run\": {},\n    \"single_accesses_per_sec\": {},\n    \
                     \"sharded_accesses_per_sec\": {},\n    \"shard_workers\": {},\n    \
                     \"host_parallelism\": {},\n    \"scaling_efficiency\": {}\n  }}",
                    s.channels,
                    s.repeats,
                    s.accesses_per_run,
                    num(s.single_accesses_per_sec),
                    num(s.sharded_accesses_per_sec),
                    s.shard_workers,
                    s.host_parallelism,
                    num(s.scaling_efficiency)
                );
            }
        }
        out.push_str(",\n  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"scheme\": ");
            push_json_str(&mut out, &c.scheme);
            out.push_str(",\n      \"workload\": ");
            push_json_str(&mut out, &c.workload);
            let _ = write!(
                out,
                ",\n      \"slowdown_pct\": {},\n      \"migrations_per_epoch\": {},\n      \
                 \"attribution\": {{\"migration_pct\": {}, \"lookup_pct\": {}, \
                 \"table_traffic_pct\": {}, \"residual_pct\": {}}},\n      \"phases\": [",
                num(c.slowdown_pct),
                num(c.migrations_per_epoch),
                num(c.attribution.migration_pct),
                num(c.attribution.lookup_pct),
                num(c.attribution.table_traffic_pct),
                num(c.attribution.residual_pct)
            );
            for (j, p) in c.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {\"name\": ");
                push_json_str(&mut out, &p.name);
                let _ = write!(
                    out,
                    ", \"p50_ps\": {}, \"p99_ps\": {}}}",
                    num(p.p50_ps),
                    num(p.p99_ps)
                );
            }
            if !c.phases.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a baseline file produced by [`GateReport::to_json`].
    pub fn from_json(text: &str) -> Result<GateReport, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("top level is not an object")?;
        match json::get(obj, "schema").and_then(JsonValue::as_str) {
            Some("aqua-bench-gate-v1") => {}
            Some(other) => return Err(format!("unknown schema {other:?}")),
            None => return Err("missing \"schema\"".into()),
        }
        let field_u64 = |name: &str| -> Result<u64, String> {
            json::get(obj, name)
                .and_then(JsonValue::as_f64)
                .map(|f| f as u64)
                .ok_or_else(|| format!("missing numeric field {name:?}"))
        };
        let cells_v = json::get(obj, "cells")
            .and_then(JsonValue::as_arr)
            .ok_or("missing \"cells\" array")?;
        let mut cells = Vec::new();
        for cv in cells_v {
            let co = cv.as_obj().ok_or("cell is not an object")?;
            let sfield = |name: &str| -> Result<String, String> {
                json::get(co, name)
                    .and_then(JsonValue::as_str)
                    .map(String::from)
                    .ok_or_else(|| format!("cell missing string field {name:?}"))
            };
            let nfield = |name: &str| -> Result<f64, String> {
                json::get(co, name)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("cell missing numeric field {name:?}"))
            };
            let ao = json::get(co, "attribution")
                .and_then(JsonValue::as_obj)
                .ok_or("cell missing \"attribution\"")?;
            let afield = |name: &str| -> Result<f64, String> {
                json::get(ao, name)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("attribution missing field {name:?}"))
            };
            let mut phases = Vec::new();
            for pv in json::get(co, "phases")
                .and_then(JsonValue::as_arr)
                .ok_or("cell missing \"phases\"")?
            {
                let po = pv.as_obj().ok_or("phase is not an object")?;
                let pget = |name: &str| -> Result<f64, String> {
                    json::get(po, name)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("phase missing field {name:?}"))
                };
                phases.push(PhaseLatency {
                    name: json::get(po, "name")
                        .and_then(JsonValue::as_str)
                        .ok_or("phase missing \"name\"")?
                        .to_string(),
                    p50_ps: pget("p50_ps")?,
                    p99_ps: pget("p99_ps")?,
                });
            }
            cells.push(CellMetrics {
                scheme: sfield("scheme")?,
                workload: sfield("workload")?,
                slowdown_pct: nfield("slowdown_pct")?,
                migrations_per_epoch: nfield("migrations_per_epoch")?,
                attribution: CellAttribution {
                    migration_pct: afield("migration_pct")?,
                    lookup_pct: afield("lookup_pct")?,
                    table_traffic_pct: afield("table_traffic_pct")?,
                    residual_pct: afield("residual_pct")?,
                },
                phases,
            });
        }
        // Absent or null in pre-throughput (v1) baselines: still parses,
        // and [`compare`] simply skips the throughput gate.
        let throughput = match json::get(obj, "throughput") {
            None | Some(JsonValue::Null) => None,
            Some(tv) => {
                let to = tv.as_obj().ok_or("\"throughput\" is not an object")?;
                let tnum = |name: &str| -> Result<f64, String> {
                    json::get(to, name)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("throughput missing numeric field {name:?}"))
                };
                let tstr = |name: &str| -> Result<String, String> {
                    json::get(to, name)
                        .and_then(JsonValue::as_str)
                        .map(String::from)
                        .ok_or_else(|| format!("throughput missing string field {name:?}"))
                };
                Some(ThroughputMetrics {
                    scheme: tstr("scheme")?,
                    workload: tstr("workload")?,
                    repeats: tnum("repeats")? as u64,
                    accesses_per_run: tnum("accesses_per_run")? as u64,
                    median_accesses_per_sec: tnum("median_accesses_per_sec")?,
                    min_accesses_per_sec: tnum("min_accesses_per_sec")?,
                    max_accesses_per_sec: tnum("max_accesses_per_sec")?,
                })
            }
        };
        // Absent or null in pre-sharding (v1-v3) baselines: still parses,
        // and [`compare`] simply skips the scaling gate.
        let scaling = match json::get(obj, "scaling") {
            None | Some(JsonValue::Null) => None,
            Some(sv) => {
                let so = sv.as_obj().ok_or("\"scaling\" is not an object")?;
                let snum = |name: &str| -> Result<f64, String> {
                    json::get(so, name)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("scaling missing numeric field {name:?}"))
                };
                let sstr = |name: &str| -> Result<String, String> {
                    json::get(so, name)
                        .and_then(JsonValue::as_str)
                        .map(String::from)
                        .ok_or_else(|| format!("scaling missing string field {name:?}"))
                };
                Some(ScalingMetrics {
                    scheme: sstr("scheme")?,
                    workload: sstr("workload")?,
                    channels: snum("channels")? as u64,
                    repeats: snum("repeats")? as u64,
                    accesses_per_run: snum("accesses_per_run")? as u64,
                    single_accesses_per_sec: snum("single_accesses_per_sec")?,
                    sharded_accesses_per_sec: snum("sharded_accesses_per_sec")?,
                    shard_workers: snum("shard_workers")? as u64,
                    host_parallelism: snum("host_parallelism")? as u64,
                    scaling_efficiency: snum("scaling_efficiency")?,
                })
            }
        };
        Ok(GateReport {
            t_rh: field_u64("t_rh")?,
            epochs: field_u64("epochs")?,
            seed: field_u64("seed")?,
            telemetry: json::get(obj, "telemetry")
                .and_then(JsonValue::as_bool)
                .ok_or("missing boolean field \"telemetry\"")?,
            throughput,
            scaling,
            cells,
        })
    }
}

/// Compares `current` against the committed `baseline` and returns one
/// human-readable line per violated tolerance (empty = gate passes).
///
/// Span-phase latencies are only compared when **both** reports were
/// produced with telemetry compiled in; a feature-off build gates on the
/// behavioral metrics alone.
pub fn compare(baseline: &GateReport, current: &GateReport) -> Vec<String> {
    use tolerance::*;
    let mut failures = Vec::new();
    if (baseline.t_rh, baseline.epochs, baseline.seed)
        != (current.t_rh, current.epochs, current.seed)
    {
        failures.push(format!(
            "canary configuration changed: baseline (t_rh={}, epochs={}, seed={}) \
             vs current (t_rh={}, epochs={}, seed={}) — regenerate the baseline",
            baseline.t_rh,
            baseline.epochs,
            baseline.seed,
            current.t_rh,
            current.epochs,
            current.seed
        ));
        return failures;
    }
    // The throughput gate is downward-only (slower fails, faster is fine)
    // and needs both sides: a pre-throughput baseline, or a current run
    // that skipped the timing canary, gates on behavior alone.
    if let (Some(bt), Some(ct)) = (&baseline.throughput, &current.throughput) {
        let floor = bt.median_accesses_per_sec / THROUGHPUT_FACTOR;
        if bt.median_accesses_per_sec > 0.0 && ct.median_accesses_per_sec < floor {
            failures.push(format!(
                "throughput: median {:.0} accesses/sec fell below {:.0} \
                 (baseline {:.0} / tolerance factor {THROUGHPUT_FACTOR}) on {}/{}",
                ct.median_accesses_per_sec,
                floor,
                bt.median_accesses_per_sec,
                bt.scheme,
                bt.workload
            ));
        }
    }
    // The scaling gate is host-parallelism-adaptive: a host with fewer
    // cores than the canary has channels cannot show a parallel speedup,
    // so its honest numbers are recorded but never gated. The baseline's
    // own efficiency is not a bound — the floor is absolute.
    if let Some(cs) = &current.scaling {
        if cs.host_parallelism >= cs.channels
            && cs.single_accesses_per_sec > 0.0
            && cs.scaling_efficiency < SCALING_MIN_SPEEDUP
        {
            failures.push(format!(
                "scaling: {}-channel canary reached only {:.2}x single-shard throughput \
                 ({:.0} vs {:.0} accesses/sec) on a {}-core host; the floor is \
                 {SCALING_MIN_SPEEDUP}x on {}/{}",
                cs.channels,
                cs.scaling_efficiency,
                cs.sharded_accesses_per_sec,
                cs.single_accesses_per_sec,
                cs.host_parallelism,
                cs.scheme,
                cs.workload
            ));
        }
    }
    for b in &baseline.cells {
        let id = format!("{}/{}", b.scheme, b.workload);
        let Some(c) = current
            .cells
            .iter()
            .find(|c| c.scheme == b.scheme && c.workload == b.workload)
        else {
            failures.push(format!("{id}: cell missing from current run"));
            continue;
        };
        if c.slowdown_pct > b.slowdown_pct + SLOWDOWN_PP {
            failures.push(format!(
                "{id}: slowdown {:.2}% exceeds baseline {:.2}% by more than {SLOWDOWN_PP} pp",
                c.slowdown_pct, b.slowdown_pct
            ));
        }
        let mig_bound = b.migrations_per_epoch.abs().max(1.0) * MIGRATIONS_REL;
        if (c.migrations_per_epoch - b.migrations_per_epoch).abs() > mig_bound {
            failures.push(format!(
                "{id}: migrations/epoch {:.1} drifted from baseline {:.1} by more than {:.0}%",
                c.migrations_per_epoch,
                b.migrations_per_epoch,
                MIGRATIONS_REL * 100.0
            ));
        }
        if c.attribution.residual_pct.abs() > RESIDUAL_PP {
            failures.push(format!(
                "{id}: attribution residual {:.2} pp exceeds the {RESIDUAL_PP} pp tolerance \
                 (components no longer explain the slowdown)",
                c.attribution.residual_pct
            ));
        }
        if baseline.telemetry && current.telemetry {
            for bp in &b.phases {
                let Some(cp) = c.phases.iter().find(|p| p.name == bp.name) else {
                    failures.push(format!("{id}: phase {} missing from current run", bp.name));
                    continue;
                };
                for (metric, bv, cv) in
                    [("p50", bp.p50_ps, cp.p50_ps), ("p99", bp.p99_ps, cp.p99_ps)]
                {
                    if bv < PHASE_FLOOR_PS && cv < PHASE_FLOOR_PS {
                        continue;
                    }
                    if cv > bv * (1.0 + PHASE_REL) + PHASE_FLOOR_PS {
                        failures.push(format!(
                            "{id}: {} {metric} {cv:.0} ps exceeds baseline {bv:.0} ps \
                             by more than {:.0}%",
                            bp.name,
                            PHASE_REL * 100.0
                        ));
                    }
                }
            }
        }
    }
    failures
}

/// Minimal JSON value for the baseline parser.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as an object's field list, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// The hand-rolled JSON-subset parser (no external dependencies).
pub mod json {
    use super::JsonValue;

    /// Looks up `name` in an object's field list.
    pub fn get<'a>(obj: &'a [(String, JsonValue)], name: &str) -> Option<&'a JsonValue> {
        obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn eat_keyword(&mut self, word: &str) -> bool {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<JsonValue, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(JsonValue::Str(self.string()?)),
                Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
                Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
                Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn object(&mut self) -> Result<JsonValue, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}' at byte {}, found {:?}",
                            self.pos,
                            other.map(|c| c as char)
                        ))
                    }
                }
            }
        }

        fn array(&mut self) -> Result<JsonValue, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']' at byte {}, found {:?}",
                            self.pos,
                            other.map(|c| c as char)
                        ))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                                // Surrogate pairs are not emitted by the gate
                                // writer; map them to the replacement char.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            other => {
                                return Err(format!(
                                    "bad escape {:?} at byte {}",
                                    other.map(|c| c as char),
                                    self.pos
                                ))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (the input is a &str, so
                        // byte boundaries are safe to find this way).
                        let start = self.pos;
                        self.pos += 1;
                        while self.pos < self.bytes.len()
                            && (self.bytes[self.pos] & 0b1100_0000) == 0b1000_0000
                        {
                            self.pos += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.bytes[start..self.pos])
                                .map_err(|_| "invalid UTF-8 in string")?,
                        );
                    }
                }
            }
        }

        fn number(&mut self) -> Result<JsonValue, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "invalid number bytes")?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GateReport {
        GateReport {
            t_rh: 1000,
            epochs: 1,
            seed: 42,
            telemetry: true,
            throughput: Some(ThroughputMetrics {
                scheme: "aqua-sram".into(),
                workload: "mcf".into(),
                repeats: 5,
                accesses_per_run: 1_400_000,
                median_accesses_per_sec: 2_000_000.0,
                min_accesses_per_sec: 1_800_000.0,
                max_accesses_per_sec: 2_200_000.0,
            }),
            scaling: Some(ScalingMetrics {
                scheme: "aqua-sram".into(),
                workload: "mcf".into(),
                channels: 4,
                repeats: 5,
                accesses_per_run: 5_600_000,
                single_accesses_per_sec: 2_000_000.0,
                sharded_accesses_per_sec: 6_400_000.0,
                shard_workers: 4,
                host_parallelism: 8,
                scaling_efficiency: 3.2,
            }),
            cells: vec![CellMetrics {
                scheme: "aqua-sram".into(),
                workload: "mcf".into(),
                slowdown_pct: 1.25,
                migrations_per_epoch: 37.0,
                attribution: CellAttribution {
                    migration_pct: 0.9,
                    lookup_pct: 0.2,
                    table_traffic_pct: 0.1,
                    residual_pct: 0.05,
                },
                phases: vec![PhaseLatency {
                    name: "span.migration.install".into(),
                    p50_ps: 1_372_000.0,
                    p99_ps: 1_372_000.0,
                }],
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_json_exactly() {
        let r = sample();
        let parsed = GateReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parser_handles_escapes_nesting_and_rejects_garbage() {
        let v = json::parse(r#"{"a\n\"b":[1,-2.5e3,true,null,{"x":[]}]}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let arr = json::get(obj, "a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], JsonValue::Null);
        assert!(json::parse("{\"a\":1}x").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("").is_err());
        assert_eq!(
            json::parse("\"caf\\u00e9\"").unwrap().as_str(),
            Some("café")
        );
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = sample();
        assert!(compare(&r, &r).is_empty());
    }

    #[test]
    fn injected_slowdown_and_residual_fail_the_gate() {
        let base = sample();
        let mut cur = base.clone();
        cur.cells[0].slowdown_pct += 10.0;
        cur.cells[0].attribution.residual_pct += 10.0;
        let failures = compare(&base, &cur);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("slowdown"), "{failures:?}");
        assert!(failures[1].contains("residual"), "{failures:?}");
    }

    #[test]
    fn migration_drift_fails_in_both_directions() {
        let base = sample();
        for factor in [0.5, 2.0] {
            let mut cur = base.clone();
            cur.cells[0].migrations_per_epoch *= factor;
            let failures = compare(&base, &cur);
            assert!(
                failures.iter().any(|f| f.contains("migrations/epoch")),
                "factor {factor}: {failures:?}"
            );
        }
    }

    #[test]
    fn phase_latencies_gate_only_when_both_sides_have_telemetry() {
        let base = sample();
        let mut cur = base.clone();
        cur.cells[0].phases[0].p99_ps *= 2.0;
        assert!(compare(&base, &cur)
            .iter()
            .any(|f| f.contains("span.migration.install")));
        // Telemetry off on one side: the phase comparison is skipped.
        let mut cur_off = cur.clone();
        cur_off.telemetry = false;
        assert!(compare(&base, &cur_off).is_empty());
    }

    #[test]
    fn missing_cell_and_changed_config_fail() {
        let base = sample();
        let mut empty = base.clone();
        empty.cells.clear();
        assert!(compare(&base, &empty)[0].contains("missing"));
        let mut retuned = base.clone();
        retuned.t_rh = 500;
        assert!(compare(&base, &retuned)[0].contains("configuration changed"));
    }

    #[test]
    fn median_of_handles_odd_even_and_empty() {
        assert_eq!(median_of(vec![]), 0.0);
        assert_eq!(median_of(vec![3.0]), 3.0);
        assert_eq!(median_of(vec![9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median_of(vec![4.0, 1.0, 2.0, 8.0]), 3.0);
    }

    #[test]
    fn throughput_gates_on_collapse_only() {
        let base = sample();
        // Modest slowdown (within the generous factor): passes.
        let mut slower = base.clone();
        slower.throughput.as_mut().unwrap().median_accesses_per_sec /= 2.0;
        assert!(compare(&base, &slower).is_empty());
        // Faster: always passes.
        let mut faster = base.clone();
        faster.throughput.as_mut().unwrap().median_accesses_per_sec *= 10.0;
        assert!(compare(&base, &faster).is_empty());
        // Collapse beyond the factor: fails, and says by how much.
        let mut collapsed = base.clone();
        collapsed
            .throughput
            .as_mut()
            .unwrap()
            .median_accesses_per_sec /= 10.0;
        let failures = compare(&base, &collapsed);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("throughput"), "{failures:?}");
        assert!(failures[0].contains("aqua-sram/mcf"), "{failures:?}");
    }

    #[test]
    fn throughput_gate_skips_when_either_side_lacks_it() {
        let base = sample();
        let mut old_baseline = base.clone();
        old_baseline.throughput = None;
        let mut collapsed = base.clone();
        collapsed
            .throughput
            .as_mut()
            .unwrap()
            .median_accesses_per_sec = 1.0;
        // v1 baseline without throughput: current's numbers are reported
        // but not gated.
        assert!(compare(&old_baseline, &collapsed).is_empty());
        // Current run skipped the timing canary: also no gate.
        let mut no_timing = base.clone();
        no_timing.throughput = None;
        assert!(compare(&base, &no_timing).is_empty());
    }

    #[test]
    fn throughput_roundtrips_and_null_parses_as_none() {
        let with = sample();
        assert_eq!(GateReport::from_json(&with.to_json()).unwrap(), with);
        let mut without = sample();
        without.throughput = None;
        let j = without.to_json();
        assert!(j.contains("\"throughput\": null"), "{j}");
        assert_eq!(GateReport::from_json(&j).unwrap(), without);
    }

    #[test]
    fn parser_tolerates_unknown_fields() {
        // A future schema revision may add fields; today's parser must
        // look up what it knows and ignore the rest — at every level.
        let mut r = sample();
        r.throughput = None;
        let j = r
            .to_json()
            .replacen("\"t_rh\"", "\"future_top\": {\"x\": [1,2]},\n  \"t_rh\"", 1)
            .replacen("\"scheme\"", "\"future_cell\": true,\n      \"scheme\"", 1)
            .replacen("\"p50_ps\"", "\"future_phase\": null, \"p50_ps\"", 1);
        assert_eq!(GateReport::from_json(&j).unwrap(), r);
    }

    #[test]
    fn v1_committed_baseline_still_parses() {
        // BENCH_5.json predates the throughput block; it must keep parsing
        // (backward compatibility for old baselines and external readers).
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_5.json");
        let r = GateReport::from_json(&text).expect("v1 baseline parses");
        assert_eq!((r.t_rh, r.epochs, r.seed), (1000, 1, 42));
        assert!(r.throughput.is_none());
        assert!(!r.cells.is_empty());
        // And it still gates cleanly against itself.
        assert!(compare(&r, &r).is_empty());
    }

    #[test]
    fn v2_committed_baseline_still_parses() {
        // BENCH_6.json is the last pre-campaign throughput baseline; it is
        // kept committed as a parser fixture for the v2 (with-throughput)
        // format after BENCH_7.json became the gated baseline.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_6.json");
        let r = GateReport::from_json(&text).expect("v2 baseline parses");
        assert_eq!((r.t_rh, r.epochs, r.seed), (1000, 1, 42));
        let t = r.throughput.as_ref().expect("v2 baseline has throughput");
        assert!(t.median_accesses_per_sec > 0.0);
        assert!(!r.cells.is_empty());
        // And it still gates cleanly against itself.
        assert!(compare(&r, &r).is_empty());
    }

    #[test]
    fn v3_committed_baseline_still_parses() {
        // BENCH_7.json is the last pre-sharding baseline (throughput but
        // no scaling block); it is kept committed as a parser fixture for
        // the v3 format after BENCH_8.json became the gated baseline.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_7.json");
        let r = GateReport::from_json(&text).expect("v3 baseline parses");
        assert_eq!((r.t_rh, r.epochs, r.seed), (1000, 1, 42));
        assert!(r.throughput.is_some());
        assert!(
            r.scaling.is_none(),
            "v3 baselines predate the scaling block"
        );
        assert!(!r.cells.is_empty());
        // And it still gates cleanly against itself.
        assert!(compare(&r, &r).is_empty());
    }

    #[test]
    fn scaling_roundtrips_and_null_parses_as_none() {
        let with = sample();
        assert_eq!(GateReport::from_json(&with.to_json()).unwrap(), with);
        let mut without = sample();
        without.scaling = None;
        let j = without.to_json();
        assert!(j.contains("\"scaling\": null"), "{j}");
        assert_eq!(GateReport::from_json(&j).unwrap(), without);
    }

    #[test]
    fn scaling_gate_is_host_parallelism_adaptive() {
        let base = sample();
        // Healthy scaling on a parallel host: passes.
        assert!(compare(&base, &base).is_empty());
        // Collapse on a parallel host: fails and names the cell.
        let mut flat = base.clone();
        {
            let s = flat.scaling.as_mut().unwrap();
            s.sharded_accesses_per_sec = s.single_accesses_per_sec * 1.1;
            s.scaling_efficiency = 1.1;
        }
        let failures = compare(&base, &flat);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("scaling"), "{failures:?}");
        assert!(failures[0].contains("aqua-sram/mcf"), "{failures:?}");
        // The same flat numbers on a 1-core host are recorded, not gated:
        // four shards time-slicing one core cannot speed anything up.
        let mut starved = flat.clone();
        starved.scaling.as_mut().unwrap().host_parallelism = 1;
        assert!(compare(&base, &starved).is_empty());
        // A baseline or current without the block skips the gate entirely.
        let mut old = base.clone();
        old.scaling = None;
        assert!(compare(&base, &old).is_empty());
    }

    #[test]
    fn sub_nanosecond_phases_are_never_compared() {
        let mut base = sample();
        base.cells[0].phases[0].p50_ps = 10.0;
        base.cells[0].phases[0].p99_ps = 10.0;
        let mut cur = base.clone();
        cur.cells[0].phases[0].p50_ps = 900.0; // 90x, but below the floor
        cur.cells[0].phases[0].p99_ps = 900.0;
        assert!(compare(&base, &cur).is_empty());
    }
}
