//! Crash-consistent checkpoint/resume journal for experiment campaigns.
//!
//! A journal is an append-only JSONL file: one self-contained record per
//! *completed* cell (success or deterministic failure), flushed before the
//! runner moves on. Interrupting a campaign — a crash, a kill, a watchdog
//! reboot — therefore loses at most the cells still in flight; resuming
//! with the same journal replays every durable record and re-runs only the
//! rest, and the final artifacts are byte-identical to an uninterrupted
//! run (see DESIGN.md section 14).
//!
//! Records are keyed by [`CellKey`], a digest of everything that determines
//! a cell's result (experiment, scheme, workload, seed, epochs, threshold,
//! geometry, fault spec, ablation). Host-time knobs — watchdog budgets,
//! deadlines, worker counts — are deliberately excluded: a run interrupted
//! under one time budget may be resumed under another without invalidating
//! its completed cells.
//!
//! ## Format (v1)
//!
//! One JSON object per line:
//!
//! ```json
//! {"v":1,"key":"89abcdef01234567","label":"aqua-sram/mcf","status":"ok",
//!  "retriable":false,"attempts":1,"payload":{...}}
//! {"v":1,"key":"...","label":"...","status":"watchdog","retriable":true,
//!  "attempts":2,"error":"watchdog: simulation exceeded its 5 ms ..."}
//! ```
//!
//! `status` is `"ok"` or a [`crate::supervise::RunError`] kind. A record
//! with `retriable: true` is *not* replayed on resume — the cell runs
//! again. A torn final line (the crash happened mid-write) is skipped with
//! a warning; when one key appears on several lines the last record wins.
//!
//! The workspace has no JSON dependency; records reuse the gate's
//! recursive-descent parser ([`crate::gate::json`]) and hand-rolled
//! writers. Integers round-trip through `f64`, which is exact below
//! 2^53 — far beyond any counter a simulated campaign produces (enforced
//! in [`push_u64`]).

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::gate::{json, push_json_str, JsonValue};
use aqua_dram::Duration;
use aqua_sim::RunReport;

/// Digest identifying one experiment cell across process restarts.
///
/// 64-bit FNV-1a over the canonical description of the cell, with a
/// separator folded in between parts so `["ab","c"]` and `["a","bc"]`
/// differ. Collisions at campaign scale (dozens to thousands of cells)
/// are negligible, and a collision can only replay a wrong-but-valid
/// record, never corrupt one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey(pub u64);

impl CellKey {
    /// Digests the canonical parts of a cell description, order-sensitive.
    pub fn digest(parts: &[&str]) -> CellKey {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u64| {
            h ^= b;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for part in parts {
            for &b in part.as_bytes() {
                eat(b as u64);
            }
            // Unit separator: parts never contain it, so boundaries hash.
            eat(0x1f);
        }
        CellKey(h)
    }

    /// Fixed-width lowercase hex form used in journal lines.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`CellKey::hex`] form back.
    pub fn from_hex(s: &str) -> Option<CellKey> {
        (s.len() == 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
            .map(CellKey)
    }
}

/// One durable journal record, as read back by [`Journal::open`].
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The cell's [`CellKey`] digest.
    pub key: CellKey,
    /// Human-readable cell label (`scheme/workload`), for log lines only.
    pub label: String,
    /// `"ok"` or a [`crate::supervise::RunError`] kind.
    pub status: String,
    /// Whether resuming should re-run this cell instead of replaying it.
    pub retriable: bool,
    /// Attempts the supervised runner spent on the cell (0 = canceled
    /// before it ran).
    pub attempts: u32,
    /// The failure description (`None` for `status == "ok"`).
    pub error: Option<String>,
    /// The encoded result (`None` unless `status == "ok"`).
    pub payload: Option<JsonValue>,
}

struct Sink {
    file: File,
    /// Total durable records: lines loaded at open plus appends since.
    records: u64,
}

/// An open campaign journal: the records already on disk plus an
/// append-only writer for new completions. Appends are flushed per line,
/// so a record is durable before the runner reports the cell done.
pub struct Journal {
    path: PathBuf,
    records: std::collections::HashMap<u64, Record>,
    sink: Mutex<Sink>,
    /// Test hook (`AQUA_BENCH_DIE_AFTER`): once the journal holds this many
    /// durable records, the *next* append exits the process with status 3 —
    /// a deterministic mid-campaign crash for the ci.sh resume smoke.
    die_after: Option<u64>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("records", &self.records.len())
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, loading every
    /// durable record. A torn trailing line — the signature of a crash
    /// mid-append — is skipped with a warning; a record of an unknown
    /// format version is an error.
    pub fn open(path: &Path) -> Result<Journal, String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("journal {}: creating parent: {e}", path.display()))?;
            }
        }
        let mut records = std::collections::HashMap::new();
        let mut loaded = 0u64;
        if path.exists() {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("journal {}: {e}", path.display()))?;
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_record(line) {
                    Ok(rec) => {
                        records.insert(rec.key.0, rec);
                        loaded += 1;
                    }
                    Err(ParseError::Torn(why)) => {
                        eprintln!(
                            "warning: journal {} line {}: skipping torn record ({why})",
                            path.display(),
                            lineno + 1
                        );
                    }
                    Err(ParseError::Version(v)) => {
                        return Err(format!(
                            "journal {} line {}: format v{v} is not supported (this \
                             build reads v1)",
                            path.display(),
                            lineno + 1
                        ));
                    }
                }
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| format!("journal {}: {e}", path.display()))?;
        let die_after = std::env::var("AQUA_BENCH_DIE_AFTER")
            .ok()
            .and_then(|v| v.trim().parse().ok());
        Ok(Journal {
            path: path.to_path_buf(),
            records,
            sink: Mutex::new(Sink {
                file,
                records: loaded,
            }),
            die_after,
        })
    }

    /// The journal's path, for log lines.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The durable record for `key` loaded at open time, if any (last
    /// record wins when a key was appended more than once).
    pub fn lookup(&self, key: &CellKey) -> Option<&Record> {
        self.records.get(&key.0)
    }

    /// Number of distinct keys loaded at open time.
    pub fn loaded(&self) -> usize {
        self.records.len()
    }

    /// Appends a successful cell: `payload_json` must be one compact JSON
    /// value (no newlines).
    pub fn append_ok(&self, key: CellKey, label: &str, attempts: u32, payload_json: &str) {
        debug_assert!(!payload_json.contains('\n'));
        let mut line = record_head(key, label, "ok", false, attempts);
        line.push_str(",\"payload\":");
        line.push_str(payload_json);
        line.push('}');
        self.append_line(line);
    }

    /// Appends a failed cell with its error kind and description.
    pub fn append_err(
        &self,
        key: CellKey,
        label: &str,
        attempts: u32,
        kind: &str,
        retriable: bool,
        error: &str,
    ) {
        let mut line = record_head(key, label, kind, retriable, attempts);
        line.push_str(",\"error\":");
        push_json_str(&mut line, error);
        line.push('}');
        self.append_line(line);
    }

    fn append_line(&self, mut line: String) {
        line.push('\n');
        let mut sink = self.sink.lock().unwrap();
        sink.file
            .write_all(line.as_bytes())
            .and_then(|()| sink.file.flush())
            .unwrap_or_else(|e| panic!("journal {}: append failed: {e}", self.path.display()));
        sink.records += 1;
        if let Some(limit) = self.die_after {
            if sink.records >= limit {
                eprintln!(
                    "[journal] AQUA_BENCH_DIE_AFTER={limit}: dying after {} durable record(s)",
                    sink.records
                );
                std::process::exit(3);
            }
        }
    }
}

fn record_head(key: CellKey, label: &str, status: &str, retriable: bool, attempts: u32) -> String {
    let mut line = String::from("{\"v\":1,\"key\":\"");
    line.push_str(&key.hex());
    line.push_str("\",\"label\":");
    push_json_str(&mut line, label);
    line.push_str(",\"status\":");
    push_json_str(&mut line, status);
    let _ = std::fmt::Write::write_fmt(
        &mut line,
        format_args!(",\"retriable\":{retriable},\"attempts\":{attempts}"),
    );
    line
}

enum ParseError {
    /// Not a valid v1 record (truncated write, garbage): skippable.
    Torn(String),
    /// A valid record of an incompatible version: fatal.
    Version(u64),
}

fn parse_record(line: &str) -> Result<Record, ParseError> {
    let value = json::parse(line).map_err(ParseError::Torn)?;
    let obj = value
        .as_obj()
        .ok_or_else(|| ParseError::Torn("record is not an object".into()))?;
    let version = json::get(obj, "v")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ParseError::Torn("missing version".into()))? as u64;
    if version != 1 {
        return Err(ParseError::Version(version));
    }
    let field = |name: &str| {
        json::get(obj, name).ok_or_else(|| ParseError::Torn(format!("missing field {name:?}")))
    };
    let key = field("key")?
        .as_str()
        .and_then(CellKey::from_hex)
        .ok_or_else(|| ParseError::Torn("bad key digest".into()))?;
    let as_str = |name: &str| -> Result<String, ParseError> {
        field(name)?
            .as_str()
            .map(String::from)
            .ok_or_else(|| ParseError::Torn(format!("field {name:?} is not a string")))
    };
    Ok(Record {
        key,
        label: as_str("label")?,
        status: as_str("status")?,
        retriable: field("retriable")?
            .as_bool()
            .ok_or_else(|| ParseError::Torn("retriable is not a bool".into()))?,
        attempts: field("attempts")?
            .as_f64()
            .ok_or_else(|| ParseError::Torn("attempts is not a number".into()))?
            as u32,
        error: json::get(obj, "error")
            .and_then(JsonValue::as_str)
            .map(String::from),
        payload: json::get(obj, "payload").cloned(),
    })
}

// ---------------------------------------------------------------------------
// RunReport codec
// ---------------------------------------------------------------------------

/// Appends `"name":<u64>` to a compact JSON object under construction.
///
/// # Panics
///
/// Panics if `v` does not round-trip exactly through `f64` (>= 2^53); no
/// simulated metric gets anywhere near that.
fn push_u64(out: &mut String, name: &str, v: u64) {
    assert!(
        v < (1 << 53),
        "journal integer {name}={v} exceeds f64 precision"
    );
    if !out.ends_with('{') {
        out.push(',');
    }
    push_json_str(out, name);
    let _ = std::fmt::Write::write_fmt(out, format_args!(":{v}"));
}

fn push_str_field(out: &mut String, name: &str, v: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    push_json_str(out, name);
    out.push(':');
    push_json_str(out, v);
}

/// Encodes a [`RunReport`] as the compact v1 journal payload.
///
/// The `telemetry` snapshot is deliberately dropped: it is a host-side
/// diagnostic, not an experiment result, and a resumed cell replays with
/// `telemetry: None` (documented in DESIGN.md section 14). Every metric a
/// figure or CSV derives from is covered.
pub fn report_to_json(r: &RunReport) -> String {
    let mut out = String::from("{");
    push_str_field(&mut out, "scheme", &r.scheme);
    push_str_field(&mut out, "workload", &r.workload);
    push_u64(&mut out, "requests_done", r.requests_done);
    out.push_str(",\"per_core\":[");
    for (i, &c) in r.per_core.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        assert!(
            c < (1 << 53),
            "journal integer per_core={c} exceeds f64 precision"
        );
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{c}"));
    }
    out.push(']');
    push_u64(&mut out, "epochs", r.epochs);
    push_u64(&mut out, "data_busy_ps", r.data_busy.as_ps());
    push_u64(&mut out, "migration_busy_ps", r.migration_busy.as_ps());
    push_u64(&mut out, "table_busy_ps", r.table_busy.as_ps());
    out.push_str(",\"mitigation\":{");
    push_u64(&mut out, "row_migrations", r.mitigation.row_migrations);
    push_u64(
        &mut out,
        "mitigations_triggered",
        r.mitigation.mitigations_triggered,
    );
    push_u64(&mut out, "victim_refreshes", r.mitigation.victim_refreshes);
    push_u64(&mut out, "throttled", r.mitigation.throttled);
    push_u64(&mut out, "violations", r.mitigation.violations);
    out.push_str("},\"oracle\":{");
    push_u64(
        &mut out,
        "max_window_activations",
        r.oracle.max_window_activations,
    );
    push_u64(&mut out, "rows_over_trh", r.oracle.rows_over_trh);
    push_u64(&mut out, "total_activations", r.oracle.total_activations);
    push_u64(&mut out, "rows_flippable", r.oracle.rows_flippable);
    push_u64(&mut out, "avg_rows_166", r.oracle.avg_rows_166);
    push_u64(&mut out, "avg_rows_500", r.oracle.avg_rows_500);
    push_u64(&mut out, "avg_rows_1000", r.oracle.avg_rows_1000);
    push_u64(&mut out, "epochs", r.oracle.epochs);
    out.push('}');
    push_u64(&mut out, "integrity_violations", r.integrity_violations);
    out.push_str(",\"faults\":{");
    push_u64(&mut out, "injected", r.faults.injected);
    push_u64(&mut out, "unsupported", r.faults.unsupported);
    push_u64(&mut out, "applied", r.faults.applied);
    push_u64(&mut out, "corruptions", r.faults.corruptions);
    push_u64(&mut out, "recovered_rows", r.faults.recovered_rows);
    push_u64(&mut out, "escaped_counted", r.faults.escaped_counted);
    push_u64(&mut out, "dormant", r.faults.dormant);
    push_u64(&mut out, "unaccounted", r.faults.unaccounted);
    push_u64(&mut out, "engine_recovered", r.faults.engine_recovered);
    push_u64(&mut out, "degraded_epochs", r.faults.degraded_epochs);
    out.push_str("}}");
    out
}

fn get_u64(obj: &[(String, JsonValue)], name: &str) -> Result<u64, String> {
    let v = json::get(obj, name)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("payload field {name:?} missing or not a number"))?;
    if v < 0.0 || v.fract() != 0.0 || v >= (1u64 << 53) as f64 {
        return Err(format!(
            "payload field {name:?} = {v} is not a journal integer"
        ));
    }
    Ok(v as u64)
}

fn get_str(obj: &[(String, JsonValue)], name: &str) -> Result<String, String> {
    json::get(obj, name)
        .and_then(JsonValue::as_str)
        .map(String::from)
        .ok_or_else(|| format!("payload field {name:?} missing or not a string"))
}

fn get_obj<'a>(
    obj: &'a [(String, JsonValue)],
    name: &str,
) -> Result<&'a [(String, JsonValue)], String> {
    json::get(obj, name)
        .and_then(JsonValue::as_obj)
        .ok_or_else(|| format!("payload field {name:?} missing or not an object"))
}

/// Decodes a [`report_to_json`] payload. The replayed report carries
/// `telemetry: None` (see [`report_to_json`]).
pub fn report_from_json(value: &JsonValue) -> Result<RunReport, String> {
    let obj = value.as_obj().ok_or("payload is not an object")?;
    let mit = get_obj(obj, "mitigation")?;
    let oracle = get_obj(obj, "oracle")?;
    let faults = get_obj(obj, "faults")?;
    let per_core = json::get(obj, "per_core")
        .and_then(JsonValue::as_arr)
        .ok_or("payload field \"per_core\" missing or not an array")?
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                .map(|f| f as u64)
                .ok_or_else(|| "per_core entry is not a journal integer".to_string())
        })
        .collect::<Result<Vec<u64>, String>>()?;
    Ok(RunReport {
        scheme: get_str(obj, "scheme")?,
        workload: get_str(obj, "workload")?,
        requests_done: get_u64(obj, "requests_done")?,
        per_core,
        epochs: get_u64(obj, "epochs")?,
        data_busy: Duration::from_ps(get_u64(obj, "data_busy_ps")?),
        migration_busy: Duration::from_ps(get_u64(obj, "migration_busy_ps")?),
        table_busy: Duration::from_ps(get_u64(obj, "table_busy_ps")?),
        mitigation: aqua_dram::mitigation::MitigationStats {
            row_migrations: get_u64(mit, "row_migrations")?,
            mitigations_triggered: get_u64(mit, "mitigations_triggered")?,
            victim_refreshes: get_u64(mit, "victim_refreshes")?,
            throttled: get_u64(mit, "throttled")?,
            violations: get_u64(mit, "violations")?,
        },
        oracle: aqua_sim::OracleSummary {
            max_window_activations: get_u64(oracle, "max_window_activations")?,
            rows_over_trh: get_u64(oracle, "rows_over_trh")?,
            total_activations: get_u64(oracle, "total_activations")?,
            rows_flippable: get_u64(oracle, "rows_flippable")?,
            avg_rows_166: get_u64(oracle, "avg_rows_166")?,
            avg_rows_500: get_u64(oracle, "avg_rows_500")?,
            avg_rows_1000: get_u64(oracle, "avg_rows_1000")?,
            epochs: get_u64(oracle, "epochs")?,
        },
        integrity_violations: get_u64(obj, "integrity_violations")?,
        faults: aqua_faults::FaultReport {
            injected: get_u64(faults, "injected")?,
            unsupported: get_u64(faults, "unsupported")?,
            applied: get_u64(faults, "applied")?,
            corruptions: get_u64(faults, "corruptions")?,
            recovered_rows: get_u64(faults, "recovered_rows")?,
            escaped_counted: get_u64(faults, "escaped_counted")?,
            dormant: get_u64(faults, "dormant")?,
            unaccounted: get_u64(faults, "unaccounted")?,
            engine_recovered: get_u64(faults, "engine_recovered")?,
            degraded_epochs: get_u64(faults, "degraded_epochs")?,
        },
        telemetry: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("aqua-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn sample_report() -> RunReport {
        let mut r = RunReport {
            scheme: "aqua-sram".into(),
            workload: "mcf".into(),
            requests_done: 123_456,
            per_core: vec![1, 2, 3, 4],
            epochs: 2,
            data_busy: Duration::from_ps(64_000_000_000),
            migration_busy: Duration::from_ps(1_370_000),
            table_busy: Duration::from_ps(99),
            integrity_violations: 0,
            ..RunReport::default()
        };
        r.mitigation.row_migrations = 17;
        r.oracle.total_activations = 1_000_000;
        r.faults.injected = 16;
        r.faults.degraded_epochs = 3;
        r
    }

    #[test]
    fn cell_keys_separate_parts_and_roundtrip_hex() {
        let a = CellKey::digest(&["ab", "c"]);
        let b = CellKey::digest(&["a", "bc"]);
        assert_ne!(a, b);
        assert_eq!(CellKey::digest(&["ab", "c"]), a, "digest is deterministic");
        assert_eq!(CellKey::from_hex(&a.hex()), Some(a));
        assert_eq!(CellKey::from_hex("xyz"), None);
    }

    #[test]
    fn report_payload_roundtrips_exactly() {
        let report = sample_report();
        let encoded = report_to_json(&report);
        assert!(!encoded.contains('\n'), "payload must stay on one line");
        let decoded = report_from_json(&json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, report);
        // And the round-trip is a fixpoint at the byte level too.
        assert_eq!(report_to_json(&decoded), encoded);
    }

    #[test]
    fn journal_appends_then_reloads_last_record_wins() {
        let path = tmp("reload");
        let _ = std::fs::remove_file(&path);
        let key = CellKey::digest(&["matrix", "aqua-sram", "mcf"]);
        {
            let j = Journal::open(&path).unwrap();
            assert_eq!(j.loaded(), 0);
            j.append_err(
                key,
                "aqua-sram/mcf",
                2,
                "watchdog",
                true,
                "watchdog: over budget",
            );
            j.append_ok(key, "aqua-sram/mcf", 1, &report_to_json(&sample_report()));
        }
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.loaded(), 1, "same key collapses to one record");
        let rec = j.lookup(&key).expect("record survives reopen");
        assert_eq!(rec.status, "ok");
        assert!(!rec.retriable);
        assert_eq!(rec.attempts, 1);
        let replay = report_from_json(rec.payload.as_ref().unwrap()).unwrap();
        assert_eq!(replay, sample_report());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let path = tmp("torn");
        let key = CellKey::digest(&["a"]);
        {
            let _ = std::fs::remove_file(&path);
            let j = Journal::open(&path).unwrap();
            j.append_err(key, "a", 1, "panic", false, "boom");
        }
        // Simulate a crash mid-append: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"v\":1,\"key\":\"0123").unwrap();
        drop(f);
        let j = Journal::open(&path).unwrap();
        assert_eq!(
            j.loaded(),
            1,
            "the durable record survives, the torn one is dropped"
        );
        assert_eq!(j.lookup(&key).unwrap().error.as_deref(), Some("boom"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let path = tmp("version");
        std::fs::write(
            &path,
            "{\"v\":2,\"key\":\"0000000000000000\",\"label\":\"x\",\"status\":\"ok\",\
             \"retriable\":false,\"attempts\":1}\n",
        )
        .unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(err.contains("v2"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
