//! Shared experiment harness for the figure/table reproduction binaries.
//!
//! Every `src/bin/*` binary regenerates one table or figure of the paper:
//! it runs the required simulations (or analytical models), prints a
//! paper-vs-measured comparison to stdout, and writes a CSV into
//! `target/experiments/`.
//!
//! Environment knobs (all optional):
//!
//! - `AQUA_BENCH_EPOCHS`: simulated 64 ms epochs per run (default 2).
//! - `AQUA_BENCH_WORKLOADS`: comma-separated subset of workload names
//!   (default: all 18 SPEC + 16 mixes).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod output;

use aqua::{AquaConfig, AquaEngine};
use aqua_baselines::{Blockhammer, BlockhammerConfig, VictimRefresh, VictimRefreshConfig};
use aqua_dram::mitigation::{Mitigation, NoMitigation};
use aqua_dram::BaselineConfig;
use aqua_rrs::{RrsConfig, RrsEngine};
use aqua_sim::{RunReport, SimConfig, Simulation};
use aqua_telemetry::Telemetry;
use aqua_workload::{mix_table, spec, AddressSpace, RequestGenerator};

/// The mitigation schemes the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No mitigation (the normalization baseline).
    Baseline,
    /// AQUA with SRAM tables (section IV).
    AquaSram,
    /// AQUA with memory-mapped tables (section V).
    AquaMapped,
    /// Randomized Row-Swap.
    Rrs,
    /// Classic distance-1 victim refresh.
    VictimRefresh,
    /// Blockhammer-style throttling.
    Blockhammer,
}

impl Scheme {
    /// Scheme name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::AquaSram => "aqua-sram",
            Scheme::AquaMapped => "aqua-mapped",
            Scheme::Rrs => "rrs",
            Scheme::VictimRefresh => "victim-refresh",
            Scheme::Blockhammer => "blockhammer",
        }
    }
}

/// Experiment harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Baseline system (Table I).
    pub base: BaselineConfig,
    /// Rowhammer threshold under study.
    pub t_rh: u64,
    /// Simulated epochs per run.
    pub epochs: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Harness {
    /// Creates the default harness at `t_rh`, honouring `AQUA_BENCH_EPOCHS`.
    pub fn new(t_rh: u64) -> Self {
        let epochs = std::env::var("AQUA_BENCH_EPOCHS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        Harness {
            base: BaselineConfig::paper_table1(),
            t_rh,
            epochs,
            seed: 42,
        }
    }

    /// The OS-visible address space (97% of rows; AQUA reserves ~1.2%).
    pub fn space(&self) -> AddressSpace {
        AddressSpace::new(self.base.geometry, 0.97)
    }

    /// All 34 workload names (18 SPEC + 16 mixes), honouring
    /// `AQUA_BENCH_WORKLOADS`.
    pub fn workloads(&self) -> Vec<String> {
        if let Ok(list) = std::env::var("AQUA_BENCH_WORKLOADS") {
            return list.split(',').map(|s| s.trim().to_string()).collect();
        }
        spec::TABLE2
            .iter()
            .map(|w| w.name.to_string())
            .chain(mix_table().iter().map(|m| m.name.clone()))
            .collect()
    }

    /// Builds the four per-core generators for a workload name (a SPEC name
    /// or `mixNN`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name.
    pub fn generators(&self, workload: &str) -> Vec<Box<dyn RequestGenerator>> {
        let space = self.space();
        if let Some(w) = spec::by_name(workload) {
            return (0..self.base.cores)
                .map(|c| {
                    Box::new(w.generator(&space, c, self.base.cores, self.seed))
                        as Box<dyn RequestGenerator>
                })
                .collect();
        }
        if let Some(m) = mix_table().iter().find(|m| m.name == workload) {
            return (0..self.base.cores)
                .map(|c| Box::new(m.generator(&space, c, self.seed)) as Box<dyn RequestGenerator>)
                .collect();
        }
        panic!("unknown workload {workload}");
    }

    fn sim_config(&self) -> SimConfig {
        SimConfig::new(self.base)
            .epochs(self.epochs)
            .t_rh(self.t_rh)
    }

    /// AQUA configuration at this harness's threshold.
    pub fn aqua_config(&self) -> AquaConfig {
        AquaConfig::for_rowhammer_threshold(self.t_rh, &self.base)
    }

    fn run_with<M: Mitigation>(
        &self,
        mitigation: M,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> RunReport {
        let mut sim = Simulation::new(self.sim_config(), mitigation, self.generators(workload));
        if let Some(hub) = telemetry {
            sim.attach_telemetry(hub.clone());
        }
        let mut report = sim.run();
        report.workload = workload.to_string();
        report
    }

    /// Runs one `(scheme, workload)` pair and returns its report.
    pub fn run(&self, scheme: Scheme, workload: &str) -> RunReport {
        self.run_instrumented(scheme, workload, None)
    }

    /// Runs one `(scheme, workload)` pair with an optional telemetry hub
    /// attached to the whole stack (simulator, channel, and mitigation).
    ///
    /// The hub keeps its event trace, histograms, and per-epoch time-series
    /// after the run, so callers can export them (`simulate --trace-out`).
    pub fn run_instrumented(
        &self,
        scheme: Scheme,
        workload: &str,
        telemetry: Option<&Telemetry>,
    ) -> RunReport {
        match scheme {
            Scheme::Baseline => {
                self.run_with(NoMitigation::new(self.base.geometry), workload, telemetry)
            }
            Scheme::AquaSram => {
                let engine = AquaEngine::new(self.aqua_config()).expect("valid AQUA config");
                self.run_with(engine, workload, telemetry)
            }
            Scheme::AquaMapped => {
                let engine = AquaEngine::new(self.aqua_config().with_mapped_tables())
                    .expect("valid AQUA config");
                self.run_with(engine, workload, telemetry)
            }
            Scheme::Rrs => {
                let cfg = RrsConfig::for_rowhammer_threshold(self.t_rh, &self.base);
                self.run_with(RrsEngine::new(cfg), workload, telemetry)
            }
            Scheme::VictimRefresh => {
                let cfg = VictimRefreshConfig::for_rowhammer_threshold(self.t_rh);
                self.run_with(
                    VictimRefresh::new(cfg, self.base.geometry),
                    workload,
                    telemetry,
                )
            }
            Scheme::Blockhammer => {
                let cfg = BlockhammerConfig::for_rowhammer_threshold(self.t_rh);
                self.run_with(
                    Blockhammer::new(cfg, self.base.geometry),
                    workload,
                    telemetry,
                )
            }
        }
    }

    /// Runs an AQUA-mapped simulation and returns both the report and the
    /// engine-specific statistics (Figure 10's lookup breakdown).
    pub fn run_aqua_mapped_detailed(&self, workload: &str) -> (RunReport, aqua::LookupBreakdown) {
        let engine =
            AquaEngine::new(self.aqua_config().with_mapped_tables()).expect("valid AQUA config");
        let mut sim = Simulation::new(self.sim_config(), engine, self.generators(workload));
        let mut report = sim.run();
        report.workload = workload.to_string();
        let breakdown = sim
            .mitigation()
            .lookup_breakdown()
            .expect("mapped engine reports a breakdown");
        (report, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> Harness {
        Harness {
            base: BaselineConfig::paper_table1(),
            t_rh: 1000,
            epochs: 1,
            seed: 1,
        }
    }

    #[test]
    fn workload_list_has_34_entries() {
        let h = tiny_harness();
        // (Unless the env var narrows it; tests run with a clean env.)
        if std::env::var("AQUA_BENCH_WORKLOADS").is_err() {
            assert_eq!(h.workloads().len(), 34);
        }
    }

    #[test]
    fn generators_exist_for_spec_and_mixes() {
        let h = tiny_harness();
        assert_eq!(h.generators("povray").len(), 4);
        assert_eq!(h.generators("mix00").len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        tiny_harness().generators("nope");
    }

    #[test]
    fn scheme_names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            Scheme::Baseline,
            Scheme::AquaSram,
            Scheme::AquaMapped,
            Scheme::Rrs,
            Scheme::VictimRefresh,
            Scheme::Blockhammer,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        assert_eq!(names.len(), 6);
    }
}
